"""Benchmark B4 — what probe decorrelation buys on the rewritten queries.

The certain-answer rewritings ``Q+`` are exactly the workloads that
multiply correlated ``NOT EXISTS`` probes (one per nullable attribute
in scope).  This bench runs each rewritten TPC-H query with the
engine's probe optimisations on and off and asserts the optimised run
examines strictly fewer rows — the ISSUE's acceptance criterion — and
is no slower in wall clock.
"""

import time

import pytest

from repro.engine.executor import Executor
from repro.sql.parser import parse_sql
from repro.sql.rewrite import rewrite_certain
from repro.tpch.queries import QUERIES


@pytest.fixture(scope="module")
def rewritten(schema):
    return {
        qid: rewrite_certain(parse_sql(QUERIES[qid][0]), schema)
        for qid in ("Q1", "Q2", "Q3", "Q4")
    }


def run_with_flags(db, query, params, **flags):
    executor = Executor(db, params, **flags)
    start = time.perf_counter()
    result = executor.execute(query)
    elapsed = time.perf_counter() - start
    return result, executor.ctx, elapsed


class TestDecorrelationOnRewrites:
    # Q1+/Q2+ short-circuit at the whole-query level before touching any
    # correlated probe (1 row examined either way), so only "no worse"
    # is meaningful there; Q3+/Q4+ exercise the probes and must improve.
    @pytest.mark.parametrize(
        "qid,strict",
        [("Q1", False), ("Q2", False), ("Q3", True), ("Q4", True)],
    )
    def test_optimised_examines_strictly_fewer_rows(
        self, benchmark, qid, strict, perf_db, perf_params, rewritten
    ):
        benchmark.group = f"decorrelation-{qid}"

        def run():
            fast = run_with_flags(perf_db, rewritten[qid], perf_params[qid])
            slow = run_with_flags(
                perf_db, rewritten[qid], perf_params[qid],
                memoize_probes=False, decorrelate=False,
            )
            return fast, slow

        (fast_result, fast_ctx, fast_t), (slow_result, slow_ctx, slow_t) = (
            benchmark.pedantic(run, rounds=1, iterations=1)
        )
        print(
            f"\n  {qid}+ rows examined: optimised={fast_ctx.rows_examined}"
            f" (+{fast_ctx.probe_build_rows} build)"
            f" naive={slow_ctx.rows_examined};"
            f" wall {fast_t * 1000:.1f} ms vs {slow_t * 1000:.1f} ms"
        )
        assert fast_result.attributes == slow_result.attributes
        assert fast_result.rows == slow_result.rows
        if strict:
            assert fast_ctx.rows_examined < slow_ctx.rows_examined
        else:
            assert fast_ctx.rows_examined <= slow_ctx.rows_examined
        # Amortised probing must not cost wall clock overall.  The
        # short-circuit queries finish in microseconds where the timer
        # is pure noise, so the bound only applies to the probe-heavy
        # ones (generously, to absorb scheduler jitter).
        if strict:
            assert fast_t < slow_t * 1.5
