"""Section 5 — the Figure 2 translation is not implementable.

Times the Figure 3 translation ``Q+`` against the Figure 2 ``Qt`` on the
Section 6 example query for growing instances, and regenerates the
feasibility table (Q+ linear-ish, Qt quadratic until it trips the row
budget — the paper saw out-of-memory below 10³ tuples).
"""

import pytest

from repro.algebra.evaluate import Evaluator
from repro.experiments.infeasible import (
    make_rst_database,
    run_infeasibility_experiment,
    section6_example_query,
)
from repro.experiments.report import render_table
from repro.translate.improved import certain_query
from repro.translate.libkin import translate_libkin


@pytest.mark.parametrize("size", [25, 50])
def test_q_plus_evaluation(benchmark, size):
    benchmark.group = f"section5-{size}"
    db = make_rst_database(size, null_rate=0.1, seed=9)
    plus = certain_query(section6_example_query())
    benchmark(lambda: Evaluator(db, semantics="naive").evaluate(plus))


@pytest.mark.parametrize("size", [25])
def test_qt_evaluation(benchmark, size):
    # One round only: Qt is three orders of magnitude slower than Q+
    # already at 25 tuples per relation (and ~10^4x at 50).
    benchmark.group = f"section5-{size}"
    db = make_rst_database(size, null_rate=0.1, seed=9)
    qt, _qf = translate_libkin(section6_example_query(), db)
    benchmark.pedantic(
        lambda: Evaluator(db, semantics="naive").evaluate(qt), rounds=1, iterations=1
    )


def test_section5_regeneration(benchmark):
    def experiment():
        return run_infeasibility_experiment(
            sizes=(10, 25, 50, 100), budget=300_000, null_rate=0.1, seed=1
        )

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [
            str(r["size"]),
            f"{r['plus_time'] * 1000:.1f}",
            str(r["plus_rows"]),
            f"{r['libkin_time'] * 1000:.1f}",
            str(r["libkin_rows"]),
            "BUDGET EXCEEDED" if r["libkin_failed"] else "ok",
        ]
        for r in results
    ]
    print()
    print(render_table(
        "Section 5 — Q+ (Figure 3) vs Qt (Figure 2) on the Section 6 example",
        ["n", "Q+ ms", "Q+ rows", "Qt ms", "Qt rows", "Qt status"],
        rows,
    ))

    # Q+ stays small; Qt fails well below 10³ tuples per relation.
    assert all(r["plus_rows"] < 10_000 for r in results)
    assert any(r["libkin_failed"] for r in results)
    failed_at = min(r["size"] for r in results if r["libkin_failed"])
    assert failed_at <= 200  # "fewer than 10³ tuples", reproduced
