"""Ablation A2 — the key-based simplification ``R ▷⇑ S → R − S``.

Section 7 uses the key rule to turn Q+3's unification anti-semijoin
into a plain difference.  At the algebra level the generic ``▷⇑`` is
quadratic (pairwise unification checks) while the difference is a hash
lookup; this bench quantifies the gap the rule closes.
"""

import random

import pytest

from repro.algebra import Difference, RelationRef, Selection, UnifAntiJoin, eq
from repro.algebra.evaluate import Evaluator
from repro.data import Database, Null, Relation
from repro.data.schema import DatabaseSchema, make_schema
from repro.translate.simplify import key_antijoin_to_difference


def make_keyed_db(n: int, seed: int = 0) -> Database:
    rng = random.Random(seed)
    rows = [
        (k, Null() if rng.random() < 0.05 else rng.randint(1, 50))
        for k in range(n)
    ]
    return Database({"R": Relation(("K", "V"), rows)})


@pytest.fixture(scope="module")
def db():
    return make_keyed_db(400)


@pytest.fixture(scope="module")
def schema():
    schema = DatabaseSchema()
    schema.add(make_schema("R", [("K", "int"), ("V", "int")], key=["K"]))
    return schema


@pytest.fixture(scope="module")
def antijoin():
    # R ▷⇑ σ_{V=1}(R): the Q3 pattern (subtrahend contained in R).
    return UnifAntiJoin(RelationRef("R"), Selection(RelationRef("R"), eq("V", 1)))


def test_generic_unification_antijoin(benchmark, db, antijoin):
    benchmark.group = "keyrule"
    benchmark(lambda: Evaluator(db, semantics="naive").evaluate(antijoin))


def test_key_rule_difference(benchmark, db, schema, antijoin):
    benchmark.group = "keyrule"
    simplified = key_antijoin_to_difference(antijoin, schema)
    assert isinstance(simplified, Difference)
    benchmark(lambda: Evaluator(db, semantics="naive").evaluate(simplified))


def test_key_rule_preserves_semantics(benchmark, db, schema, antijoin):
    def run():
        simplified = key_antijoin_to_difference(antijoin, schema)
        a = Evaluator(db, semantics="naive").evaluate(antijoin)
        b = Evaluator(db, semantics="naive").evaluate(simplified)
        return a, b

    a, b = benchmark.pedantic(run, rounds=1, iterations=1)
    assert a == b
