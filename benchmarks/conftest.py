"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one of the paper's artefacts (see DESIGN.md's
per-experiment index) at laptop scale and prints the resulting table —
run with ``pytest benchmarks/ --benchmark-only -s`` to see them.
"""

import random

import pytest

from repro.sql.parser import parse_sql
from repro.sql.rewrite import RewriteOptions, rewrite_certain
from repro.tpch.datafiller import generate_small_instance
from repro.tpch.dbgen import generate_instance
from repro.tpch.nullify import inject_nulls
from repro.tpch.queries import QUERIES, sample_parameters
from repro.tpch.schema import tpch_schema


@pytest.fixture(scope="session")
def schema():
    return tpch_schema()


@pytest.fixture(scope="session")
def perf_db():
    """DBGen-style instance at scale unit 1 with 3% nulls (Figure 4)."""
    return inject_nulls(generate_instance(scale=1.0, seed=101), 0.03, seed=102)


@pytest.fixture(scope="session")
def fp_db():
    """DataFiller-style instance with 5% nulls (Figure 1 / recall)."""
    return inject_nulls(generate_small_instance(scale=0.4, seed=103), 0.05, seed=104)


@pytest.fixture(scope="session")
def compiled_queries(schema):
    """{qid: (original, auto Q+, appendix Q+, unsplit Q+)} ASTs."""
    out = {}
    for qid, (original_sql, appendix_sql, _names) in QUERIES.items():
        original = parse_sql(original_sql)
        out[qid] = (
            original,
            rewrite_certain(original, schema),
            parse_sql(appendix_sql),
            rewrite_certain(
                original, schema, RewriteOptions(split="never", fold_views="never")
            ),
        )
    return out


@pytest.fixture()
def rng():
    return random.Random(2016)


@pytest.fixture(scope="session")
def perf_params(perf_db):
    """One fixed parameter draw per query (deterministic timings)."""
    rng = random.Random(7)
    return {qid: sample_parameters(qid, perf_db, rng=rng) for qid in QUERIES}
