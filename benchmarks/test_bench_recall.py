"""Section 7's precision/recall measurements.

Precision of Q+ is 100% by Theorem 1; the paper measured recall = 100%
against the certain answers plain SQL returns.  This bench regenerates
that table and asserts both.
"""

from repro.experiments.recall import run_recall_experiment
from repro.experiments.report import render_table


def test_recall_regeneration(benchmark):
    def experiment():
        return run_recall_experiment(
            null_rates=(0.01, 0.03, 0.05),
            instances=3,
            param_draws=3,
            scale=0.3,
            seed=13,
        )

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for qid in sorted(results):
        comparisons = results[qid]
        total_sql = sum(c.sql_returned for c in comparisons)
        total_fp = sum(c.sql_false_positives for c in comparisons)
        total_missed = sum(c.missed_certain for c in comparisons)
        sql_precision = 100.0 * (1 - total_fp / total_sql) if total_sql else 100.0
        rows.append(
            [
                qid,
                str(total_sql),
                str(total_fp),
                f"{sql_precision:.1f}%",
                "100%",
                str(total_missed),
            ]
        )
    print()
    print(render_table(
        "Section 7 — precision and recall of the rewritten queries",
        ["Query", "SQL answers", "flagged FPs", "SQL precision ≤", "Q+ precision", "Q+ missed"],
        rows,
    ))

    for comparisons in results.values():
        for cmp in comparisons:
            assert cmp.rewritten_recall == 1.0  # the 100%-recall finding
            assert cmp.missed_certain == 0
