"""Figure 4 — the price of correctness: t(Q+)/t(Q) per query.

Benchmarks the original and the automatically rewritten version of each
query on the same engine and instance (grouped per query so the
pytest-benchmark table shows the ratio), then regenerates the figure's
series and asserts the three behaviour classes of Section 7:

* Q1/Q3: overhead within a few percent;
* Q2: the rewriting is dramatically *faster* (short-circuit);
* Q4: the rewriting costs roughly 2–4x.
"""

import pytest

from repro.engine import execute_sql
from repro.experiments.performance import run_price_of_correctness
from repro.experiments.report import format_ratio, render_series


@pytest.mark.parametrize("qid", ["Q1", "Q2", "Q3", "Q4"])
class TestPerQuery:
    def test_original(self, benchmark, perf_db, compiled_queries, perf_params, qid):
        benchmark.group = f"figure4-{qid}"
        original, _auto, _hand, _unsplit = compiled_queries[qid]
        params = perf_params[qid]
        benchmark(lambda: execute_sql(perf_db, original, params))

    def test_rewritten(self, benchmark, perf_db, compiled_queries, perf_params, qid):
        benchmark.group = f"figure4-{qid}"
        _original, auto, _hand, _unsplit = compiled_queries[qid]
        params = perf_params[qid]
        benchmark(lambda: execute_sql(perf_db, auto, params))

    def test_appendix_rewrite(self, benchmark, perf_db, compiled_queries, perf_params, qid):
        benchmark.group = f"figure4-{qid}"
        _original, _auto, hand, _unsplit = compiled_queries[qid]
        params = perf_params[qid]
        benchmark(lambda: execute_sql(perf_db, hand, params))


def test_figure4_regeneration(benchmark):
    """Regenerate the Figure 4 series and check the behaviour classes."""

    def experiment():
        return run_price_of_correctness(
            null_rates=(0.01, 0.03, 0.05),
            scale=1.0,
            instances=2,
            param_draws=2,
            repeats=2,
            seed=11,
        )

    series = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    print(render_series(
        "Figure 4 — average relative performance t(Q+)/t(Q)",
        "null rate %",
        series,
        y_format=format_ratio,
    ))

    def avg(qid):
        ys = [y for _x, y in series[qid]]
        return sum(ys) / len(ys)

    assert avg("Q1") < 1.6          # small overhead (paper: ≤ 1.04)
    assert avg("Q3") < 1.6
    assert avg("Q2") < 0.6          # the correct query wins (paper: ~1e-3)
    assert 1.0 < avg("Q4") < 8.0    # the hard case (paper: 1.8–3.9)
