"""Benchmark B6 — what best-first ordering buys an anytime oracle.

``cert(Q, D)`` is coNP-hard, so harnesses run the brute-force searcher
under deadlines; the exploration order then decides how much of the
answer a cut recovers.  This bench measures certain-answer recall at
10% / 25% / 50% of the eager order's full search time, best-first vs
eager, on a Section 4/7-style ground-truth instance: a selection
``σ(A0 = A1)`` over a diagonal incomplete relation whose shared null
makes one tuple per *cert family* certain, prefixed by *junk families*
— support rows alternating the two nulls that vary **slowest** in the
world enumeration.  Junk contributes zero certain answers (its row
fails the selection whenever the two nulls disagree), yet the
disagreement first appears deep into the world order, so eager
verification grinds tens of checks into every junk near-miss before
the rejecting world comes up.  Best-first's sample is strided across
the whole world list, so its second probe already lands where the
nulls disagree and refutes each junk candidate on the spot.  The same
asymmetry repeats inside each cert family: near-miss candidates
shadowing the certain tuple cost eager hundreds of sequential checks
but best-first only a couple of probes, so confirmed rows arrive with
roughly half the spacing even after the junk prefix is cleared.

Deadlines are scoped to the search phase (``deadline_scope="search"``):
the world-evaluation preamble is a fixed cost both orders pay
identically before any tuple *can* be confirmed, and its run-to-run
jitter would otherwise drown the budgets under comparison.  The budget
base is the median search-phase time of several full eager runs after a
warmup, each (fraction, order) cell is the median of ``REPEATS`` runs,
and the allocator-heavy deadline runs execute with the GC paused — a
collection landing inside a ~40 ms budget would otherwise dominate it.

Results land in ``BENCH_anytime.json`` (uploaded as a CI artifact).
The acceptance criterion asserted here: at the 25% budget, best-first
recovers at least 2× the rows of eager.  ``ANYTIME_BENCH_SMOKE=1``
shrinks the instance and repeats for CI smoke runs, recording results
without the 2× assertion (smoke budgets are noise-sized).
"""

import gc
import itertools
import json
import os
import statistics
import time
from pathlib import Path

from repro.algebra import RelationRef, Selection, eq
from repro.certain import bruteforce, certain_answers_with_nulls, search_summary
from repro.data import Database, Null, Relation

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_anytime.json"

SMOKE = os.environ.get("ANYTIME_BENCH_SMOKE") == "1"
FRACTIONS = (0.10, 0.25, 0.50)
REPEATS = 1 if SMOKE else 5
BASELINE_RUNS = 1 if SMOKE else 3
CERT_FAMILIES = 10 if SMOKE else 28
JUNK_FAMILIES = 2 if SMOKE else 8


def anytime_instance(
    cert_families=CERT_FAMILIES,
    junk_families=JUNK_FAMILIES,
    ones=4,
    tail_width=6,
    extra_constants=3,
):
    """Diagonal ground-truth instance with a deep junk prefix.

    Each family is one support row distinguished by a constant *tail*;
    cert families repeat one shared null across the selection columns
    (their diagonal tuple survives every world), junk families alternate
    the two nulls that sort first — and therefore vary slowest in the
    world enumeration — so no junk tuple is certain, but the first
    rejecting world sits tens of checks deep in sequential order.  Junk
    tails start with a smaller constant so their seeded candidates come
    first in the deterministic eager order.  ``Z`` pins two extra nulls
    (widening the per-position candidate pools) and the constant 1
    (keeping it the first world's image of every null) without touching
    the queried relation.
    """
    n1, n2 = Null("a"), Null("b")
    pins = [Null("c"), Null("d")]
    attrs = tuple(f"A{i}" for i in range(ones)) + tuple(
        f"B{i}" for i in range(tail_width)
    )
    tails = itertools.product((5, 6), repeat=tail_width - 1)
    junk_tails = [(5,) + t for t in itertools.islice(tails, junk_families)]
    tails = itertools.product((5, 6), repeat=tail_width - 1)
    cert_tails = [(6,) + t for t in itertools.islice(tails, cert_families)]
    assert len(junk_tails) == junk_families and len(cert_tails) == cert_families
    rows = [
        tuple((n1, n2)[i % 2] for i in range(ones)) + tail
        for tail in junk_tails
    ]
    rows += [(n1,) * ones + tail for tail in cert_tails]
    db = Database(
        {
            "R": Relation(attrs, rows),
            "Z": Relation(("z1",), [(p,) for p in pins] + [(1,)]),
        }
    )
    return Selection(RelationRef("R"), eq("A0", "A1")), db, extra_constants


def timed_search(query, db, extra_constants, order, deadline=None):
    start = time.monotonic()
    result = certain_answers_with_nulls(
        query,
        db,
        extra_constants=extra_constants,
        order=order,
        deadline=deadline,
        deadline_scope="search",
    )
    elapsed = time.monotonic() - start
    return result, elapsed, bruteforce.LAST_SEARCH


def full_search_baseline(query, db, extra_constants, order):
    """Full-search result plus the median search-phase time of
    ``BASELINE_RUNS`` runs — one run's scheduler luck must not set every
    deadline below."""
    times = []
    for _ in range(BASELINE_RUNS):
        result, elapsed, stats = timed_search(query, db, extra_constants, order)
        times.append(stats.elapsed - stats.world_elapsed)
    return result, elapsed, statistics.median(times), stats


def deadline_rows(query, db, extra_constants, order, deadline, full_rows):
    """Row count recovered under ``deadline``, GC paused for the run."""
    gc.collect()
    gc.disable()
    try:
        partial, _, _ = timed_search(
            query, db, extra_constants, order, deadline=deadline
        )
    finally:
        gc.enable()
    assert set(partial.rows) <= full_rows  # sound subset
    return len(partial.rows)


def test_best_first_recall_under_deadlines(benchmark):
    query, db, extra = anytime_instance()

    def measure():
        timed_search(query, db, extra, "best-first")  # warm caches
        full_eager, t_eager, search_budget_base, stats_eager = (
            full_search_baseline(query, db, extra, "eager")
        )
        full_bf, t_bf, _, stats_bf = full_search_baseline(
            query, db, extra, "best-first"
        )
        # Order never changes the complete answer.
        assert full_bf.attributes == full_eager.attributes
        assert full_bf.rows == full_eager.rows
        full_rows = set(full_eager.rows)
        checkpoints = []
        for fraction in FRACTIONS:
            deadline = fraction * search_budget_base
            cells = {"eager": [], "best-first": []}
            for _ in range(REPEATS):
                for order in cells:
                    cells[order].append(
                        deadline_rows(query, db, extra, order, deadline, full_rows)
                    )
            checkpoints.append(
                {
                    "fraction": fraction,
                    "budget_seconds": round(deadline, 6),
                    "eager_rows": cells["eager"],
                    "best_first_rows": cells["best-first"],
                    "eager_median": statistics.median(cells["eager"]),
                    "best_first_median": statistics.median(cells["best-first"]),
                }
            )
        return {
            "mode": "smoke" if SMOKE else "full",
            "instance": {
                "cert_families": CERT_FAMILIES,
                "junk_families": JUNK_FAMILIES,
                "certain_answers": len(full_rows),
                "candidates": stats_eager.candidates_considered,
            },
            "full_search": {
                "eager_seconds": round(t_eager, 4),
                "best_first_seconds": round(t_bf, 4),
                "world_phase_seconds": round(stats_eager.world_elapsed, 4),
                "eager": search_summary(stats_eager),
                "best_first": search_summary(stats_bf),
            },
            "checkpoints": checkpoints,
        }

    data = benchmark.pedantic(measure, rounds=1, iterations=1)
    ARTIFACT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")

    print()
    for point in data["checkpoints"]:
        eager = point["eager_median"]
        bf = point["best_first_median"]
        if eager:
            ratio = f"{bf / eager:.1f}x"
        else:
            ratio = "inf" if bf else "n/a"
        print(
            f"  {point['fraction']:>4.0%} budget: eager {eager:g} rows,"
            f" best-first {bf:g} rows ({ratio})"
        )

    # Every run of either order must stay sound (asserted inline above);
    # the ordering claim is only meaningful at full scale.
    if SMOKE:
        return
    at_25 = next(p for p in data["checkpoints"] if p["fraction"] == 0.25)
    assert at_25["best_first_median"] > 0
    assert at_25["best_first_median"] >= 2 * at_25["eager_median"], (
        f"best-first recovered {at_25['best_first_median']} rows vs eager's "
        f"{at_25['eager_median']} at the 25% budget — expected ≥ 2x"
    )
