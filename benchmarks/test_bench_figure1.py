"""Figure 1 — average percentage of false positives per null rate.

Benchmarks the per-query false-positive measurement and regenerates the
figure as a table, asserting the paper's qualitative shapes:

* every query shows false positives somewhere on the curve;
* Q2 is ≈100% at every rate;
* Q3 grows steadily with the null rate.
"""

import pytest

from repro.engine import execute_sql
from repro.fp.detectors import count_false_positives
from repro.experiments.falsepos import run_false_positive_experiment
from repro.experiments.report import render_series
from repro.tpch.queries import QUERIES, sample_parameters


@pytest.mark.parametrize("qid", sorted(QUERIES))
def test_false_positive_measurement(benchmark, fp_db, qid, rng):
    """Time of one run-query-and-flag-answers measurement (Section 4)."""
    params = sample_parameters(qid, fp_db, rng=rng)
    original_sql = QUERIES[qid][0]

    def measure():
        answers = execute_sql(fp_db, original_sql, params)
        return count_false_positives(qid, params, fp_db, answers.rows)

    benchmark(measure)


def test_figure1_regeneration(benchmark):
    """Regenerate Figure 1 (reduced grid) and check its shape."""

    def experiment():
        return run_false_positive_experiment(
            null_rates=(0.005, 0.02, 0.05, 0.08, 0.10),
            instances=6,
            executions=4,
            scale=0.4,
            seed=42,
        )

    series = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    print(render_series(
        "Figure 1 — average % of false positives (lower bounds)",
        "null rate %",
        series,
    ))

    # Paper shape: Q2 ≈ 100% throughout.
    assert all(y >= 90.0 for _x, y in series["Q2"])
    # Q3 grows with the null rate and is substantial at 10%.
    q3 = [y for _x, y in series["Q3"]]
    assert q3[-1] > 15.0
    assert q3[-1] > q3[0]
    # Q1 and Q4 show false positives somewhere (lower-bound detectors).
    assert any(y > 0 for _x, y in series["Q1"])
    assert any(y > 0 for _x, y in series["Q4"])
