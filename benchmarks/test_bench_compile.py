"""Benchmark B5 — what closure compilation buys on the paper workloads.

Runs the Figure 4 queries (originals and their certain-answer ``Q+``
rewritings) with predicate compilation on and off, records the wall
clocks in ``BENCH_compile.json`` (uploaded as a CI artifact), and
asserts the acceptance criterion: the probe-heavy rewritten workloads
— exactly the ones the decorrelation bench exercises — run at least 2×
faster compiled, geometric-mean, with a generous per-query floor to
absorb scheduler jitter.

``Q2+`` short-circuits at the whole-query level in microseconds, where
the timer measures fixed prepare cost, not row work; it is recorded but
excluded from the assertion, mirroring ``test_bench_decorrelation``.
"""

import json
import math
import time
from pathlib import Path

import pytest

from repro.engine.executor import Executor
from repro.sql.parser import parse_sql
from repro.sql.rewrite import rewrite_certain
from repro.tpch.queries import QUERIES

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_compile.json"

#: Workloads the ≥2× criterion applies to (probe/filter heavy Q+).
STRICT = ("Q1+", "Q3+", "Q4+")
ROUNDS = 5


@pytest.fixture(scope="module")
def workloads(schema):
    out = {}
    for qid in ("Q1", "Q2", "Q3", "Q4"):
        original = parse_sql(QUERIES[qid][0])
        out[qid] = original
        out[qid + "+"] = rewrite_certain(original, schema)
    return out


def best_of(db, query, params, compiled):
    best = float("inf")
    result = None
    for _ in range(ROUNDS):
        executor = Executor(db, params, compile_predicates=compiled)
        start = time.perf_counter()
        result = executor.execute(query)
        best = min(best, time.perf_counter() - start)
    return best, result


def _update_artifact(name, entry):
    data = {}
    if ARTIFACT.exists():
        data = json.loads(ARTIFACT.read_text())
    data[name] = entry
    ARTIFACT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


@pytest.mark.parametrize(
    "name", ["Q1", "Q1+", "Q2", "Q2+", "Q3", "Q3+", "Q4", "Q4+"]
)
def test_compiled_matches_and_is_timed(
    benchmark, name, perf_db, perf_params, workloads
):
    benchmark.group = f"compile-{name}"
    qid = name.rstrip("+")
    query = workloads[name]

    def run():
        return (
            best_of(perf_db, query, perf_params[qid], compiled=True),
            best_of(perf_db, query, perf_params[qid], compiled=False),
        )

    (fast_t, fast_result), (slow_t, slow_result) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert fast_result.attributes == slow_result.attributes
    assert fast_result.rows == slow_result.rows
    speedup = slow_t / fast_t if fast_t > 0 else float("inf")
    print(
        f"\n  {name}: compiled {fast_t * 1000:.1f} ms"
        f" interpreted {slow_t * 1000:.1f} ms  ({speedup:.2f}x)"
    )
    _update_artifact(
        name,
        {
            "compiled_ms": round(fast_t * 1000, 3),
            "interpreted_ms": round(slow_t * 1000, 3),
            "speedup": round(speedup, 3),
            "rows": len(fast_result.rows),
        },
    )
    if name in STRICT:
        assert speedup >= 1.5, f"{name}: compiled only {speedup:.2f}x faster"


def test_strict_workloads_hit_two_x_geomean():
    """The acceptance criterion, over the artifact the runs just wrote."""
    data = json.loads(ARTIFACT.read_text())
    speedups = [data[name]["speedup"] for name in STRICT]
    geomean = math.exp(sum(map(math.log, speedups)) / len(speedups))
    print(f"\n  geomean speedup over {STRICT}: {geomean:.2f}x")
    assert geomean >= 2.0, f"geomean {geomean:.2f}x < 2x on {STRICT}"
