"""Ablation A1 — what the Section 7 query tuning buys.

* Q4: the naive (unsplit, unfolded) rewriting forces nested loops on a
  naive engine; the disjunction-split + view-folded form restores hash
  joins.  The paper saw "astronomical" plan costs; we measure actual
  run time.  (The engine's own probe decorrelation now rescues even the
  unsplit form, so the rewrite ablation is timed with it disabled.)
* Q2: splitting decorrelates one ``NOT EXISTS``, enabling the engine's
  whole-query short-circuit — the source of the 10³x speed-up.
"""

import pytest

from repro.engine import execute_sql
from repro.sql.parser import parse_sql
from repro.sql.rewrite import RewriteOptions, rewrite_certain
from repro.tpch.queries import QUERIES


@pytest.fixture(scope="module")
def q4_variants(schema):
    original = parse_sql(QUERIES["Q4"][0])
    return {
        "tuned": rewrite_certain(original, schema),
        "unsplit": rewrite_certain(
            original, schema, RewriteOptions(split="never", fold_views="never")
        ),
        "folded-only": rewrite_certain(
            original, schema, RewriteOptions(split="never")
        ),
    }


@pytest.fixture(scope="module")
def q2_variants(schema):
    original = parse_sql(QUERIES["Q2"][0])
    return {
        "tuned": rewrite_certain(original, schema),
        "unsplit": rewrite_certain(
            original, schema, RewriteOptions(split="never", fold_views="never")
        ),
    }


class TestQ4Tuning:
    def test_q4_tuned(self, benchmark, perf_db, perf_params, q4_variants):
        benchmark.group = "ablation-q4"
        benchmark(lambda: execute_sql(perf_db, q4_variants["tuned"], perf_params["Q4"]))

    def test_q4_folded_only(self, benchmark, perf_db, perf_params, q4_variants):
        benchmark.group = "ablation-q4"
        benchmark(
            lambda: execute_sql(perf_db, q4_variants["folded-only"], perf_params["Q4"])
        )

    def test_q4_unsplit(self, benchmark, perf_db, perf_params, q4_variants):
        benchmark.group = "ablation-q4"
        benchmark(lambda: execute_sql(perf_db, q4_variants["unsplit"], perf_params["Q4"]))

    def test_variants_agree_and_tuning_wins(self, benchmark, perf_db, perf_params, q4_variants):
        import time

        # The rewrite-level ablation is measured on the naive engine
        # (probe decorrelation/memoization off): with them on, the engine
        # hash-decorrelates the unsplit form's correlated subqueries
        # itself and the variants converge — which the second half of
        # this test asserts explicitly.
        def run():
            timings = {}
            answers = {}
            for name, query in q4_variants.items():
                start = time.perf_counter()
                answers[name] = set(
                    execute_sql(
                        perf_db, query, perf_params["Q4"],
                        memoize_probes=False, decorrelate=False,
                    ).rows
                )
                timings[name] = time.perf_counter() - start
            start = time.perf_counter()
            decorrelated = set(
                execute_sql(perf_db, q4_variants["unsplit"], perf_params["Q4"]).rows
            )
            timings["unsplit+engine-decorrelation"] = time.perf_counter() - start
            answers["unsplit+engine-decorrelation"] = decorrelated
            return timings, answers

        timings, answers = benchmark.pedantic(run, rounds=1, iterations=1)
        print()
        for name, t in sorted(timings.items(), key=lambda kv: kv[1]):
            print(f"  Q4+ {name:26s}: {t * 1000:8.1f} ms, {len(answers[name])} rows")
        assert (
            answers["tuned"] == answers["unsplit"] == answers["folded-only"]
            == answers["unsplit+engine-decorrelation"]
        )
        assert timings["unsplit"] > 1.5 * timings["tuned"]
        # Engine-level decorrelation closes most of the gap on its own.
        assert timings["unsplit+engine-decorrelation"] < timings["unsplit"]


class TestQ2Tuning:
    def test_q2_tuned(self, benchmark, perf_db, perf_params, q2_variants):
        benchmark.group = "ablation-q2"
        benchmark(lambda: execute_sql(perf_db, q2_variants["tuned"], perf_params["Q2"]))

    def test_q2_unsplit(self, benchmark, perf_db, perf_params, q2_variants):
        benchmark.group = "ablation-q2"
        benchmark(lambda: execute_sql(perf_db, q2_variants["unsplit"], perf_params["Q2"]))

    def test_split_enables_short_circuit(self, perf_db, perf_params, q2_variants, benchmark):
        from repro.engine.executor import Executor

        def run():
            tuned = Executor(perf_db, perf_params["Q2"])
            tuned.execute(q2_variants["tuned"])
            unsplit = Executor(perf_db, perf_params["Q2"])
            unsplit.execute(q2_variants["unsplit"])
            return tuned.ctx.rows_examined, unsplit.ctx.rows_examined

        tuned_rows, unsplit_rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print(f"\n  rows examined: split={tuned_rows}, unsplit={unsplit_rows}")
        # The split version bails out after touching a handful of rows.
        assert tuned_rows * 5 < unsplit_rows
