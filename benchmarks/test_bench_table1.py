"""Table 1 — ranges of relative performance across instance sizes.

Scale units 1x/3x/6x/10x stand in for the paper's 1/3/6/10 GB DBGen
instances.  The paper's finding: the ratio barely moves for Q1–Q3 and
*degrades* with size for Q4 (its rewriting has three extra subqueries
joining the biggest table).
"""

from repro.experiments.report import format_ratio, render_table
from repro.experiments.scaling import run_scaling_experiment


def test_table1_regeneration(benchmark):
    def experiment():
        return run_scaling_experiment(
            scales=(1.0, 3.0, 6.0, 10.0),
            null_rates=(0.01, 0.03, 0.05),
            param_draws=2,
            repeats=1,
            seed=5,
            base_scale=0.35,
        )

    table = benchmark.pedantic(experiment, rounds=1, iterations=1)

    scales = sorted({s for per in table.values() for s in per})
    header = ["Query"] + [f"{s:g}x" for s in scales]
    rows = []
    for qid in sorted(table):
        row = [qid]
        for s in scales:
            lo, hi = table[qid][s]
            row.append(f"{format_ratio(lo)} – {format_ratio(hi)}")
        rows.append(row)
    print()
    print(render_table("Table 1 — ranges of average t(Q+)/t(Q) per size", header, rows))

    # Q1/Q3 stay in the same ballpark from the smallest to the largest size.
    for qid in ("Q1", "Q3"):
        lo_small, hi_small = table[qid][1.0]
        lo_big, hi_big = table[qid][10.0]
        assert hi_big < 4 * max(hi_small, 1.0)
    # Q2 wins at every size.
    assert all(hi < 1.0 for _lo, hi in table["Q2"].values())
    # Q4 pays at every size.
    assert all(hi > 1.0 for _lo, hi in table["Q4"].values())
