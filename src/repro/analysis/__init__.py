"""Static query-soundness analysis (``repro.analysis``).

A rule-based analyzer that walks the SQL AST (and, separately, the
translated algebra) and reports where naive SQL evaluation can diverge
from certain answers with nulls — the divergence the paper measures and
repairs.  See ``docs/analyzer.md`` for the rule catalog and verdict
semantics, and ``python -m repro lint`` for the CLI.
"""

from repro.analysis.algebra_check import analyze_algebra
from repro.analysis.analyzer import analyze_query, analyze_sql
from repro.analysis.diagnostics import AnalysisReport, Diagnostic, severity_rank
from repro.analysis.fragment import fragment_diagnostics
from repro.analysis.render import render_json, render_pretty
from repro.analysis.rules import CERTIFIED, RULES, Rule, SUSPECT, UNSOUND, rule

__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "Rule",
    "RULES",
    "CERTIFIED",
    "SUSPECT",
    "UNSOUND",
    "analyze_algebra",
    "analyze_query",
    "analyze_sql",
    "fragment_diagnostics",
    "render_json",
    "render_pretty",
    "rule",
    "severity_rank",
]
