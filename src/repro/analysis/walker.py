"""The polarity-tracking AST walk behind the soundness analyzer.

The walk mirrors :class:`repro.sql.rewrite._ModeRewriter` — the same
``+``/``?`` modes of Figure 3, the same :class:`Scope` chain and
positive-context :func:`forced_nonnull` analysis — but instead of
*rewriting* conditions it *reports* where naive evaluation and the
certain-answer semantics can diverge, and it never bails on the first
problem: resolution failures degrade to SA301 findings and the walk
continues.

Polarity bookkeeping (``POSITIVE`` = the rewriter's ``+`` mode,
``NEGATIVE`` = ``?``):

* A predicate at POSITIVE polarity must hold under *every* valuation
  for the answer to be certain.  SQL's 3VL already only selects ``TRUE``
  comparisons, which forces the operands non-null — sound, though rows
  carrying nulls may be dropped when every completion keeps them
  (SA203).  The exception is ``IS NULL``, whose truth is *not*
  valuation-invariant (SA104).
* A predicate at NEGATIVE polarity (inside ``NOT EXISTS``, a ``NOT IN``
  subquery, or the right operand of ``EXCEPT``) guards a *witness*
  against the enclosing answer.  A comparison over a possibly-null
  operand evaluates to UNKNOWN, the witness is missed, and the negation
  admits a falsifiable answer — the paper's false-positive engine
  (SA101/SA102/SA103, SA105 when the nullable operand is an unforced
  outer correlation).

An ``OR x IS NULL`` disjunct sitting next to a comparison at NEGATIVE
polarity is recognised as the rewriter's own escape: the pair is exactly
the ``?``-weakened comparison, so the false-positive hazard is gone and
only the false-negative one remains (demoted to SA203).  Scalar
subqueries are the paper's black-box constants — the engine evaluates
them naively once — so findings inside them are demoted to ``suspect``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.analysis.rules import RULES, SUSPECT
from repro.data.schema import DatabaseSchema
from repro.sql import ast
from repro.sql.nullability import Catalog, RewriteError, Scope, columns_in_expr, forced_nonnull
from repro.sql.rewrite import negate_sql

__all__ = ["POSITIVE", "NEGATIVE", "QueryAnalyzer"]

POSITIVE = "+"
NEGATIVE = "?"


def _flip(polarity: str) -> str:
    return NEGATIVE if polarity == POSITIVE else POSITIVE


def _aggregates_in(expr: ast.SqlExpr) -> Iterator[ast.Aggregate]:
    if isinstance(expr, ast.Aggregate):
        yield expr
    elif isinstance(expr, ast.Concat):
        for part in expr.parts:
            yield from _aggregates_in(part)


def _scalar_subqueries_in(expr: ast.SqlExpr) -> Iterator[ast.ScalarSubquery]:
    if isinstance(expr, ast.ScalarSubquery):
        yield expr
    elif isinstance(expr, ast.Concat):
        for part in expr.parts:
            yield from _scalar_subqueries_in(part)
    elif isinstance(expr, ast.Aggregate) and expr.arg is not None:
        yield from _scalar_subqueries_in(expr.arg)


class QueryAnalyzer:
    """Walks one query and accumulates diagnostics into a report."""

    def __init__(self, schema: DatabaseSchema, source: Optional[str] = None):
        self.catalog = Catalog(schema)
        self.report = AnalysisReport(source=source)
        #: >0 while inside a scalar subquery (black-box constant).
        self._scalar_depth = 0

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def emit(
        self,
        rule_id: str,
        message: str,
        node: object = None,
        span: Optional[ast.Span] = None,
        **context: str,
    ) -> None:
        severity = RULES[rule_id].severity
        if span is None and node is not None:
            span = getattr(node, "span", None)
        if self._scalar_depth and severity != SUSPECT:
            severity = SUSPECT
            context.setdefault("demoted", "scalar-subquery-black-box")
            message += (
                " — demoted to suspect: the construct sits inside a scalar "
                "subquery, which the engine evaluates as a black-box constant"
            )
        self.report.add(
            Diagnostic(
                rule=rule_id,
                severity=severity,
                message=message,
                span=span,
                context=tuple(sorted(context.items())),
            )
        )

    def _outside(self, err: RewriteError, fallback_node: object = None) -> None:
        """Degrade a resolution/fragment failure into an SA301 finding."""
        node = err.node if err.node is not None else fallback_node
        self.emit("SA301", str(err), node=node, span=err.span)

    # ------------------------------------------------------------------
    # Queries and bodies
    # ------------------------------------------------------------------
    def analyze(self, query: ast.Query) -> AnalysisReport:
        for name, sub in query.ctes:
            self.body(sub.body, None, POSITIVE)
            try:
                self.catalog.register_view(name, sub)
            except RewriteError as err:
                self._outside(err, sub.body)
        self.body(query.body, None, POSITIVE)
        return self.report.finish()

    def body(self, body, outer: Optional[Scope], polarity: str) -> None:
        if isinstance(body, ast.Select):
            self.select(body, outer, polarity)
            return
        assert isinstance(body, ast.SetOp)
        # EXCEPT negates its right operand; UNION/INTERSECT do not.
        right_polarity = _flip(polarity) if body.op == "except" else polarity
        self.body(body.left.body, outer, polarity)
        self.body(body.right.body, outer, right_polarity)
        if not body.all:
            for side in (body.left.body, body.right.body):
                nullable = self._nullable_outputs(side)
                if nullable:
                    self.emit(
                        "SA202",
                        f"{body.op.upper()} compares whole tuples, but output "
                        f"column(s) {', '.join(sorted(nullable))} may be NULL; "
                        "SQL collapses nulls as if equal, which no completion "
                        "has to agree with",
                        node=body,
                        columns=",".join(sorted(nullable)),
                        operator=body.op,
                    )
                    break

    def _nullable_outputs(self, body) -> List[str]:
        """Names of output columns that may carry nulls (best effort)."""
        if isinstance(body, ast.SetOp):
            return self._nullable_outputs(body.left.body)
        assert isinstance(body, ast.Select)
        try:
            scope = Scope(body.tables, self.catalog)
        except RewriteError:
            return []
        nullable: List[str] = []
        for col in body.columns:
            if isinstance(col, ast.Star):
                for binding, table in scope.bindings.items():
                    for name in self.catalog.columns_of(table):
                        if self.catalog.is_nullable(table, name):
                            nullable.append(name)
                continue
            expr = col.expr
            if isinstance(expr, ast.ColumnRef):
                try:
                    if scope.is_possibly_null(expr):
                        nullable.append(col.alias or expr.name)
                except RewriteError:
                    continue
            elif isinstance(expr, (ast.Literal, ast.Param)):
                continue
            else:
                # Concats, aggregates and scalar subqueries may be NULL.
                nullable.append(col.alias or f"column{len(nullable) + 1}")
        return nullable

    # ------------------------------------------------------------------
    # SELECT blocks
    # ------------------------------------------------------------------
    def select(self, select: ast.Select, outer: Optional[Scope], polarity: str) -> None:
        try:
            scope = Scope(select.tables, self.catalog, parent=outer)
        except RewriteError as err:
            self._outside(err, select)
            return
        if polarity == POSITIVE:
            forced_nonnull(select.where, scope)
        self._check_outputs(select, scope)
        if select.where is not None:
            self.condition(select.where, scope, polarity)

    def _check_outputs(self, select: ast.Select, scope: Scope) -> None:
        for col in select.columns:
            if isinstance(col, ast.Star):
                continue
            self._check_expr(col.expr, scope)
        if select.distinct:
            nullable = self._nullable_outputs(select)
            if nullable:
                self.emit(
                    "SA202",
                    "DISTINCT deduplicates over output column(s) "
                    f"{', '.join(sorted(nullable))} that may be NULL; SQL "
                    "collapses nulls as if equal, which no completion has to "
                    "agree with",
                    node=select,
                    columns=",".join(sorted(nullable)),
                    operator="distinct",
                )

    def _check_expr(self, expr: ast.SqlExpr, scope: Scope) -> None:
        """Aggregate/scalar-subquery checks shared by outputs and operands."""
        for agg in _aggregates_in(expr):
            if agg.arg is None:
                continue  # COUNT(*) never skips rows for nulls.
            hazardous = []
            for column in columns_in_expr(agg.arg):
                try:
                    if scope.is_possibly_null(column):
                        hazardous.append(column.display)
                except RewriteError as err:
                    self._outside(err, column)
            if hazardous:
                self.emit(
                    "SA201",
                    f"{agg.func.upper()} silently drops NULLs of "
                    f"{', '.join(hazardous)}; its value on the incomplete "
                    "database need not match any completion",
                    node=agg,
                    columns=",".join(hazardous),
                    function=agg.func,
                )
        for sub in _scalar_subqueries_in(expr):
            self._scalar_depth += 1
            try:
                self.body(sub.query.body, scope, POSITIVE)
            finally:
                self._scalar_depth -= 1

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------
    def condition(self, cond: ast.SqlCond, scope: Scope, polarity: str) -> None:
        if isinstance(cond, ast.BoolOp):
            if cond.op == "or":
                self._or_block(cond, scope, polarity)
            else:
                for item in cond.items:
                    self.condition(item, scope, polarity)
            return
        if isinstance(cond, ast.NotOp):
            # negate_sql embeds the negation into the nodes (NOT EXISTS,
            # flipped operators), so the polarity stays as-is — exactly
            # what the rewriter does.
            try:
                pushed = negate_sql(cond.item)
            except RewriteError as err:
                self._outside(err, cond)
                return
            self.condition(pushed, scope, polarity)
            return
        if isinstance(cond, ast.BoolLiteral):
            return
        if isinstance(cond, ast.IsNull):
            self._null_test(cond, scope, polarity)
            return
        if isinstance(cond, ast.Comparison):
            self._comparison(cond, scope, polarity, escaped=frozenset())
            return
        if isinstance(cond, ast.Exists):
            self._exists(cond, scope, polarity)
            return
        if isinstance(cond, ast.InPredicate):
            self._in_predicate(cond, scope, polarity)
            return
        self.emit("SA301", f"cannot analyze condition {cond!r}", node=cond)

    # -- OR blocks and IS NULL escapes ----------------------------------
    def _or_block(self, cond: ast.BoolOp, scope: Scope, polarity: str) -> None:
        escapes = frozenset(
            item.expr
            for item in cond.items
            if isinstance(item, ast.IsNull) and not item.negated
        )
        used: set = set()
        for item in cond.items:
            if isinstance(item, ast.Comparison) and polarity == NEGATIVE:
                used |= self._comparison(item, scope, polarity, escaped=escapes)
            elif isinstance(item, ast.Comparison):
                self._comparison(item, scope, polarity, escaped=frozenset())
            elif isinstance(item, ast.IsNull) and not item.negated and polarity == NEGATIVE:
                # Deferred: an escape consumed by a sibling comparison is
                # part of the weakening and already reported with it.
                continue
            else:
                self.condition(item, scope, polarity)
        for item in cond.items:
            if isinstance(item, ast.IsNull) and not item.negated and polarity == NEGATIVE:
                if item.expr not in used:
                    self._null_test(item, scope, polarity)

    # -- comparisons -----------------------------------------------------
    def _comparison(
        self,
        comp: ast.Comparison,
        scope: Scope,
        polarity: str,
        escaped: frozenset,
    ) -> set:
        """Check one comparison; returns the escape exprs it consumed."""
        is_like = comp.op in ("like", "not like")
        used: set = set()
        for side in (comp.left, comp.right):
            self._check_expr(side, scope)
            local_hazard: List[str] = []
            outer_hazard: List[str] = []
            for column in columns_in_expr(side):
                try:
                    resolved = scope.resolve(column)
                except RewriteError as err:
                    self._outside(err, column)
                    continue
                if not resolved.scope.catalog.is_nullable(resolved.table, resolved.column):
                    continue
                if resolved.key in resolved.scope.forced_nonnull:
                    continue
                if resolved.depth > 0:
                    outer_hazard.append(column.display)
                else:
                    local_hazard.append(column.display)
            hazard = local_hazard + outer_hazard
            if not hazard:
                continue
            if polarity == POSITIVE:
                self.emit(
                    "SA203",
                    f"filter {comp!r} drops rows where "
                    f"{', '.join(hazard)} is NULL even when every completion "
                    "would satisfy it (false negatives only)",
                    node=comp,
                    columns=",".join(hazard),
                    op=comp.op,
                    polarity="positive",
                )
                continue
            # NEGATIVE polarity: the false-positive shapes.
            if side in escaped:
                used.add(side)
                self.emit(
                    "SA203",
                    f"comparison {comp!r} is weakened by an OR … IS NULL "
                    f"escape on {side!r}: sound for certainty, but the block "
                    "may still drop certain answers (false negatives only)",
                    node=comp,
                    columns=",".join(hazard),
                    op=comp.op,
                    polarity="negative",
                    escaped="yes",
                )
                continue
            if outer_hazard:
                self.emit(
                    "SA105",
                    f"correlation {comp!r} references outer column(s) "
                    f"{', '.join(outer_hazard)} that the outer positive "
                    "context does not force non-null; when the outer row "
                    "carries the null the negated block passes vacuously",
                    node=comp,
                    columns=",".join(outer_hazard),
                    op=comp.op,
                    polarity="negative",
                )
            if local_hazard:
                rule_id = "SA103" if is_like else "SA101"
                what = "LIKE" if is_like else "comparison"
                self.emit(
                    rule_id,
                    f"{what} {comp!r} sits in a negated block and "
                    f"{', '.join(local_hazard)} may be NULL: the witness is "
                    "missed naively but appears under some valuation "
                    "(false-positive source; needs an OR … IS NULL escape)",
                    node=comp,
                    columns=",".join(local_hazard),
                    op=comp.op,
                    polarity="negative",
                )
        return used

    # -- null tests ------------------------------------------------------
    def _null_test(self, cond: ast.IsNull, scope: Scope, polarity: str) -> None:
        # Deliberately *raw* schema nullability, not is_possibly_null:
        # ``b IS NOT NULL`` forces b itself via forced_nonnull, which
        # must not talk the test out of its own hazard (every completion
        # satisfies IS NOT NULL, so naive dropping is a false negative).
        hazard: List[str] = []
        for column in columns_in_expr(cond.expr):
            try:
                resolved = scope.resolve(column)
            except RewriteError as err:
                self._outside(err, column)
                continue
            if resolved.scope.catalog.is_nullable(resolved.table, resolved.column):
                hazard.append(column.display)
        self._check_expr(cond.expr, scope)
        if not hazard:
            # The test is constant (FALSE / TRUE) on non-nullable operands,
            # hence valuation-invariant.
            return
        # Which direction *selects because of the null*?  IS NULL at
        # positive polarity and IS NOT NULL at negative polarity flip
        # their truth once nulls are valuated — false positives.  The
        # dual directions only drop tuples — false negatives.
        unsound = cond.negated == (polarity == NEGATIVE)
        if unsound:
            where = "a negated block" if polarity == NEGATIVE else "a positive context"
            self.emit(
                "SA104",
                f"{cond!r} in {where} holds on the incomplete database but "
                "flips once the null is replaced by a constant — its truth "
                "is not valuation-invariant",
                node=cond,
                columns=",".join(hazard),
                polarity="negative" if polarity == NEGATIVE else "positive",
            )
        else:
            self.emit(
                "SA203",
                f"{cond!r} drops rows on the incomplete database that every "
                "completion would keep (false negatives only)",
                node=cond,
                columns=",".join(hazard),
                polarity="negative" if polarity == NEGATIVE else "positive",
            )

    # -- quantified predicates ------------------------------------------
    def _exists(self, cond: ast.Exists, scope: Scope, polarity: str) -> None:
        sub_polarity = _flip(polarity) if cond.negated else polarity
        query = cond.query
        if query.ctes:
            self.emit(
                "SA301",
                "WITH inside subqueries is outside the rewritable fragment",
                node=query.body,
            )
            return
        self.body(query.body, scope, sub_polarity)

    def _in_predicate(self, pred: ast.InPredicate, scope: Scope, polarity: str) -> None:
        self._check_expr(pred.expr, scope)
        if pred.values is not None:
            for value in pred.values:
                self._check_expr(value, scope)
            hazard: List[str] = []
            for expr in (pred.expr,) + pred.values:
                for column in columns_in_expr(expr):
                    try:
                        if scope.is_possibly_null(column):
                            hazard.append(column.display)
                    except RewriteError as err:
                        self._outside(err, column)
            if not hazard:
                return
            if polarity == NEGATIVE:
                self.emit(
                    "SA102",
                    f"membership {pred!r} sits in a negated block and "
                    f"{', '.join(hazard)} may be NULL: the test is UNKNOWN "
                    "naively but TRUE under some valuation",
                    node=pred,
                    columns=",".join(hazard),
                    polarity="negative",
                )
            else:
                self.emit(
                    "SA203",
                    f"membership {pred!r} drops rows where "
                    f"{', '.join(hazard)} is NULL even when every completion "
                    "would satisfy it (false negatives only)",
                    node=pred,
                    columns=",".join(hazard),
                    polarity="positive",
                )
            return
        # Subquery membership.  Unlike EXISTS, IN is three-valued: a
        # null probe or member makes it UNKNOWN, and UNKNOWN stays
        # UNKNOWN through NOT — so even ``x NOT IN (…)`` fails closed
        # at positive polarity (sound, false negatives only).  The
        # false-positive absorption of UNKNOWN into FALSE happens at an
        # enclosing NOT EXISTS, i.e. the *current* polarity decides the
        # membership hazard.  The subquery's own WHERE is a different
        # story: a filtered-out candidate *shrinks* the member set,
        # which under NOT IN admits answers — the body evaluates at the
        # flipped polarity when the predicate is negated.
        assert pred.query is not None
        sub_polarity = _flip(polarity) if pred.negated else polarity
        query = pred.query
        if query.ctes or not isinstance(query.body, ast.Select):
            self.emit(
                "SA301",
                "IN subquery must be a plain SELECT block",
                node=pred,
            )
            return
        sub = query.body
        out_hazard = self._membership_hazard(pred, sub, scope)
        if out_hazard:
            if polarity == NEGATIVE:
                self.emit(
                    "SA102",
                    f"membership {pred!r} compares possibly-null "
                    f"column(s) {', '.join(out_hazard)} under negation: the "
                    "probe is missed naively but matches under some valuation",
                    node=pred,
                    columns=",".join(out_hazard),
                    polarity="negative",
                )
            else:
                self.emit(
                    "SA203",
                    f"membership {pred!r} over possibly-null column(s) "
                    f"{', '.join(out_hazard)} can miss matches the "
                    "completions would all make (false negatives only)",
                    node=pred,
                    columns=",".join(out_hazard),
                    polarity="positive",
                )
        self.select(sub, scope, sub_polarity)

    def _membership_hazard(
        self, pred: ast.InPredicate, sub: ast.Select, scope: Scope
    ) -> List[str]:
        """Possibly-null columns feeding the implicit membership equality."""
        hazard: List[str] = []
        for column in columns_in_expr(pred.expr):
            try:
                if scope.is_possibly_null(column):
                    hazard.append(column.display)
            except RewriteError as err:
                self._outside(err, column)
        if len(sub.columns) == 1 and not isinstance(sub.columns[0], ast.Star):
            out = sub.columns[0]
            assert isinstance(out, ast.OutputColumn)
            try:
                sub_scope = Scope(sub.tables, self.catalog, parent=scope)
            except RewriteError:
                return hazard
            for column in columns_in_expr(out.expr):
                try:
                    if sub_scope.is_possibly_null(column):
                        hazard.append(column.display)
                except RewriteError as err:
                    self._outside(err, column)
        return hazard
