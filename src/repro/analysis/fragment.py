"""Fragment diagnostics backing enriched :class:`RewriteError`\\ s.

:func:`repro.sql.rewrite.rewrite_certain` bails on the *first* construct
outside its fragment; the analyzer keeps walking.  This module filters
an analysis down to the findings that locate fragment exits (SA301), so
a failed rewrite can report *every* offending construct with source
spans instead of just the one it tripped over.
"""

from __future__ import annotations

from typing import List, Union as TUnion

from repro.analysis.analyzer import analyze_query
from repro.analysis.diagnostics import Diagnostic
from repro.data.schema import DatabaseSchema
from repro.sql import ast

__all__ = ["fragment_diagnostics"]


def fragment_diagnostics(
    query: TUnion[ast.Query, ast.Select, ast.SetOp],
    schema: DatabaseSchema,
) -> List[Diagnostic]:
    """All SA301 (outside-the-fragment) findings for *query*.

    May be empty even when the rewriter failed: some limits — e.g. views
    referenced in a negative context — are the rewriter's, not the
    analyzer's, and the :class:`RewriteError` message itself carries the
    explanation (and span) for those.
    """
    report = analyze_query(query, schema)
    return report.by_rule("SA301")
