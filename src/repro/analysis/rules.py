"""The static soundness rule catalog.

Each rule describes one syntactic shape whose naive SQL evaluation can
diverge from certain answers on incomplete databases (Sections 3/4 of
the paper).  Rules come in two severities:

* ``unsound`` — the shape can produce **false positives**: naive SQL may
  return tuples that are not certain answers.  These are exactly the
  shapes behind the paper's Q1–Q4 false-positive measurements.
* ``suspect`` — the shape cannot produce false positives but breaks the
  ``naive == certain`` equality in other ways (false negatives, value
  drift in aggregates, null collapsing in ``DISTINCT``/set ops), or
  falls outside the fragment the rewriter can repair.

A query with *no* diagnostics at all earns the ``certified`` verdict:
its naive evaluation provably equals its certain answers with nulls
(every construct it contains is valuation-invariant).  The property
tests in ``tests/analysis/test_properties.py`` pin both directions
against :func:`repro.certain.certain_answers_with_nulls`.

``docs/analyzer.md`` renders this catalog; keep the two in sync.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["Rule", "RULES", "UNSOUND", "SUSPECT", "CERTIFIED", "rule"]

#: Verdict / severity levels, ordered from best to worst.
CERTIFIED = "certified"
SUSPECT = "suspect"
UNSOUND = "unsound"


@dataclass(frozen=True)
class Rule:
    """One entry of the rule catalog."""

    id: str
    slug: str
    severity: str
    title: str
    explanation: str


_CATALOG = (
    Rule(
        id="SA101",
        slug="nullable-comparison-under-negation",
        severity=UNSOUND,
        title="Comparison over a possibly-null column in a negated block",
        explanation=(
            "Inside NOT EXISTS (or a NOT IN subquery) a comparison whose "
            "operand may be NULL evaluates to UNKNOWN, so the witness row "
            "is missed and the negation succeeds — yet some valuation of "
            "the null makes the comparison TRUE, creating the witness and "
            "falsifying the answer.  This is the Q1/Q2/Q3 false-positive "
            "shape; the rewriter repairs it with an OR … IS NULL escape."
        ),
    ),
    Rule(
        id="SA102",
        slug="nullable-membership-under-negation",
        severity=UNSOUND,
        title="IN membership over possibly-null values in a negated block",
        explanation=(
            "An IN predicate inside a negated block compares the probe "
            "expression against member values; if either side may be NULL "
            "the membership test can be UNKNOWN naively while TRUE under "
            "some valuation, so the negation admits non-certain answers."
        ),
    ),
    Rule(
        id="SA103",
        slug="nullable-like-under-negation",
        severity=UNSOUND,
        title="LIKE over a possibly-null column in a negated block",
        explanation=(
            "A LIKE whose string operand may be NULL is UNKNOWN naively; "
            "under a valuation the pattern may match, creating the excluded "
            "witness.  This is Q4's p_name LIKE '%$color%' shape, repaired "
            "in the appendix by the part_view null branch."
        ),
    ),
    Rule(
        id="SA104",
        slug="null-test-not-valuation-invariant",
        severity=UNSOUND,
        title="IS [NOT] NULL test whose truth is not valuation-invariant",
        explanation=(
            "IS NULL in a positive context selects rows precisely because a "
            "value is unknown, but every valuation replaces the null by a "
            "constant and the test turns FALSE — the selected tuple is "
            "never a certain answer.  Dually, IS NOT NULL inside a negated "
            "block misses witnesses that appear once the null is valuated.  "
            "(The rewriter's Figure 3 maps both to FALSE.)"
        ),
    ),
    Rule(
        id="SA105",
        slug="unforced-correlation",
        severity=UNSOUND,
        title="Correlation on an outer column not forced non-null",
        explanation=(
            "A correlation predicate inside a negated block references an "
            "outer column that is nullable and not forced non-null by the "
            "outer positive context.  When the outer row carries the null, "
            "the correlated comparison is UNKNOWN for every inner row, the "
            "negation succeeds vacuously, and the answer is falsifiable.  "
            "(In Q1 the outer conjunct s_suppkey = l1.l_suppkey forces "
            "l1.l_suppkey non-null, which is why Q1 does not trip this "
            "rule — the positive-context analysis of repro.sql.nullability "
            "is what decides it.)"
        ),
    ),
    Rule(
        id="SA201",
        slug="aggregate-over-nullable",
        severity=SUSPECT,
        title="Aggregate over a possibly-null column",
        explanation=(
            "SQL aggregates silently drop NULLs, so the aggregate value on "
            "the incomplete database can differ from its value in every "
            "completion.  The paper treats aggregate subqueries as black-box "
            "constants (Section 3), which keeps this sound for certainty "
            "but makes the computed constant itself debatable."
        ),
    ),
    Rule(
        id="SA202",
        slug="distinct-or-setop-over-nullable",
        severity=SUSPECT,
        title="DISTINCT or set operation over possibly-null output columns",
        explanation=(
            "DISTINCT, UNION, INTERSECT and EXCEPT compare whole tuples; "
            "SQL collapses NULLs as if equal while distinct marked nulls "
            "may denote different values, so deduplication can merge or "
            "separate tuples differently from every completion."
        ),
    ),
    Rule(
        id="SA203",
        slug="nullable-filter-false-negatives",
        severity=SUSPECT,
        title="Positive filter over a possibly-null column",
        explanation=(
            "A comparison in a positive context only selects rows where it "
            "is TRUE, which is sound — but rows carrying the null are "
            "dropped even when every valuation would satisfy the filter, so "
            "naive answers can miss certain answers (false negatives only)."
        ),
    ),
    Rule(
        id="SA301",
        slug="outside-rewrite-fragment",
        severity=SUSPECT,
        title="Construct outside the rewritable fragment",
        explanation=(
            "The construct falls outside the fragment repro.sql.rewrite "
            "can repair (and often outside what this analyzer can reason "
            "about), so neither a certainty guarantee nor an automatic "
            "rewriting is available for it."
        ),
    ),
    Rule(
        id="SA401",
        slug="algebra-negation-over-nullable",
        severity=UNSOUND,
        title="Algebra anti-join/difference over possibly-null attributes",
        explanation=(
            "An anti-join, difference or division whose right side carries "
            "possibly-null attributes (or whose condition touches them) "
            "can fail to match naively yet match under a valuation — the "
            "algebra-level mirror of SA101."
        ),
    ),
    Rule(
        id="SA402",
        slug="algebra-null-test",
        severity=UNSOUND,
        title="Algebra selection on a non-invariant null test",
        explanation=(
            "A selection condition containing null(A) (or a negation over "
            "comparisons of possibly-null attributes) selects tuples whose "
            "membership flips once nulls are valuated."
        ),
    ),
    Rule(
        id="SA403",
        slug="algebra-nullable-filter",
        severity=SUSPECT,
        title="Algebra selection/join over possibly-null attributes",
        explanation=(
            "A positive selection or join condition over possibly-null "
            "attributes is sound for certainty but can drop tuples every "
            "completion would keep (false negatives)."
        ),
    ),
)

RULES: Dict[str, Rule] = {r.id: r for r in _CATALOG}


def rule(rule_id: str) -> Rule:
    try:
        return RULES[rule_id]
    except KeyError:
        raise KeyError(f"unknown rule {rule_id!r}; have {sorted(RULES)}") from None
