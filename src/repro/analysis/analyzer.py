"""Entry points of the static query-soundness analyzer."""

from __future__ import annotations

from typing import Optional, Union as TUnion

from repro.analysis.diagnostics import AnalysisReport
from repro.analysis.walker import QueryAnalyzer
from repro.data.schema import DatabaseSchema
from repro.sql import ast
from repro.sql.parser import parse_sql

__all__ = ["analyze_sql", "analyze_query"]


def analyze_sql(sql: str, schema: DatabaseSchema) -> AnalysisReport:
    """Parse *sql* and analyze it against *schema*.

    Returns an :class:`~repro.analysis.diagnostics.AnalysisReport` whose
    ``verdict`` is ``certified`` (naive evaluation provably equals the
    certain answers with nulls), ``suspect`` (no false positives, but
    the equality can fail in the false-negative or value direction) or
    ``unsound`` (naive evaluation can return non-certain answers).
    Syntax errors propagate as :class:`~repro.sql.lexer.SqlSyntaxError`.
    """
    return analyze_query(parse_sql(sql), schema, source=sql)


def analyze_query(
    query: TUnion[ast.Query, ast.Select, ast.SetOp],
    schema: DatabaseSchema,
    source: Optional[str] = None,
) -> AnalysisReport:
    """Analyze an already-parsed query; *source* enables pretty spans."""
    return QueryAnalyzer(schema, source=source).analyze(ast.query_of(query))
