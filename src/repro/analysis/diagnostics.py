"""Structured findings produced by the static soundness analyzer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.rules import CERTIFIED, RULES, SUSPECT, UNSOUND
from repro.sql.ast import Span

__all__ = ["Diagnostic", "AnalysisReport", "severity_rank"]

_SEVERITY_RANK = {CERTIFIED: 0, SUSPECT: 1, UNSOUND: 2}


def severity_rank(severity: str) -> int:
    """Total order on severities: certified < suspect < unsound."""
    return _SEVERITY_RANK[severity]


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule, where it fired, and why.

    ``severity`` normally matches the rule's catalog severity but may be
    *demoted* (e.g. an unsound shape inside a scalar subquery is only
    ``suspect``, because the engine evaluates the subquery as a black-box
    constant).  ``context`` carries machine-readable details — column and
    polarity names, mostly — as a sorted tuple of string pairs so the
    dataclass stays hashable and JSON output stays stable.
    """

    rule: str
    severity: str
    message: str
    span: Optional[Span] = None
    context: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self):
        if self.rule not in RULES:
            raise ValueError(f"unknown rule {self.rule!r}")
        if self.severity not in (UNSOUND, SUSPECT):
            raise ValueError(f"bad diagnostic severity {self.severity!r}")

    @property
    def explanation(self) -> str:
        return RULES[self.rule].explanation

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "slug": RULES[self.rule].slug,
            "severity": self.severity,
            "message": self.message,
            "span": list(self.span) if self.span is not None else None,
            "context": {key: value for key, value in self.context},
        }


def _sort_key(diag: Diagnostic) -> Tuple[int, int, str, str]:
    start, end = diag.span if diag.span is not None else (-1, -1)
    return (start, end, diag.rule, diag.message)


@dataclass
class AnalysisReport:
    """All findings for one query, plus the overall verdict.

    ``verdict`` is the worst severity among the diagnostics —
    ``certified`` when there are none, meaning every construct in the
    query is valuation-invariant and its naive evaluation equals its
    certain answers with nulls.
    """

    source: Optional[str] = None
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def finish(self) -> "AnalysisReport":
        """Deduplicate and order findings for deterministic output."""
        self.diagnostics = sorted(set(self.diagnostics), key=_sort_key)
        return self

    @property
    def verdict(self) -> str:
        worst = CERTIFIED
        for diag in self.diagnostics:
            if severity_rank(diag.severity) > severity_rank(worst):
                worst = diag.severity
        return worst

    @property
    def unsound(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == UNSOUND]

    def by_rule(self, rule_id: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule_id]

    def to_dict(self) -> Dict[str, object]:
        return {
            "verdict": self.verdict,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
