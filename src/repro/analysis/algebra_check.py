"""Soundness checks on translated algebra plans.

The SQL-level walker (:mod:`repro.analysis.walker`) sees the query as
written; this module sees what the engine actually runs — the algebra
produced by :func:`repro.translate.sql_to_algebra` — and applies the
same soundness reasoning to its operators:

* plain :class:`~repro.algebra.expr.AntiJoin`, ``Difference`` and
  ``Division`` are naive negation: a possibly-null attribute feeding the
  match means a witness can be missed naively yet exist under a
  valuation (SA401, the algebra mirror of SA101);
* the *unification* variants ``UnifSemiJoin`` / ``UnifAntiJoin`` of
  Definition 4 match nulls by unifiability and are exactly the paper's
  null-safe replacements, so they are never flagged;
* ``null(A)`` tests in conditions — and negations over comparisons of
  possibly-null attributes — are not valuation-invariant (SA402);
* positive conditions over possibly-null attributes are sound but can
  drop tuples every completion keeps (SA403).

Nullability of intermediate results comes from
:func:`repro.algebra.infer.output_nullability`.
"""

from __future__ import annotations

from typing import FrozenSet, List

from repro.algebra import conditions as C
from repro.algebra.expr import (
    AntiJoin,
    Difference,
    Division,
    Expr,
    Intersection,
    Join,
    Selection,
    SemiJoin,
)
from repro.algebra.infer import output_attributes, output_nullability
from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.analysis.rules import RULES

__all__ = ["analyze_algebra"]


def analyze_algebra(expr: Expr, source) -> AnalysisReport:
    """Run the algebra-level soundness checks over a plan.

    *source* is anything :func:`repro.algebra.infer.attribute_lookup`
    accepts — a :class:`~repro.data.database.Database` (instance-level
    nullability: which columns actually carry marked nulls), a
    :class:`~repro.data.schema.DatabaseSchema` (declared nullability)
    or a plain attribute dict (conservatively all-nullable).
    """
    checker = _AlgebraChecker(source)
    checker.walk(expr)
    return checker.report.finish()


def _null_tests_in(cond: C.Condition) -> List[C.NullTest]:
    if isinstance(cond, C.NullTest):
        return [cond]
    if isinstance(cond, (C.And, C.Or)):
        tests: List[C.NullTest] = []
        for item in cond.items:
            tests.extend(_null_tests_in(item))
        return tests
    if isinstance(cond, C.Not):
        return _null_tests_in(cond.item)
    return []


def _negated_attrs(cond: C.Condition, under_not: bool = False) -> FrozenSet[str]:
    """Attributes compared under an odd number of negations."""
    if isinstance(cond, C.Comparison):
        return C.attrs_in(cond) if under_not else frozenset()
    if isinstance(cond, (C.And, C.Or)):
        result: FrozenSet[str] = frozenset()
        for item in cond.items:
            result |= _negated_attrs(item, under_not)
        return result
    if isinstance(cond, C.Not):
        return _negated_attrs(cond.item, not under_not)
    return frozenset()


class _AlgebraChecker:
    def __init__(self, source):
        self.source = source
        self.report = AnalysisReport()

    def emit(self, rule_id: str, message: str, **context: str) -> None:
        self.report.add(
            Diagnostic(
                rule=rule_id,
                severity=RULES[rule_id].severity,
                message=message,
                context=tuple(sorted(context.items())),
            )
        )

    def _nullable_attrs(self, expr: Expr) -> FrozenSet[str]:
        attrs = output_attributes(expr, self.source)
        flags = output_nullability(expr, self.source)
        return frozenset(a for a, f in zip(attrs, flags) if f)

    # ------------------------------------------------------------------
    def walk(self, expr: Expr) -> None:
        if isinstance(expr, Selection):
            self._check_condition(
                expr.condition,
                self._nullable_attrs(expr.child),
                f"selection {expr.condition!r}",
            )
        elif isinstance(expr, (Join, SemiJoin, AntiJoin)):
            in_scope = self._nullable_attrs(expr.left) | self._nullable_attrs(expr.right)
            name = type(expr).__name__.lower()
            self._check_condition(
                expr.condition, in_scope, f"{name} condition {expr.condition!r}"
            )
            if isinstance(expr, AntiJoin):
                self._check_negation(
                    "antijoin", in_scope & C.attrs_in(expr.condition)
                )
        elif isinstance(expr, (Difference, Division)):
            name = type(expr).__name__.lower()
            self._check_negation(name, self._nullable_attrs(expr.right))
        elif isinstance(expr, Intersection):
            nullable = self._nullable_attrs(expr.left) | self._nullable_attrs(expr.right)
            if nullable:
                self.emit(
                    "SA403",
                    "intersection matches marked nulls by identity over "
                    f"possibly-null attribute(s) {', '.join(sorted(nullable))}; "
                    "tuples every completion would equate can fail to match "
                    "(false negatives only)",
                    attrs=",".join(sorted(nullable)),
                    operator="intersection",
                )
        # UnifSemiJoin / UnifAntiJoin are the null-safe Definition 4
        # operators: nothing to flag.
        for child in expr.children():
            self.walk(child)

    # ------------------------------------------------------------------
    def _check_negation(self, what: str, nullable: FrozenSet[str]) -> None:
        if not nullable:
            return
        self.emit(
            "SA401",
            f"naive {what} over possibly-null attribute(s) "
            f"{', '.join(sorted(nullable))}: a match missed on the incomplete "
            "database can exist under a valuation, so tuples survive the "
            "negation that are not certain (use the unification variant)",
            attrs=",".join(sorted(nullable)),
            operator=what,
        )

    def _check_condition(
        self, cond: C.Condition, in_scope: FrozenSet[str], where: str
    ) -> None:
        hazard = sorted(C.attrs_in(cond) & in_scope)
        if not hazard:
            return
        tested_attrs: FrozenSet[str] = frozenset()
        for test in _null_tests_in(cond):
            tested_attrs |= C.attrs_in(test)
        tested = sorted(tested_attrs & in_scope)
        negated = sorted(_negated_attrs(cond) & in_scope)
        if tested:
            self.emit(
                "SA402",
                f"{where} contains a null test over possibly-null "
                f"attribute(s) {', '.join(tested)}; its truth flips once the "
                "null is replaced by a constant",
                attrs=",".join(tested),
            )
        if negated:
            self.emit(
                "SA402",
                f"{where} negates comparisons over possibly-null "
                f"attribute(s) {', '.join(negated)}; the negation can hold "
                "naively yet fail under a valuation",
                attrs=",".join(negated),
            )
        if not tested and not negated:
            self.emit(
                "SA403",
                f"{where} filters on possibly-null attribute(s) "
                f"{', '.join(hazard)}: sound for certainty, but rows every "
                "completion would keep are dropped (false negatives only)",
                attrs=",".join(hazard),
            )
