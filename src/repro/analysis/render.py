"""Rendering of analysis reports: human-readable text and stable JSON."""

from __future__ import annotations

import json
from typing import List, Optional

from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.analysis.rules import RULES, UNSOUND
from repro.sql.lexer import line_col

__all__ = ["render_pretty", "render_json"]

_BADGE = {UNSOUND: "UNSOUND", "suspect": "suspect", "certified": "certified"}


def _excerpt(source: str, span, width: int = 78) -> List[str]:
    """The source line containing the span start, with a caret underline."""
    start, end = span
    start = max(0, min(start, len(source)))
    line_start = source.rfind("\n", 0, start) + 1
    line_end = source.find("\n", start)
    if line_end < 0:
        line_end = len(source)
    line = source[line_start:line_end].rstrip()
    offset = start - line_start
    length = max(1, min(end, line_start + len(line)) - start)
    if len(line) > width:
        # Keep the caret visible: trim around the offset.
        cut = max(0, offset - width // 2)
        line = line[cut : cut + width]
        offset -= cut
    return ["    " + line, "    " + " " * offset + "^" * min(length, max(1, len(line) - offset))]


def _render_diag(diag: Diagnostic, source: Optional[str]) -> List[str]:
    rule = RULES[diag.rule]
    location = ""
    if diag.span is not None and source is not None:
        line, col = line_col(source, diag.span[0])
        location = f" (line {line}, column {col})"
    lines = [f"  [{diag.rule} {diag.severity}] {rule.slug}{location}", f"    {diag.message}"]
    if diag.span is not None and source is not None:
        lines.extend(_excerpt(source, diag.span))
    return lines


def render_pretty(report: AnalysisReport, name: Optional[str] = None) -> str:
    """Multi-line human-readable rendering of *report*."""
    header = f"{name}: " if name else ""
    lines = [f"{header}verdict: {_BADGE[report.verdict]}"]
    if not report.diagnostics:
        lines.append(
            "  no diagnostics — naive evaluation returns exactly the certain "
            "answers with nulls"
        )
    for diag in report.diagnostics:
        lines.extend(_render_diag(diag, report.source))
    return "\n".join(lines)


def render_json(report: AnalysisReport, name: Optional[str] = None) -> str:
    """Deterministic JSON rendering (sorted keys, two-space indent)."""
    payload = report.to_dict()
    if name is not None:
        payload["query"] = name
    return json.dumps(payload, indent=2, sort_keys=True)
