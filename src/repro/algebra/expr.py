"""Relational algebra expression trees.

Nodes mirror the paper's language: base relations, σ, π, ×, ∪, −, ∩ and
rename, plus:

* the *unification semijoins* ``⋉⇑`` / ``▷⇑`` of Definition 4 (used by
  the improved translation of Figure 3);
* general condition-based semijoin/antijoin (the natural target of SQL's
  ``EXISTS`` / ``NOT EXISTS``);
* ``adom^k`` as a first-class node (needed by the Figure 2 translation,
  whose impracticality Section 5 demonstrates);
* derived operators join and division (division appears in Fact 1).

Expressions are immutable; construction validates arities/attributes as
far as possible without a database at hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.algebra.conditions import Condition
from repro.data.relation import Relation

__all__ = [
    "Expr",
    "RelationRef",
    "Literal",
    "AdomPower",
    "Selection",
    "Projection",
    "Rename",
    "Product",
    "Join",
    "Union",
    "Intersection",
    "Difference",
    "SemiJoin",
    "AntiJoin",
    "UnifSemiJoin",
    "UnifAntiJoin",
    "Division",
    "walk",
]


class Expr:
    """Base class for algebra expressions."""

    __slots__ = ()

    def children(self) -> Tuple["Expr", ...]:
        return ()

    # Convenience combinators -------------------------------------------------
    def select(self, condition: Condition) -> "Selection":
        return Selection(self, condition)

    def project(self, *attributes: str) -> "Projection":
        return Projection(self, tuple(attributes))

    def product(self, other: "Expr") -> "Product":
        return Product(self, other)

    def union(self, other: "Expr") -> "Union":
        return Union(self, other)

    def intersect(self, other: "Expr") -> "Intersection":
        return Intersection(self, other)

    def minus(self, other: "Expr") -> "Difference":
        return Difference(self, other)


@dataclass(frozen=True)
class RelationRef(Expr):
    """A base relation, by name."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Expr):
    """An inline constant relation (used in tests and examples)."""

    relation: Relation

    def __repr__(self) -> str:
        return f"lit({', '.join(self.relation.attributes)})"


@dataclass(frozen=True)
class AdomPower(Expr):
    """``adom(D)^k`` with the given output attribute names.

    The active domain is the union of all values in all relations of the
    database, so this node's cardinality is ``|adom(D)|^k`` — the
    combinatorial bomb at the heart of Section 5.
    """

    attributes: Tuple[str, ...]

    def __repr__(self) -> str:
        return f"adom^{len(self.attributes)}"


@dataclass(frozen=True)
class Selection(Expr):
    child: Expr
    condition: Condition

    def children(self):
        return (self.child,)

    def __repr__(self) -> str:
        return f"σ[{self.condition!r}]({self.child!r})"


@dataclass(frozen=True)
class Projection(Expr):
    child: Expr
    attributes: Tuple[str, ...]

    def children(self):
        return (self.child,)

    def __repr__(self) -> str:
        return f"π[{', '.join(self.attributes)}]({self.child!r})"


@dataclass(frozen=True)
class Rename(Expr):
    """Attribute renaming; ``mapping`` is old-name → new-name."""

    child: Expr
    mapping: Tuple[Tuple[str, str], ...]

    def __init__(self, child: Expr, mapping):
        object.__setattr__(self, "child", child)
        if isinstance(mapping, dict):
            mapping = tuple(sorted(mapping.items()))
        object.__setattr__(self, "mapping", tuple(mapping))

    def mapping_dict(self) -> Dict[str, str]:
        return dict(self.mapping)

    def children(self):
        return (self.child,)

    def __repr__(self) -> str:
        ren = ", ".join(f"{a}→{b}" for a, b in self.mapping)
        return f"ρ[{ren}]({self.child!r})"


@dataclass(frozen=True)
class Product(Expr):
    left: Expr
    right: Expr

    def children(self):
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} × {self.right!r})"


@dataclass(frozen=True)
class Join(Expr):
    """θ-join: ``σ_cond(left × right)`` kept as one node for readability."""

    left: Expr
    right: Expr
    condition: Condition

    def children(self):
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} ⋈[{self.condition!r}] {self.right!r})"


@dataclass(frozen=True)
class Union(Expr):
    left: Expr
    right: Expr

    def children(self):
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} ∪ {self.right!r})"


@dataclass(frozen=True)
class Intersection(Expr):
    left: Expr
    right: Expr

    def children(self):
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} ∩ {self.right!r})"


@dataclass(frozen=True)
class Difference(Expr):
    left: Expr
    right: Expr

    def children(self):
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} − {self.right!r})"


@dataclass(frozen=True)
class SemiJoin(Expr):
    """``left ⋉_cond right``: left tuples with a θ-matching right tuple.

    The condition sees the concatenation of left and right attributes.
    """

    left: Expr
    right: Expr
    condition: Condition

    def children(self):
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} ⋉[{self.condition!r}] {self.right!r})"


@dataclass(frozen=True)
class AntiJoin(Expr):
    """``left ▷_cond right``: left tuples with *no* θ-matching right tuple."""

    left: Expr
    right: Expr
    condition: Condition

    def children(self):
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} ▷[{self.condition!r}] {self.right!r})"


@dataclass(frozen=True)
class UnifSemiJoin(Expr):
    """Left unification semijoin ``R ⋉⇑ S`` (Definition 4).

    Both sides must have the same arity; matching is positional tuple
    unifiability.  ``codd=True`` uses the position-wise (Codd) test,
    which is exact for non-repeating nulls and a sound approximation
    otherwise (Corollary 1).
    """

    left: Expr
    right: Expr
    codd: bool = False

    def children(self):
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} ⋉⇑ {self.right!r})"


@dataclass(frozen=True)
class UnifAntiJoin(Expr):
    """Left unification anti-semijoin ``R ▷⇑ S = R − (R ⋉⇑ S)``."""

    left: Expr
    right: Expr
    codd: bool = False

    def children(self):
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} ▷⇑ {self.right!r})"


@dataclass(frozen=True)
class Division(Expr):
    """``left ÷ right``: the derived division operator of Fact 1.

    ``right``'s attributes must be a subset of ``left``'s; the result
    has the remaining attributes ``X`` and contains the ``x`` such that
    ``(x, y) ∈ left`` for every ``y ∈ right``.
    """

    left: Expr
    right: Expr

    def children(self):
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} ÷ {self.right!r})"


def walk(expr: Expr):
    """Yield *expr* and all descendants, pre-order."""
    yield expr
    for child in expr.children():
        yield from walk(child)
