"""SQL's three-valued logic (Kleene logic) as used by ``EvalSQL``.

Truth values are ``TRUE``, ``FALSE`` and ``UNKNOWN`` with the paper's
rules: ``¬u = u``; ``u ∧ t = u``, ``u ∧ u = u``, ``u ∧ f = f``; dually
for ``∨`` by De Morgan.  ``WHERE`` keeps exactly the rows whose
condition is ``TRUE``.
"""

from __future__ import annotations

import enum
from typing import Iterable

__all__ = ["ThreeValued", "TRUE", "FALSE", "UNKNOWN", "tv_and", "tv_or", "tv_not", "from_bool"]


class ThreeValued(enum.Enum):
    TRUE = "t"
    FALSE = "f"
    UNKNOWN = "u"

    def __bool__(self) -> bool:
        """Truthiness = "is selected by WHERE" (only ``TRUE`` is)."""
        return self is ThreeValued.TRUE

    def __and__(self, other: "ThreeValued") -> "ThreeValued":
        return tv_and(self, other)

    def __or__(self, other: "ThreeValued") -> "ThreeValued":
        return tv_or(self, other)

    def __invert__(self) -> "ThreeValued":
        return tv_not(self)

    def __repr__(self) -> str:
        return self.value


TRUE = ThreeValued.TRUE
FALSE = ThreeValued.FALSE
UNKNOWN = ThreeValued.UNKNOWN


def from_bool(value: bool) -> ThreeValued:
    return TRUE if value else FALSE


def tv_not(a: ThreeValued) -> ThreeValued:
    if a is TRUE:
        return FALSE
    if a is FALSE:
        return TRUE
    return UNKNOWN


def tv_and(a: ThreeValued, b: ThreeValued) -> ThreeValued:
    if a is FALSE or b is FALSE:
        return FALSE
    if a is TRUE and b is TRUE:
        return TRUE
    return UNKNOWN


def tv_or(a: ThreeValued, b: ThreeValued) -> ThreeValued:
    if a is TRUE or b is TRUE:
        return TRUE
    if a is FALSE and b is FALSE:
        return FALSE
    return UNKNOWN


def tv_all(values: Iterable[ThreeValued]) -> ThreeValued:
    """Conjunction over an iterable (short-circuits on FALSE)."""
    result = TRUE
    for v in values:
        if v is FALSE:
            return FALSE
        if v is UNKNOWN:
            result = UNKNOWN
    return result


def tv_any(values: Iterable[ThreeValued]) -> ThreeValued:
    """Disjunction over an iterable (short-circuits on TRUE)."""
    result = FALSE
    for v in values:
        if v is TRUE:
            return TRUE
        if v is UNKNOWN:
            result = UNKNOWN
    return result
