"""Selection conditions: terms, comparisons, null tests, Boolean structure.

The paper's condition language is positive Boolean combinations of
(dis)equalities, closed under negation by pushing ``¬`` to the atoms
(Section 2).  We additionally support order comparisons and ``LIKE``
because the TPC-H queries use them; the translations treat them exactly
like equality/disequality (Section 7, "Translating additional
features").

Two evaluation functions are provided:

* :func:`eval_naive` — Boolean; marked nulls behave as ordinary values,
  so ``⊥ = ⊥`` is true for the *same* null and false otherwise;
* :func:`eval_3vl`  — SQL's three-valued logic; any comparison with a
  null operand is *unknown*.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache
from typing import FrozenSet, Mapping, Tuple, Union

from repro.data.nulls import is_null
from repro.algebra.threevl import FALSE, TRUE, UNKNOWN, ThreeValued, from_bool

__all__ = [
    "Attr",
    "Const",
    "Term",
    "Comparison",
    "NullTest",
    "And",
    "Or",
    "Not",
    "TrueCond",
    "FalseCond",
    "Condition",
    "eq",
    "neq",
    "negate",
    "attrs_in",
    "eval_naive",
    "eval_3vl",
    "like_match",
    "COMPARISON_OPS",
    "NEGATED_OP",
]

# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Attr:
    """An attribute reference (fully-qualified at algebra level)."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A constant literal."""

    value: object

    def __repr__(self) -> str:
        return repr(self.value)


Term = Union[Attr, Const]


def _resolve(term: Term, row: Mapping[str, object]) -> object:
    if isinstance(term, Attr):
        try:
            return row[term.name]
        except KeyError:
            raise KeyError(
                f"attribute {term.name!r} not bound; have {sorted(row)}"
            ) from None
    return term.value


# ---------------------------------------------------------------------------
# Atoms
# ---------------------------------------------------------------------------

COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=", "like", "not like")

NEGATED_OP = {
    "=": "<>",
    "<>": "=",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
    "like": "not like",
    "not like": "like",
}


@dataclass(frozen=True)
class Comparison:
    """``left op right`` where *op* is one of :data:`COMPARISON_OPS`."""

    op: str
    left: Term
    right: Term

    def __post_init__(self):
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class NullTest:
    """``null(term)`` when ``is_null`` else ``const(term)``.

    Corresponds to SQL's ``term IS NULL`` / ``term IS NOT NULL``.
    """

    term: Term
    is_null: bool

    def __repr__(self) -> str:
        name = "null" if self.is_null else "const"
        return f"{name}({self.term!r})"


# ---------------------------------------------------------------------------
# Boolean structure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class And:
    items: Tuple["Condition", ...]

    def __init__(self, *items: "Condition"):
        flattened = []
        for item in items:
            if isinstance(item, And):
                flattened.extend(item.items)
            else:
                flattened.append(item)
        object.__setattr__(self, "items", tuple(flattened))

    def __repr__(self) -> str:
        return "(" + " ∧ ".join(map(repr, self.items)) + ")"


@dataclass(frozen=True)
class Or:
    items: Tuple["Condition", ...]

    def __init__(self, *items: "Condition"):
        flattened = []
        for item in items:
            if isinstance(item, Or):
                flattened.extend(item.items)
            else:
                flattened.append(item)
        object.__setattr__(self, "items", tuple(flattened))

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(map(repr, self.items)) + ")"


@dataclass(frozen=True)
class Not:
    item: "Condition"

    def __repr__(self) -> str:
        return f"¬{self.item!r}"


@dataclass(frozen=True)
class TrueCond:
    def __repr__(self) -> str:
        return "⊤"


@dataclass(frozen=True)
class FalseCond:
    def __repr__(self) -> str:
        return "⊥cond"


Condition = Union[Comparison, NullTest, And, Or, Not, TrueCond, FalseCond]


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------


def _term(x: object) -> Term:
    if isinstance(x, (Attr, Const)):
        return x
    if isinstance(x, str):
        return Attr(x)
    return Const(x)


def eq(left: object, right: object) -> Comparison:
    """``left = right``; bare strings are attributes, other values constants."""
    return Comparison("=", _term(left), _term(right))


def neq(left: object, right: object) -> Comparison:
    return Comparison("<>", _term(left), _term(right))


# ---------------------------------------------------------------------------
# Structural helpers
# ---------------------------------------------------------------------------


def attrs_in(cond: Condition) -> FrozenSet[str]:
    """All attribute names mentioned in *cond*."""
    if isinstance(cond, Comparison):
        names = set()
        for t in (cond.left, cond.right):
            if isinstance(t, Attr):
                names.add(t.name)
        return frozenset(names)
    if isinstance(cond, NullTest):
        return frozenset({cond.term.name}) if isinstance(cond.term, Attr) else frozenset()
    if isinstance(cond, (And, Or)):
        result: FrozenSet[str] = frozenset()
        for item in cond.items:
            result |= attrs_in(item)
        return result
    if isinstance(cond, Not):
        return attrs_in(cond.item)
    return frozenset()


def negate(cond: Condition) -> Condition:
    """``¬cond`` with the negation pushed down to atoms.

    Comparisons flip their operator (``=`` ↔ ``<>`` etc.), ``null`` and
    ``const`` interchange, and De Morgan's laws apply to ∧/∨ — exactly
    the closure property of the paper's condition language.
    """
    if isinstance(cond, Comparison):
        return Comparison(NEGATED_OP[cond.op], cond.left, cond.right)
    if isinstance(cond, NullTest):
        return NullTest(cond.term, not cond.is_null)
    if isinstance(cond, And):
        return Or(*[negate(c) for c in cond.items])
    if isinstance(cond, Or):
        return And(*[negate(c) for c in cond.items])
    if isinstance(cond, Not):
        return cond.item
    if isinstance(cond, TrueCond):
        return FalseCond()
    if isinstance(cond, FalseCond):
        return TrueCond()
    raise TypeError(f"cannot negate {cond!r}")


# ---------------------------------------------------------------------------
# LIKE
# ---------------------------------------------------------------------------


@lru_cache(maxsize=1024)
def _like_regex(pattern: str) -> "re.Pattern[str]":
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def like_match(value: str, pattern: str) -> bool:
    """SQL ``LIKE`` with ``%`` and ``_`` wildcards."""
    return _like_regex(pattern).match(str(value)) is not None


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


def _compare_constants(op: str, a: object, b: object) -> bool:
    if op == "=":
        return a == b
    if op == "<>":
        return a != b
    if op == "like":
        return like_match(a, b)
    if op == "not like":
        return not like_match(a, b)
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    if op == ">=":
        return a >= b
    raise ValueError(f"unknown operator {op!r}")  # pragma: no cover


def eval_naive(cond: Condition, row: Mapping[str, object]) -> bool:
    """Naive (marked-null) Boolean evaluation.

    ``⊥ = c`` is false; ``⊥ = ⊥'`` is true iff the two nulls are the
    same element of ``Null``; ``⊥ <> x`` is the complement of equality.
    Order comparisons and ``LIKE`` involving a null are false — the
    theoretical development only uses (dis)equalities on nulls, and this
    choice keeps naive evaluation monotone for the positive fragment.
    """
    if isinstance(cond, TrueCond):
        return True
    if isinstance(cond, FalseCond):
        return False
    if isinstance(cond, And):
        return all(eval_naive(c, row) for c in cond.items)
    if isinstance(cond, Or):
        return any(eval_naive(c, row) for c in cond.items)
    if isinstance(cond, Not):
        return not eval_naive(cond.item, row)
    if isinstance(cond, NullTest):
        value = _resolve(cond.term, row)
        return is_null(value) == cond.is_null
    if isinstance(cond, Comparison):
        a = _resolve(cond.left, row)
        b = _resolve(cond.right, row)
        if cond.op == "=":
            return a == b  # marked-null label equality
        if cond.op == "<>":
            return a != b
        if is_null(a) or is_null(b):
            return False
        return _compare_constants(cond.op, a, b)
    raise TypeError(f"cannot evaluate {cond!r}")


def eval_3vl(cond: Condition, row: Mapping[str, object]) -> ThreeValued:
    """SQL three-valued evaluation (``EvalSQL`` semantics)."""
    if isinstance(cond, TrueCond):
        return TRUE
    if isinstance(cond, FalseCond):
        return FALSE
    if isinstance(cond, And):
        result = TRUE
        for c in cond.items:
            v = eval_3vl(c, row)
            if v is FALSE:
                return FALSE
            if v is UNKNOWN:
                result = UNKNOWN
        return result
    if isinstance(cond, Or):
        result = FALSE
        for c in cond.items:
            v = eval_3vl(c, row)
            if v is TRUE:
                return TRUE
            if v is UNKNOWN:
                result = UNKNOWN
        return result
    if isinstance(cond, Not):
        return ~eval_3vl(cond.item, row)
    if isinstance(cond, NullTest):
        value = _resolve(cond.term, row)
        return from_bool(is_null(value) == cond.is_null)
    if isinstance(cond, Comparison):
        a = _resolve(cond.left, row)
        b = _resolve(cond.right, row)
        if is_null(a) or is_null(b):
            return UNKNOWN
        return from_bool(_compare_constants(cond.op, a, b))
    raise TypeError(f"cannot evaluate {cond!r}")
