"""Relational algebra over incomplete databases.

This package provides the query language of the paper (Section 2): the
standard operations σ, π, ×, ∪, −, ∩ (plus derived join, division and
the unification semijoins of Definition 4), a positive-closed condition
language with ``const(A)`` / ``null(A)`` predicates, and two evaluation
semantics:

* ``naive``  — nulls behave like ordinary values; ``⊥ = ⊥'`` holds iff
  the two marked nulls are the same element of ``Null`` (Fact 1);
* ``sql``    — SQL's three-valued logic, where comparisons touching a
  null evaluate to *unknown* (Fact 2, ``EvalSQL``).
"""

from repro.algebra.conditions import (
    Attr,
    Const,
    Comparison,
    NullTest,
    And,
    Or,
    Not,
    TrueCond,
    FalseCond,
    Condition,
    attrs_in,
    eq,
    neq,
    negate,
)
from repro.algebra.expr import (
    AdomPower,
    AntiJoin,
    Difference,
    Division,
    Expr,
    Intersection,
    Join,
    Literal,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    SemiJoin,
    Union,
    UnifAntiJoin,
    UnifSemiJoin,
)
from repro.algebra.evaluate import evaluate, EvaluationBudgetExceeded
from repro.algebra.threevl import ThreeValued, TRUE, FALSE, UNKNOWN
from repro.algebra.unify import unifiable, unify_rows

__all__ = [
    "Attr",
    "Const",
    "Comparison",
    "NullTest",
    "And",
    "Or",
    "Not",
    "TrueCond",
    "FalseCond",
    "Condition",
    "attrs_in",
    "eq",
    "neq",
    "negate",
    "AdomPower",
    "AntiJoin",
    "Difference",
    "Division",
    "Expr",
    "Intersection",
    "Join",
    "Literal",
    "Product",
    "Projection",
    "RelationRef",
    "Rename",
    "Selection",
    "SemiJoin",
    "Union",
    "UnifAntiJoin",
    "UnifSemiJoin",
    "evaluate",
    "EvaluationBudgetExceeded",
    "ThreeValued",
    "TRUE",
    "FALSE",
    "UNKNOWN",
    "unifiable",
    "unify_rows",
]
