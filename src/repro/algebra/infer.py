"""Static inference of output attributes for algebra expressions.

The translations of Figures 2 and 3 need to know the arity and
attribute names of every subexpression *without* evaluating it (e.g. to
build ``adom^ar(Q)`` or to check semijoin compatibility).  This module
derives them from a name → attributes lookup, which can be a
:class:`~repro.data.database.Database`, a
:class:`~repro.data.schema.DatabaseSchema`, or a plain dict.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, Union as TUnion

from repro.algebra.expr import (
    AdomPower,
    AntiJoin,
    Difference,
    Division,
    Expr,
    Intersection,
    Join,
    Literal,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    SemiJoin,
    Union,
    UnifAntiJoin,
    UnifSemiJoin,
)
from repro.data.database import Database
from repro.data.nulls import is_null
from repro.data.schema import DatabaseSchema

__all__ = [
    "output_attributes",
    "output_nullability",
    "arity_of",
    "attribute_lookup",
    "nullability_lookup",
]

Lookup = Callable[[str], Tuple[str, ...]]
NullLookup = Callable[[str], Tuple[bool, ...]]


def attribute_lookup(source: TUnion[Database, DatabaseSchema, Dict[str, Tuple[str, ...]]]) -> Lookup:
    """Normalise a schema source into a ``name -> attributes`` function."""
    if isinstance(source, Database):
        def lookup(name: str) -> Tuple[str, ...]:
            return source[name].attributes
        return lookup
    if isinstance(source, DatabaseSchema):
        def lookup(name: str) -> Tuple[str, ...]:
            return source[name].attribute_names
        return lookup
    if isinstance(source, dict):
        def lookup(name: str) -> Tuple[str, ...]:
            return tuple(source[name])
        return lookup
    raise TypeError(f"cannot derive attribute lookup from {type(source).__name__}")


def nullability_lookup(
    source: TUnion[Database, DatabaseSchema, Dict[str, Tuple[str, ...]]],
) -> NullLookup:
    """Normalise a schema source into a ``name -> nullable flags`` function.

    A :class:`Database` yields *instance* nullability (which columns
    actually carry marked nulls); a :class:`DatabaseSchema` yields the
    declared nullability; a plain attribute dict carries no constraint
    information, so every column is conservatively nullable.
    """
    if isinstance(source, Database):
        def lookup(name: str) -> Tuple[bool, ...]:
            return _relation_nullability(source[name])
        return lookup
    if isinstance(source, DatabaseSchema):
        def lookup(name: str) -> Tuple[bool, ...]:
            schema = source[name]
            return tuple(schema.is_nullable(a) for a in schema.attribute_names)
        return lookup
    if isinstance(source, dict):
        def lookup(name: str) -> Tuple[bool, ...]:
            return tuple(True for _ in source[name])
        return lookup
    raise TypeError(f"cannot derive nullability lookup from {type(source).__name__}")


def _relation_nullability(relation) -> Tuple[bool, ...]:
    flags = [False] * len(relation.attributes)
    for row in relation.rows:
        for i, value in enumerate(row):
            if not flags[i] and is_null(value):
                flags[i] = True
    return tuple(flags)


def output_attributes(expr: Expr, source) -> Tuple[str, ...]:
    """Attribute names of the relation *expr* evaluates to."""
    lookup = source if callable(source) else attribute_lookup(source)
    return _infer(expr, lookup)


def output_nullability(expr: Expr, source) -> Tuple[bool, ...]:
    """Which output positions of *expr* may carry (marked) nulls.

    Aligned with :func:`output_attributes`.  The result is an
    over-approximation: ``False`` is a guarantee, ``True`` only a
    possibility.  Used by the algebra-level soundness checks of
    :mod:`repro.analysis.algebra_check`.
    """
    return _infer_nullable(expr, attribute_lookup(source), nullability_lookup(source))


def arity_of(expr: Expr, source) -> int:
    return len(output_attributes(expr, source))


def _infer(expr: Expr, lookup: Lookup) -> Tuple[str, ...]:
    if isinstance(expr, RelationRef):
        return tuple(lookup(expr.name))
    if isinstance(expr, Literal):
        return expr.relation.attributes
    if isinstance(expr, AdomPower):
        return expr.attributes
    if isinstance(expr, Selection):
        return _infer(expr.child, lookup)
    if isinstance(expr, Projection):
        return expr.attributes
    if isinstance(expr, Rename):
        mapping = expr.mapping_dict()
        return tuple(mapping.get(a, a) for a in _infer(expr.child, lookup))
    if isinstance(expr, (Product, Join)):
        return _infer(expr.left, lookup) + _infer(expr.right, lookup)
    if isinstance(expr, (Union, Intersection, Difference)):
        return _infer(expr.left, lookup)
    if isinstance(expr, (SemiJoin, AntiJoin, UnifSemiJoin, UnifAntiJoin)):
        return _infer(expr.left, lookup)
    if isinstance(expr, Division):
        left = _infer(expr.left, lookup)
        right = set(_infer(expr.right, lookup))
        return tuple(a for a in left if a not in right)
    raise TypeError(f"cannot infer attributes of {type(expr).__name__}")


def _infer_nullable(expr: Expr, lookup: Lookup, nlookup: NullLookup) -> Tuple[bool, ...]:
    if isinstance(expr, RelationRef):
        return nlookup(expr.name)
    if isinstance(expr, Literal):
        return _relation_nullability(expr.relation)
    if isinstance(expr, AdomPower):
        # The active domain includes every null in the database.
        return tuple(True for _ in expr.attributes)
    if isinstance(expr, Selection):
        return _infer_nullable(expr.child, lookup, nlookup)
    if isinstance(expr, Projection):
        child_attrs = _infer(expr.child, lookup)
        child_flags = _infer_nullable(expr.child, lookup, nlookup)
        by_name = dict(zip(child_attrs, child_flags))
        return tuple(by_name.get(a, True) for a in expr.attributes)
    if isinstance(expr, Rename):
        return _infer_nullable(expr.child, lookup, nlookup)
    if isinstance(expr, (Product, Join)):
        return _infer_nullable(expr.left, lookup, nlookup) + _infer_nullable(
            expr.right, lookup, nlookup
        )
    if isinstance(expr, Union):
        left = _infer_nullable(expr.left, lookup, nlookup)
        right = _infer_nullable(expr.right, lookup, nlookup)
        return tuple(a or b for a, b in zip(left, right))
    if isinstance(expr, Intersection):
        # A surviving tuple must be producible by both operands.
        left = _infer_nullable(expr.left, lookup, nlookup)
        right = _infer_nullable(expr.right, lookup, nlookup)
        return tuple(a and b for a, b in zip(left, right))
    if isinstance(expr, (Difference, SemiJoin, AntiJoin, UnifSemiJoin, UnifAntiJoin)):
        return _infer_nullable(expr.left, lookup, nlookup)
    if isinstance(expr, Division):
        left_attrs = _infer(expr.left, lookup)
        left_flags = _infer_nullable(expr.left, lookup, nlookup)
        right = set(_infer(expr.right, lookup))
        return tuple(f for a, f in zip(left_attrs, left_flags) if a not in right)
    raise TypeError(f"cannot infer nullability of {type(expr).__name__}")
