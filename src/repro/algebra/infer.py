"""Static inference of output attributes for algebra expressions.

The translations of Figures 2 and 3 need to know the arity and
attribute names of every subexpression *without* evaluating it (e.g. to
build ``adom^ar(Q)`` or to check semijoin compatibility).  This module
derives them from a name → attributes lookup, which can be a
:class:`~repro.data.database.Database`, a
:class:`~repro.data.schema.DatabaseSchema`, or a plain dict.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, Union as TUnion

from repro.algebra.expr import (
    AdomPower,
    AntiJoin,
    Difference,
    Division,
    Expr,
    Intersection,
    Join,
    Literal,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    SemiJoin,
    Union,
    UnifAntiJoin,
    UnifSemiJoin,
)
from repro.data.database import Database
from repro.data.schema import DatabaseSchema

__all__ = ["output_attributes", "arity_of", "attribute_lookup"]

Lookup = Callable[[str], Tuple[str, ...]]


def attribute_lookup(source: TUnion[Database, DatabaseSchema, Dict[str, Tuple[str, ...]]]) -> Lookup:
    """Normalise a schema source into a ``name -> attributes`` function."""
    if isinstance(source, Database):
        def lookup(name: str) -> Tuple[str, ...]:
            return source[name].attributes
        return lookup
    if isinstance(source, DatabaseSchema):
        def lookup(name: str) -> Tuple[str, ...]:
            return source[name].attribute_names
        return lookup
    if isinstance(source, dict):
        def lookup(name: str) -> Tuple[str, ...]:
            return tuple(source[name])
        return lookup
    raise TypeError(f"cannot derive attribute lookup from {type(source).__name__}")


def output_attributes(expr: Expr, source) -> Tuple[str, ...]:
    """Attribute names of the relation *expr* evaluates to."""
    lookup = source if callable(source) else attribute_lookup(source)
    return _infer(expr, lookup)


def arity_of(expr: Expr, source) -> int:
    return len(output_attributes(expr, source))


def _infer(expr: Expr, lookup: Lookup) -> Tuple[str, ...]:
    if isinstance(expr, RelationRef):
        return tuple(lookup(expr.name))
    if isinstance(expr, Literal):
        return expr.relation.attributes
    if isinstance(expr, AdomPower):
        return expr.attributes
    if isinstance(expr, Selection):
        return _infer(expr.child, lookup)
    if isinstance(expr, Projection):
        return expr.attributes
    if isinstance(expr, Rename):
        mapping = expr.mapping_dict()
        return tuple(mapping.get(a, a) for a in _infer(expr.child, lookup))
    if isinstance(expr, (Product, Join)):
        return _infer(expr.left, lookup) + _infer(expr.right, lookup)
    if isinstance(expr, (Union, Intersection, Difference)):
        return _infer(expr.left, lookup)
    if isinstance(expr, (SemiJoin, AntiJoin, UnifSemiJoin, UnifAntiJoin)):
        return _infer(expr.left, lookup)
    if isinstance(expr, Division):
        left = _infer(expr.left, lookup)
        right = set(_infer(expr.right, lookup))
        return tuple(a for a in left if a not in right)
    raise TypeError(f"cannot infer attributes of {type(expr).__name__}")
