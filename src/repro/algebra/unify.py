"""Tuple unification (Definition 2) and the unification join condition.

Two tuples ``r̄`` and ``s̄`` of the same length are *unifiable*
(``r̄ ⇑ s̄``) if some valuation of nulls makes them equal.  With marked
nulls this is a unification problem: build the equivalence classes
induced by the positional equalities and check that no class contains
two distinct constants.

For Codd nulls (no repetition) the check degenerates to the per-position
test "equal constants, or at least one null" — but the general algorithm
below is correct for both, and the paper's translations are stated for
the general case.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.data.nulls import Null, is_null

__all__ = ["unifiable", "unify_rows", "positionwise_unifiable"]


class _UnionFind:
    """Tiny union-find over hashable items."""

    def __init__(self) -> None:
        self.parent: Dict[object, object] = {}

    def find(self, x: object) -> object:
        parent = self.parent
        parent.setdefault(x, x)
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    def union(self, a: object, b: object) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


def unifiable(r: Sequence[object], s: Sequence[object]) -> bool:
    """Return ``True`` iff ``r ⇑ s`` (some valuation makes them equal)."""
    if len(r) != len(s):
        return False
    uf = _UnionFind()
    for a, b in zip(r, s):
        if not is_null(a) and not is_null(b):
            if a != b:
                return False
            continue
        uf.union(_key(a), _key(b))
    # A class with two distinct constants is contradictory.
    constant_of: Dict[object, object] = {}
    for a, b in zip(r, s):
        for v in (a, b):
            if not is_null(v):
                root = uf.find(_key(v))
                if root in constant_of and constant_of[root] != v:
                    return False
                constant_of[root] = v
    return True


def _key(value: object) -> object:
    """Union-find key: nulls by identity-label, constants tagged."""
    if is_null(value):
        return ("⊥", value.label)
    return ("c", value)


def unify_rows(
    r: Sequence[object], s: Sequence[object]
) -> Optional[Dict[Null, object]]:
    """A most-general unifier as a partial valuation, or ``None``.

    Nulls forced to a constant map to that constant; nulls only equated
    with other nulls map to a representative null of their class (so the
    returned mapping is not a valuation in the strict sense, but it
    witnesses unifiability and is convenient for diagnostics).
    """
    if len(r) != len(s):
        return None
    if not unifiable(r, s):
        return None
    uf = _UnionFind()
    for a, b in zip(r, s):
        if is_null(a) or is_null(b):
            uf.union(_key(a), _key(b))
    constant_of: Dict[object, object] = {}
    null_of: Dict[object, Null] = {}
    for a, b in zip(r, s):
        for v in (a, b):
            root = uf.find(_key(v))
            if is_null(v):
                null_of.setdefault(root, v)
            else:
                constant_of[root] = v
    mapping: Dict[Null, object] = {}
    for a, b in zip(r, s):
        for v in (a, b):
            if is_null(v):
                root = uf.find(_key(v))
                mapping[v] = constant_of.get(root, null_of[root])
    return mapping


def positionwise_unifiable(r: Sequence[object], s: Sequence[object]) -> bool:
    """The Codd-null shortcut: per position, equal or at least one null.

    Sound and complete when no null repeats across the two tuples; an
    over-approximation of :func:`unifiable` otherwise (it may declare
    unifiable a pair that marked-null semantics rejects -- acceptable in
    the translations by Corollary 1, which allows weakening the ``Q?``
    side).
    """
    if len(r) != len(s):
        return False
    for a, b in zip(r, s):
        if is_null(a) or is_null(b):
            continue
        if a != b:
            return False
    return True
