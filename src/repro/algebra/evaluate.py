"""Reference evaluator for relational algebra over incomplete databases.

This is the *specification* evaluator: small, direct, and obviously
faithful to the paper's definitions.  Performance-sensitive execution of
SQL (TPC-H scale) lives in :mod:`repro.engine`; correctness tests check
the two against each other on small instances.

Two semantics are supported (Section 2):

* ``naive`` — marked nulls behave as ordinary domain values
  (Fact 1: computes exactly certain answers with nulls for the
  positive fragment, including division);
* ``sql`` — three-valued ``EvalSQL`` (Fact 2: correctness guarantees
  for the positive fragment only).

An optional row budget turns the Section 5 blow-up of the Figure 2
translation into a catchable :class:`EvaluationBudgetExceeded` instead
of an out-of-memory condition.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.algebra import conditions as C
from repro.algebra.expr import (
    AdomPower,
    AntiJoin,
    Difference,
    Division,
    Expr,
    Intersection,
    Join,
    Literal,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    SemiJoin,
    Union,
    UnifAntiJoin,
    UnifSemiJoin,
)
from repro.algebra.unify import positionwise_unifiable, unifiable
from repro.data.database import Database
from repro.data.nulls import is_null
from repro.data.relation import Relation

__all__ = ["evaluate", "EvaluationBudgetExceeded", "Evaluator"]

SEMANTICS = ("naive", "sql")


class EvaluationBudgetExceeded(RuntimeError):
    """An intermediate result exceeded the configured row budget."""

    def __init__(self, budget: int, at: str):
        super().__init__(
            f"intermediate result exceeded the budget of {budget} rows at {at}"
        )
        self.budget = budget
        self.at = at


class Evaluator:
    """Evaluates algebra expressions against one database."""

    def __init__(
        self,
        db: Database,
        semantics: str = "naive",
        max_rows: Optional[int] = None,
    ):
        if semantics not in SEMANTICS:
            raise ValueError(f"semantics must be one of {SEMANTICS}, got {semantics!r}")
        self.db = db
        self.semantics = semantics
        self.max_rows = max_rows
        self._adom_cache: Optional[List[object]] = None
        # Running count of rows materialised, for the Section 5 budget.
        self.rows_produced = 0
        # Semijoins/antijoins whose condition admitted a hash equi-key
        # (instrumentation for the hash-matching fast path).
        self.hash_semijoins = 0

    # ------------------------------------------------------------------
    def adom(self) -> List[object]:
        if self._adom_cache is None:
            values = self.db.active_domain()
            self._adom_cache = sorted(values, key=repr)
        return self._adom_cache

    def _charge(self, n: int, at: str) -> None:
        self.rows_produced += n
        if self.max_rows is not None and self.rows_produced > self.max_rows:
            raise EvaluationBudgetExceeded(self.max_rows, at)

    def _selected(self, cond: C.Condition, row_ctx: Dict[str, object]) -> bool:
        if self.semantics == "naive":
            return C.eval_naive(cond, row_ctx)
        return bool(C.eval_3vl(cond, row_ctx))

    # ------------------------------------------------------------------
    def evaluate(self, expr: Expr) -> Relation:
        result = self._eval(expr)
        return result.distinct()

    def _eval(self, expr: Expr) -> Relation:
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is None:
            raise TypeError(f"no evaluation rule for {type(expr).__name__}")
        result = method(expr)
        self._charge(len(result), type(expr).__name__)
        return result

    # ------------------------------------------------------------------
    # Leaves
    # ------------------------------------------------------------------
    def _eval_RelationRef(self, expr: RelationRef) -> Relation:
        return self.db[expr.name].distinct()

    def _eval_Literal(self, expr: Literal) -> Relation:
        return expr.relation.distinct()

    def _eval_AdomPower(self, expr: AdomPower) -> Relation:
        domain = self.adom()
        k = len(expr.attributes)
        if self.max_rows is not None and len(domain) ** k > self.max_rows:
            raise EvaluationBudgetExceeded(self.max_rows, f"adom^{k}")
        rows = itertools.product(domain, repeat=k)
        return Relation(expr.attributes, rows)

    # ------------------------------------------------------------------
    # Unary operators
    # ------------------------------------------------------------------
    def _eval_Selection(self, expr: Selection) -> Relation:
        child = self._eval(expr.child)
        attrs = child.attributes
        kept = [
            row
            for row in child.rows
            if self._selected(expr.condition, dict(zip(attrs, row)))
        ]
        return Relation(attrs, kept)

    def _eval_Projection(self, expr: Projection) -> Relation:
        child = self._eval(expr.child)
        idx = [child.index_of(a) for a in expr.attributes]
        rows = (tuple(row[i] for i in idx) for row in child.rows)
        return Relation(expr.attributes, dict.fromkeys(rows))

    def _eval_Rename(self, expr: Rename) -> Relation:
        child = self._eval(expr.child)
        return child.rename(expr.mapping_dict())

    # ------------------------------------------------------------------
    # Binary operators
    # ------------------------------------------------------------------
    def _eval_Product(self, expr: Product) -> Relation:
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        overlap = set(left.attributes) & set(right.attributes)
        if overlap:
            raise ValueError(
                f"product requires disjoint attributes; shared: {sorted(overlap)}"
            )
        if self.max_rows is not None and len(left) * len(right) > self.max_rows:
            raise EvaluationBudgetExceeded(self.max_rows, "Product")
        rows = (l + r for l in left.rows for r in right.rows)
        return Relation(left.attributes + right.attributes, rows)

    def _eval_Join(self, expr: Join) -> Relation:
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        overlap = set(left.attributes) & set(right.attributes)
        if overlap:
            raise ValueError(
                f"join requires disjoint attributes; shared: {sorted(overlap)}"
            )
        attrs = left.attributes + right.attributes
        kept = []
        for l in left.rows:
            for r in right.rows:
                row = l + r
                if self._selected(expr.condition, dict(zip(attrs, row))):
                    kept.append(row)
        return Relation(attrs, kept)

    @staticmethod
    def _check_arity(left: Relation, right: Relation, op: str) -> None:
        if left.arity != right.arity:
            raise ValueError(
                f"{op} requires equal arity, got {left.arity} and {right.arity}"
            )

    def _eval_Union(self, expr: Union) -> Relation:
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        self._check_arity(left, right, "union")
        return Relation(left.attributes, dict.fromkeys(left.rows + right.rows))

    def _eval_Intersection(self, expr: Intersection) -> Relation:
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        self._check_arity(left, right, "intersection")
        right_set = set(right.rows)
        return Relation(left.attributes, (r for r in left.rows if r in right_set))

    def _eval_Difference(self, expr: Difference) -> Relation:
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        self._check_arity(left, right, "difference")
        right_set = set(right.rows)
        return Relation(left.attributes, (r for r in left.rows if r not in right_set))

    # ------------------------------------------------------------------
    # Semijoins
    # ------------------------------------------------------------------
    def _eval_SemiJoin(self, expr: SemiJoin) -> Relation:
        left, right, matcher = self._condition_matcher(expr)
        return Relation(left.attributes, (l for l in left.rows if matcher(l)))

    def _eval_AntiJoin(self, expr: AntiJoin) -> Relation:
        left, right, matcher = self._condition_matcher(expr)
        return Relation(left.attributes, (l for l in left.rows if not matcher(l)))

    def _condition_matcher(self, expr):
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        overlap = set(left.attributes) & set(right.attributes)
        if overlap:
            raise ValueError(
                f"semijoin requires disjoint attributes; shared: {sorted(overlap)}"
            )
        attrs = left.attributes + right.attributes

        decomposed = _equi_decompose(expr.condition, left.attributes, right.attributes)
        if decomposed is not None:
            hashed = self._hash_matcher(left, right, attrs, expr.condition, decomposed)
            if hashed is not None:
                return left, right, hashed

        def matcher(l_row: Tuple[object, ...]) -> bool:
            for r_row in right.rows:
                if self._selected(expr.condition, dict(zip(attrs, l_row + r_row))):
                    return True
            return False

        return left, right, matcher

    def _hash_matcher(self, left, right, attrs, condition, decomposed):
        """Hash-partition the right side on the equi-key, or ``None``.

        Sound under both semantics: with ``sql`` 3VL, a null on either
        side of an ``=`` makes that conjunct UNKNOWN, so null-keyed rows
        can never satisfy the top-level conjunction and are skipped
        outright; with ``naive`` semantics marked nulls compare (and
        hash) by label, so they participate in the table like ordinary
        values.  Residual conjuncts are re-checked per bucket candidate.
        """
        pairs, residual = decomposed
        l_idx = [left.index_of(a) for a, _ in pairs]
        r_idx = [right.index_of(b) for _, b in pairs]
        skip_nulls = self.semantics == "sql"
        table: Dict[Tuple[object, ...], List[Tuple[object, ...]]] = {}
        try:
            for r_row in right.rows:
                key = tuple(r_row[i] for i in r_idx)
                if skip_nulls and any(is_null(v) for v in key):
                    continue
                table.setdefault(key, []).append(r_row)
        except TypeError:  # unhashable domain value: keep the nested loop
            return None
        self.hash_semijoins += 1

        def matcher(l_row: Tuple[object, ...]) -> bool:
            key = tuple(l_row[i] for i in l_idx)
            if skip_nulls and any(is_null(v) for v in key):
                return False
            try:
                bucket = table.get(key, ())
            except TypeError:
                # Unhashable probe value: degrade to scanning the right
                # side with the full original condition.
                for r_row in right.rows:
                    if self._selected(condition, dict(zip(attrs, l_row + r_row))):
                        return True
                return False
            if residual is None:
                return bool(bucket)
            for r_row in bucket:
                if self._selected(residual, dict(zip(attrs, l_row + r_row))):
                    return True
            return False

        return matcher

    def _eval_UnifSemiJoin(self, expr: UnifSemiJoin) -> Relation:
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        self._check_arity(left, right, "unification semijoin")
        test = positionwise_unifiable if expr.codd else unifiable
        kept = [l for l in left.rows if any(test(l, r) for r in right.rows)]
        return Relation(left.attributes, kept)

    def _eval_UnifAntiJoin(self, expr: UnifAntiJoin) -> Relation:
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        self._check_arity(left, right, "unification anti-semijoin")
        test = positionwise_unifiable if expr.codd else unifiable
        kept = [l for l in left.rows if not any(test(l, r) for r in right.rows)]
        return Relation(left.attributes, kept)

    # ------------------------------------------------------------------
    # Division (derived, Fact 1)
    # ------------------------------------------------------------------
    def _eval_Division(self, expr: Division) -> Relation:
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        missing = [a for a in right.attributes if a not in left.attributes]
        if missing:
            raise ValueError(f"division: attributes {missing} not in dividend")
        keep = tuple(a for a in left.attributes if a not in right.attributes)
        keep_idx = [left.index_of(a) for a in keep]
        div_idx = [left.index_of(a) for a in right.attributes]
        groups: Dict[Tuple[object, ...], set] = {}
        for row in left.rows:
            x = tuple(row[i] for i in keep_idx)
            y = tuple(row[i] for i in div_idx)
            groups.setdefault(x, set()).add(y)
        required = set(right.rows)
        rows = [x for x, ys in groups.items() if required <= ys]
        return Relation(keep, rows)


def _equi_decompose(
    cond: C.Condition,
    left_attrs: Tuple[str, ...],
    right_attrs: Tuple[str, ...],
) -> Optional[Tuple[List[Tuple[str, str]], Optional[C.Condition]]]:
    """Split *cond* into cross-side equality pairs plus a residual.

    Returns ``(pairs, residual)`` where each pair is ``(left_attr,
    right_attr)`` drawn from a top-level ``attr = attr`` conjunct linking
    the two sides, and *residual* is the conjunction of everything else
    (``None`` when nothing remains).  Returns ``None`` when no such pair
    exists, i.e. the condition offers no hash key.
    """
    left_set = set(left_attrs)
    right_set = set(right_attrs)
    conjuncts = list(cond.items) if isinstance(cond, C.And) else [cond]
    pairs: List[Tuple[str, str]] = []
    residual: List[C.Condition] = []
    for item in conjuncts:
        if (
            isinstance(item, C.Comparison)
            and item.op == "="
            and isinstance(item.left, C.Attr)
            and isinstance(item.right, C.Attr)
        ):
            a, b = item.left.name, item.right.name
            if a in left_set and b in right_set:
                pairs.append((a, b))
                continue
            if b in left_set and a in right_set:
                pairs.append((b, a))
                continue
        residual.append(item)
    if not pairs:
        return None
    if not residual:
        return pairs, None
    if len(residual) == 1:
        return pairs, residual[0]
    return pairs, C.And(*residual)


def evaluate(
    expr: Expr,
    db: Database,
    semantics: str = "naive",
    max_rows: Optional[int] = None,
) -> Relation:
    """Evaluate *expr* on *db* under the given semantics (set results)."""
    return Evaluator(db, semantics=semantics, max_rows=max_rows).evaluate(expr)
