"""TPC-H substrate: schema, data generators, null injection, queries.

The paper runs its experiments on TPC-H instances (DBGen for the
performance experiments, DataFiller-style small instances for the
false-positive counts) with nulls injected into nullable attributes at a
configurable *null rate*.  This package rebuilds that tooling at
laptop-friendly micro scale factors; row-count *ratios* between tables
follow the TPC-H specification.
"""

from repro.tpch.schema import tpch_schema, NULLABLE_POLICY
from repro.tpch.dbgen import generate_instance, ScaleProfile
from repro.tpch.datafiller import generate_small_instance
from repro.tpch.nullify import inject_nulls
from repro.tpch.queries import (
    Q1_SQL,
    Q2_SQL,
    Q3_SQL,
    Q4_SQL,
    Q1_PLUS_SQL,
    Q2_PLUS_SQL,
    Q3_PLUS_SQL,
    Q4_PLUS_SQL,
    QUERIES,
    sample_parameters,
)

__all__ = [
    "tpch_schema",
    "NULLABLE_POLICY",
    "generate_instance",
    "ScaleProfile",
    "generate_small_instance",
    "inject_nulls",
    "Q1_SQL",
    "Q2_SQL",
    "Q3_SQL",
    "Q4_SQL",
    "Q1_PLUS_SQL",
    "Q2_PLUS_SQL",
    "Q3_PLUS_SQL",
    "Q4_PLUS_SQL",
    "QUERIES",
    "sample_parameters",
]
