"""Null injection (Section 3).

For every nullable attribute (as declared by the schema) and every
tuple, a coin is flipped with probability *null rate*; on success the
value is replaced by a fresh Codd null.  Key attributes and ``NOT
NULL`` columns are never touched, so the injected instances satisfy the
schema's constraints.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.data.database import Database
from repro.data.nulls import Null
from repro.data.relation import Relation

__all__ = ["inject_nulls"]


def inject_nulls(
    db: Database,
    null_rate: float,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Database:
    """Return a copy of *db* with nulls injected at the given rate.

    Each injected null is a fresh marked null (Codd nulls: no label
    repeats), matching SQL's ``NULL`` under the missing-value reading.
    """
    if not 0.0 <= null_rate <= 1.0:
        raise ValueError(f"null rate must be in [0, 1], got {null_rate}")
    if db.schema is None:
        raise ValueError("null injection needs a schema to know nullable columns")
    if rng is None:
        rng = random.Random(seed)

    new_tables = {}
    for name, relation in db.relations.items():
        rel_schema = db.schema.get(name)
        if rel_schema is None or null_rate == 0.0:
            new_tables[name] = Relation(relation.attributes, relation.rows)
            continue
        nullable_idx = [
            i
            for i, attr in enumerate(relation.attributes)
            if rel_schema.attribute(attr).nullable
        ]
        if not nullable_idx:
            new_tables[name] = Relation(relation.attributes, relation.rows)
            continue
        rows = []
        for row in relation.rows:
            new_row = list(row)
            for i in nullable_idx:
                if rng.random() < null_rate:
                    new_row[i] = Null()
            rows.append(tuple(new_row))
        new_tables[name] = Relation(relation.attributes, rows)
    return Database(new_tables, schema=db.schema)
