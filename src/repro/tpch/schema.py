"""The TPC-H schema with the paper's nullable/non-nullable split.

Per Section 3, attributes are non-nullable when they belong to a primary
key or carry a ``NOT NULL`` declaration; every other attribute may
receive nulls during injection.  Two policy notes, both matching the
appendix rewrites:

* ``nation`` and ``region`` are kept entirely complete (the appendix
  ``supp_view`` has no ``n_name IS NULL`` branch, so the paper's
  DataFiller configuration clearly did not nullify them);
* ``lineitem``'s key is (``l_orderkey``, ``l_linenumber``), which is why
  ``l_orderkey = o_orderkey`` is never weakened while ``l_suppkey`` and
  ``l_partkey`` — plain foreign keys — are.
"""

from __future__ import annotations

from repro.data.schema import DatabaseSchema, ForeignKey, make_schema

__all__ = ["tpch_schema", "NULLABLE_POLICY", "TABLE_RATIOS"]

#: Rows per table for one unit of scale, following the TPC-H ratios
#: (supplier : customer : part : partsupp : orders : lineitem =
#:  10k : 150k : 200k : 800k : 1.5M : ~6M per 1 GB), divided by 10^3 as
#: in the paper's DataFiller instances.
TABLE_RATIOS = {
    "supplier": 10,
    "customer": 150,
    "part": 200,
    "partsupp": 800,
    "orders": 1500,
    "lineitem": 6000,
    "nation": 25,
    "region": 5,
}

#: Documented summary of which attributes can be nullified (Section 3).
NULLABLE_POLICY = (
    "nullable = not a primary-key attribute and not declared NOT NULL; "
    "nation and region stay complete"
)


def tpch_schema() -> DatabaseSchema:
    """Build the 8-table TPC-H schema."""
    schema = DatabaseSchema()
    schema.add(
        make_schema(
            "region",
            [("r_regionkey", "int"), ("r_name", "str"), ("r_comment", "str")],
            key=["r_regionkey"],
            not_null=["r_name", "r_comment"],
        )
    )
    schema.add(
        make_schema(
            "nation",
            [
                ("n_nationkey", "int"),
                ("n_name", "str"),
                ("n_regionkey", "int"),
                ("n_comment", "str"),
            ],
            key=["n_nationkey"],
            not_null=["n_name", "n_regionkey", "n_comment"],
        )
    )
    schema.add(
        make_schema(
            "supplier",
            [
                ("s_suppkey", "int"),
                ("s_name", "str"),
                ("s_address", "str"),
                ("s_nationkey", "int"),
                ("s_phone", "str"),
                ("s_acctbal", "float"),
                ("s_comment", "str"),
            ],
            key=["s_suppkey"],
        )
    )
    schema.add(
        make_schema(
            "part",
            [
                ("p_partkey", "int"),
                ("p_name", "str"),
                ("p_mfgr", "str"),
                ("p_brand", "str"),
                ("p_type", "str"),
                ("p_size", "int"),
                ("p_container", "str"),
                ("p_retailprice", "float"),
                ("p_comment", "str"),
            ],
            key=["p_partkey"],
        )
    )
    schema.add(
        make_schema(
            "partsupp",
            [
                ("ps_partkey", "int"),
                ("ps_suppkey", "int"),
                ("ps_availqty", "int"),
                ("ps_supplycost", "float"),
                ("ps_comment", "str"),
            ],
            key=["ps_partkey", "ps_suppkey"],
        )
    )
    schema.add(
        make_schema(
            "customer",
            [
                ("c_custkey", "int"),
                ("c_name", "str"),
                ("c_address", "str"),
                ("c_nationkey", "int"),
                ("c_phone", "str"),
                ("c_acctbal", "float"),
                ("c_mktsegment", "str"),
                ("c_comment", "str"),
            ],
            key=["c_custkey"],
        )
    )
    schema.add(
        make_schema(
            "orders",
            [
                ("o_orderkey", "int"),
                ("o_custkey", "int"),
                ("o_orderstatus", "str"),
                ("o_totalprice", "float"),
                ("o_orderdate", "date"),
                ("o_orderpriority", "str"),
                ("o_clerk", "str"),
                ("o_shippriority", "int"),
                ("o_comment", "str"),
            ],
            key=["o_orderkey"],
        )
    )
    schema.add(
        make_schema(
            "lineitem",
            [
                ("l_orderkey", "int"),
                ("l_partkey", "int"),
                ("l_suppkey", "int"),
                ("l_linenumber", "int"),
                ("l_quantity", "int"),
                ("l_extendedprice", "float"),
                ("l_discount", "float"),
                ("l_tax", "float"),
                ("l_returnflag", "str"),
                ("l_linestatus", "str"),
                ("l_shipdate", "date"),
                ("l_commitdate", "date"),
                ("l_receiptdate", "date"),
                ("l_shipinstruct", "str"),
                ("l_shipmode", "str"),
                ("l_comment", "str"),
            ],
            key=["l_orderkey", "l_linenumber"],
        )
    )
    schema.foreign_keys = (
        ForeignKey("nation", ("n_regionkey",), "region", ("r_regionkey",)),
        ForeignKey("supplier", ("s_nationkey",), "nation", ("n_nationkey",)),
        ForeignKey("customer", ("c_nationkey",), "nation", ("n_nationkey",)),
        ForeignKey("partsupp", ("ps_partkey",), "part", ("p_partkey",)),
        ForeignKey("partsupp", ("ps_suppkey",), "supplier", ("s_suppkey",)),
        ForeignKey("orders", ("o_custkey",), "customer", ("c_custkey",)),
        ForeignKey("lineitem", ("l_orderkey",), "orders", ("o_orderkey",)),
        ForeignKey("lineitem", ("l_partkey",), "part", ("p_partkey",)),
        ForeignKey("lineitem", ("l_suppkey",), "supplier", ("s_suppkey",)),
    )
    return schema
