"""Small-instance generator in the style of DataFiller.

The paper estimates false-positive rates on many small instances
"compliant with the TPC-H specification in everything but size"
generated with DataFiller [8], a tool that fills tables column by
column from a schema with random, foreign-key-consistent values.  This
module mirrors that behaviour: values are drawn independently per
column (no DBGen-style business correlations), which is faster and —
as in the paper — perfectly adequate for counting false positives.
"""

from __future__ import annotations

import datetime
import random
from typing import Dict

from repro.data.database import Database
from repro.data.relation import Relation
from repro.tpch import words
from repro.tpch.schema import TABLE_RATIOS, tpch_schema

__all__ = ["generate_small_instance"]

_START = datetime.date(1992, 1, 1)
_SPAN_DAYS = 2400


def generate_small_instance(scale: float = 0.05, seed: int = 0) -> Database:
    """Generate a DataFiller-style instance (default ≈ 300 lineitems).

    ``scale`` multiplies the paper's 10⁻³ TPC-H ratios, so ``scale=1.0``
    matches the paper's false-positive instances and the default keeps
    unit tests and benchmark warm-ups fast.
    """
    rng = random.Random(seed)
    schema = tpch_schema()

    def rows(table: str) -> int:
        return max(1, round(TABLE_RATIOS[table] * scale))

    def date() -> datetime.date:
        return _START + datetime.timedelta(days=rng.randint(0, _SPAN_DAYS))

    def text() -> str:
        return " ".join(rng.choice(words.P_NAME_WORDS) for _ in range(3))

    tables: Dict[str, Relation] = {}
    tables["region"] = Relation(
        schema["region"].attribute_names,
        [(i, name, text()) for i, name in enumerate(words.REGIONS)],
    )
    tables["nation"] = Relation(
        schema["nation"].attribute_names,
        [(i, nm, rk, text()) for i, (nm, rk) in enumerate(words.NATIONS)],
    )
    n_supp, n_part, n_cust = rows("supplier"), rows("part"), rows("customer")
    n_orders, n_items = rows("orders"), rows("lineitem")
    # Cap at the number of distinct (part, supplier) pairs (micro scales).
    n_ps = min(rows("partsupp"), n_part * n_supp)

    tables["supplier"] = Relation(
        schema["supplier"].attribute_names,
        [
            (
                k,
                f"Supplier#{k}",
                text(),
                rng.randrange(len(words.NATIONS)),
                f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
                round(rng.uniform(-999.99, 9999.99), 2),
                text(),
            )
            for k in range(1, n_supp + 1)
        ],
    )
    tables["part"] = Relation(
        schema["part"].attribute_names,
        [
            (
                k,
                " ".join(rng.sample(words.P_NAME_WORDS, 5)),
                f"Manufacturer#{rng.randint(1, 5)}",
                f"Brand#{rng.randint(11, 55)}",
                text(),
                rng.randint(1, 50),
                text(),
                round(rng.uniform(900.0, 2000.0), 2),
                text(),
            )
            for k in range(1, n_part + 1)
        ],
    )
    ps_rows, seen = [], set()
    while len(ps_rows) < n_ps:
        pk = (rng.randint(1, n_part), rng.randint(1, n_supp))
        if pk in seen:
            continue
        seen.add(pk)
        ps_rows.append((*pk, rng.randint(1, 9999), round(rng.uniform(1, 1000), 2), text()))
    tables["partsupp"] = Relation(schema["partsupp"].attribute_names, ps_rows)

    tables["customer"] = Relation(
        schema["customer"].attribute_names,
        [
            (
                k,
                f"Customer#{k}",
                text(),
                rng.randrange(len(words.NATIONS)),
                f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
                round(rng.uniform(-999.99, 9999.99), 2),
                rng.choice(words.SEGMENTS),
                text(),
            )
            for k in range(1, n_cust + 1)
        ],
    )
    # Per the TPC-H specification, a third of customers never order
    # (custkeys divisible by 3) — the population Q2 selects from.
    ordering_customers = [k for k in range(1, n_cust + 1) if k % 3 != 0] or [1]
    tables["orders"] = Relation(
        schema["orders"].attribute_names,
        [
            (
                k,
                rng.choice(ordering_customers),
                rng.choice(("F", "O", "P")),
                round(rng.uniform(800.0, 500000.0), 2),
                date(),
                rng.choice(words.O_PRIORITIES),
                f"Clerk#{rng.randint(1, 99)}",
                0,
                text(),
            )
            for k in range(1, n_orders + 1)
        ],
    )
    item_rows = []
    line_numbers: Dict[int, int] = {}
    for _ in range(n_items):
        okey = rng.randint(1, n_orders)
        line_numbers[okey] = line_numbers.get(okey, 0) + 1
        base = date()
        item_rows.append(
            (
                okey,
                rng.randint(1, n_part),
                rng.randint(1, n_supp),
                line_numbers[okey],
                rng.randint(1, 50),
                round(rng.uniform(90.0, 100000.0), 2),
                round(rng.uniform(0.0, 0.10), 2),
                round(rng.uniform(0.0, 0.08), 2),
                rng.choice(("R", "A", "N")),
                rng.choice(("F", "O")),
                base,
                base + datetime.timedelta(days=rng.randint(-30, 60)),
                base + datetime.timedelta(days=rng.randint(1, 30)),
                text(),
                rng.choice(words.SHIP_MODES),
                text(),
            )
        )
    tables["lineitem"] = Relation(schema["lineitem"].attribute_names, item_rows)
    return Database(tables, schema=schema)
