"""The paper's four test queries and their appendix rewrites.

``Q1_SQL`` … ``Q4_SQL`` are the originals from Section 3 (two TPC-H
queries with ``NOT EXISTS`` — TPC-H 21 and 22 stripped of aggregation —
and two textbook queries); ``Q*_PLUS_SQL`` are the hand rewrites from
the paper's appendix, kept verbatim as the reference the automatic
rewriter (:func:`repro.sql.rewrite.rewrite_certain`) is tested against.

:func:`sample_parameters` reproduces Section 3's parameter choices:
``$nation`` a random nation, ``$countries`` 7 distinct nation keys,
``$supp_key`` a random supplier key, ``$color`` one of the 92 TPC-H
part-name words.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.data.database import Database
from repro.tpch.words import P_NAME_WORDS

__all__ = [
    "Q1_SQL",
    "Q2_SQL",
    "Q3_SQL",
    "Q4_SQL",
    "Q1_PLUS_SQL",
    "Q2_PLUS_SQL",
    "Q3_PLUS_SQL",
    "Q4_PLUS_SQL",
    "QUERIES",
    "sample_parameters",
]

# ---------------------------------------------------------------------------
# Originals (Section 3)
# ---------------------------------------------------------------------------

Q1_SQL = """
SELECT s_suppkey, o_orderkey
FROM supplier, lineitem l1, orders, nation
WHERE s_suppkey = l1.l_suppkey
  AND o_orderkey = l1.l_orderkey
  AND o_orderstatus = 'F'
  AND l1.l_receiptdate > l1.l_commitdate
  AND EXISTS (
    SELECT *
    FROM lineitem l2
    WHERE l2.l_orderkey = l1.l_orderkey
      AND l2.l_suppkey <> l1.l_suppkey )
  AND NOT EXISTS (
    SELECT *
    FROM lineitem l3
    WHERE l3.l_orderkey = l1.l_orderkey
      AND l3.l_suppkey <> l1.l_suppkey
      AND l3.l_receiptdate > l3.l_commitdate )
  AND s_nationkey = n_nationkey
  AND n_name = $nation
"""

Q2_SQL = """
SELECT c_custkey, c_nationkey
FROM customer
WHERE c_nationkey IN ($countries)
  AND c_acctbal > (
    SELECT AVG(c_acctbal)
    FROM customer
    WHERE c_acctbal > 0.00
      AND c_nationkey IN ($countries) )
  AND NOT EXISTS (
    SELECT *
    FROM orders
    WHERE o_custkey = c_custkey )
"""

Q3_SQL = """
SELECT o_orderkey
FROM orders
WHERE NOT EXISTS (
  SELECT *
  FROM lineitem
  WHERE l_orderkey = o_orderkey
    AND l_suppkey <> $supp_key )
"""

Q4_SQL = """
SELECT o_orderkey
FROM orders
WHERE NOT EXISTS (
  SELECT *
  FROM lineitem, part, supplier, nation
  WHERE l_orderkey = o_orderkey
    AND l_partkey = p_partkey
    AND l_suppkey = s_suppkey
    AND p_name LIKE '%' || $color || '%'
    AND s_nationkey = n_nationkey
    AND n_name = $nation )
"""

# ---------------------------------------------------------------------------
# Appendix rewrites (verbatim from the paper)
# ---------------------------------------------------------------------------

Q1_PLUS_SQL = """
SELECT s_suppkey, o_orderkey
FROM supplier, lineitem l1, orders, nation
WHERE s_suppkey = l1.l_suppkey
  AND o_orderkey = l1.l_orderkey
  AND o_orderstatus = 'F'
  AND l1.l_receiptdate > l1.l_commitdate
  AND s_nationkey = n_nationkey
  AND n_name = $nation
  AND EXISTS (
    SELECT *
    FROM lineitem l2
    WHERE l2.l_orderkey = l1.l_orderkey
      AND l2.l_suppkey <> l1.l_suppkey )
  AND NOT EXISTS (
    SELECT *
    FROM lineitem l3
    WHERE l3.l_orderkey = l1.l_orderkey
      AND ( l3.l_suppkey <> l1.l_suppkey
            OR l3.l_suppkey IS NULL )
      AND ( l3.l_receiptdate > l3.l_commitdate
            OR l3.l_receiptdate IS NULL
            OR l3.l_commitdate IS NULL ) )
"""

Q2_PLUS_SQL = """
SELECT c_custkey, c_nationkey
FROM customer
WHERE c_nationkey IN ($countries)
  AND c_acctbal > (
    SELECT AVG(c_acctbal)
    FROM customer
    WHERE c_acctbal > 0.00
      AND c_nationkey IN ($countries) )
  AND NOT EXISTS (
    SELECT *
    FROM orders
    WHERE o_custkey = c_custkey )
  AND NOT EXISTS (
    SELECT *
    FROM orders
    WHERE o_custkey IS NULL )
"""

Q3_PLUS_SQL = """
SELECT o_orderkey
FROM orders
WHERE NOT EXISTS (
  SELECT *
  FROM lineitem
  WHERE l_orderkey = o_orderkey
    AND ( l_suppkey <> $supp_key
          OR l_suppkey IS NULL ) )
"""

Q4_PLUS_SQL = """
WITH
part_view AS (
  SELECT p_partkey
  FROM part
  WHERE p_name IS NULL
  UNION
  SELECT p_partkey
  FROM part
  WHERE p_name LIKE '%' || $color || '%' ),
supp_view AS (
  SELECT s_suppkey
  FROM supplier
  WHERE s_nationkey IS NULL
  UNION
  SELECT s_suppkey
  FROM supplier, nation
  WHERE s_nationkey = n_nationkey
    AND n_name = $nation )
SELECT o_orderkey
FROM orders
WHERE NOT EXISTS (
  SELECT *
  FROM lineitem, part_view, supp_view
  WHERE l_orderkey = o_orderkey
    AND l_partkey = p_partkey
    AND l_suppkey = s_suppkey )
AND NOT EXISTS (
  SELECT *
  FROM lineitem, supp_view
  WHERE l_orderkey = o_orderkey
    AND l_partkey IS NULL
    AND l_suppkey = s_suppkey
    AND EXISTS ( SELECT * FROM part_view ) )
AND NOT EXISTS (
  SELECT *
  FROM lineitem, part_view
  WHERE l_orderkey = o_orderkey
    AND l_partkey = p_partkey
    AND l_suppkey IS NULL
    AND EXISTS ( SELECT * FROM supp_view ) )
AND NOT EXISTS (
  SELECT *
  FROM lineitem
  WHERE l_orderkey = o_orderkey
    AND l_partkey IS NULL
    AND l_suppkey IS NULL
    AND EXISTS ( SELECT * FROM part_view )
    AND EXISTS ( SELECT * FROM supp_view ) )
"""

#: query id -> (original SQL, appendix rewrite SQL, parameter names)
QUERIES = {
    "Q1": (Q1_SQL, Q1_PLUS_SQL, ("nation",)),
    "Q2": (Q2_SQL, Q2_PLUS_SQL, ("countries",)),
    "Q3": (Q3_SQL, Q3_PLUS_SQL, ("supp_key",)),
    "Q4": (Q4_SQL, Q4_PLUS_SQL, ("color", "nation")),
}


def sample_parameters(
    query_id: str,
    db: Database,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
) -> Dict[str, object]:
    """Draw random parameter bindings for one of Q1–Q4 (Section 3)."""
    if rng is None:
        rng = random.Random(seed)
    if query_id not in QUERIES:
        raise KeyError(f"unknown query {query_id!r}; have {sorted(QUERIES)}")

    def nation_names():
        nation = db["nation"]
        i = nation.index_of("n_name")
        return [row[i] for row in nation.rows]

    def nation_keys():
        nation = db["nation"]
        i = nation.index_of("n_nationkey")
        return [row[i] for row in nation.rows]

    def supplier_keys():
        supplier = db["supplier"]
        i = supplier.index_of("s_suppkey")
        return [row[i] for row in supplier.rows]

    if query_id == "Q1":
        return {"nation": rng.choice(nation_names())}
    if query_id == "Q2":
        keys = nation_keys()
        return {"countries": rng.sample(keys, min(7, len(keys)))}
    if query_id == "Q3":
        return {"supp_key": rng.choice(supplier_keys())}
    return {
        "color": rng.choice(P_NAME_WORDS),
        "nation": rng.choice(nation_names()),
    }
