"""Word pools from the TPC-H specification used by the data generators.

``P_NAME_WORDS`` is the 92-word list the specification concatenates
(5 at a time) into part names; query Q4's ``$color`` parameter is drawn
from it.  Nation and region names are the spec's fixed 25/5 values.
"""

from __future__ import annotations

__all__ = ["P_NAME_WORDS", "NATIONS", "REGIONS", "O_PRIORITIES", "SHIP_MODES", "SEGMENTS"]

P_NAME_WORDS = (
    "almond antique aquamarine azure beige bisque black blanched blue "
    "blush brown burlywood burnished chartreuse chiffon chocolate coral "
    "cornflower cornsilk cream cyan dark deep dim dodger drab firebrick "
    "floral forest frosted gainsboro ghost goldenrod green grey honeydew "
    "hot indian ivory khaki lace lavender lawn lemon light lime linen "
    "magenta maroon medium metallic midnight mint misty moccasin navajo "
    "navy olive orange orchid pale papaya peach peru pink plum powder "
    "puff purple red rose rosy royal saddle salmon sandy seashell sienna "
    "sky slate smoke snow spring steel tan thistle tomato turquoise "
    "violet wheat white yellow"
).split()

assert len(P_NAME_WORDS) == 92, len(P_NAME_WORDS)

#: (name, regionkey) pairs, per the TPC-H specification.
NATIONS = (
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
)

REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")

O_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")

SHIP_MODES = ("REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB")

SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD")
