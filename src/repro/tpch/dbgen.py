"""Seeded TPC-H data generator (micro-scale replacement for DBGen).

Row counts keep the specification's ratios between tables
(:data:`repro.tpch.schema.TABLE_RATIOS`); one *scale unit* corresponds
to the 10⁻³-scaled instance size the paper used for its DataFiller
experiments, and the performance experiments use scale units 1/3/6/10 in
place of the paper's 1/3/6/10 GB DBGen instances (Table 1 reports
relative times, which is what the ratios preserve).

Correlations that the paper's queries rely on are reproduced:

* orders have 1–7 lineitems, with suppliers drawn independently, so
  both multi-supplier orders (Q1) and single-supplier orders (Q3)
  occur;
* ``l_commitdate`` = orderdate + 30..90 days, ``l_shipdate`` =
  orderdate + 1..121, ``l_receiptdate`` = shipdate + 1..30 — so late
  deliveries (``l_receiptdate > l_commitdate``, Q1's trigger) occur at
  a realistic rate;
* ``o_orderstatus`` is ``'F'`` for orders older than the spec's
  currentdate cut-off, ``'O'`` for recent ones, ``'P'`` in between.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass
from typing import Dict, List

from repro.data.database import Database
from repro.data.relation import Relation
from repro.tpch import words
from repro.tpch.schema import TABLE_RATIOS, tpch_schema

__all__ = ["ScaleProfile", "generate_instance"]

_START_DATE = datetime.date(1992, 1, 1)
_END_DATE = datetime.date(1998, 8, 2)
_CUTOFF_F = datetime.date(1995, 6, 17)
_CUTOFF_O = datetime.date(1996, 1, 1)
_DAYS = (_END_DATE - _START_DATE).days


@dataclass(frozen=True)
class ScaleProfile:
    """Row counts per table for a given scale."""

    scale: float

    def rows(self, table: str) -> int:
        return max(1, round(TABLE_RATIOS[table] * self.scale))


def _rand_date(rng: random.Random) -> datetime.date:
    return _START_DATE + datetime.timedelta(days=rng.randint(0, _DAYS))


def _phone(rng: random.Random, nationkey: int) -> str:
    return (
        f"{10 + nationkey}-{rng.randint(100, 999)}-"
        f"{rng.randint(100, 999)}-{rng.randint(1000, 9999)}"
    )


def _part_name(rng: random.Random) -> str:
    return " ".join(rng.sample(words.P_NAME_WORDS, 5))


def _comment(rng: random.Random) -> str:
    pool = words.P_NAME_WORDS
    return " ".join(rng.choice(pool) for _ in range(rng.randint(2, 5)))


def generate_instance(scale: float = 1.0, seed: int = 0) -> Database:
    """Generate a complete (null-free) TPC-H instance.

    The result carries the TPC-H schema; use
    :func:`repro.tpch.nullify.inject_nulls` to add nulls at a chosen
    null rate.
    """
    rng = random.Random(seed)
    profile = ScaleProfile(scale)
    schema = tpch_schema()
    tables: Dict[str, Relation] = {}

    # -- region / nation (fixed by the specification) -------------------
    tables["region"] = Relation(
        schema["region"].attribute_names,
        [(i, name, _comment(rng)) for i, name in enumerate(words.REGIONS)],
    )
    tables["nation"] = Relation(
        schema["nation"].attribute_names,
        [
            (i, name, regionkey, _comment(rng))
            for i, (name, regionkey) in enumerate(words.NATIONS)
        ],
    )
    nation_keys = [row[0] for row in tables["nation"].rows]

    # -- supplier --------------------------------------------------------
    n_supplier = profile.rows("supplier")
    supplier_rows = []
    for key in range(1, n_supplier + 1):
        nationkey = rng.choice(nation_keys)
        supplier_rows.append(
            (
                key,
                f"Supplier#{key:09d}",
                _comment(rng),
                nationkey,
                _phone(rng, nationkey),
                round(rng.uniform(-999.99, 9999.99), 2),
                _comment(rng),
            )
        )
    tables["supplier"] = Relation(schema["supplier"].attribute_names, supplier_rows)

    # -- part --------------------------------------------------------------
    n_part = profile.rows("part")
    part_rows = []
    for key in range(1, n_part + 1):
        part_rows.append(
            (
                key,
                _part_name(rng),
                f"Manufacturer#{rng.randint(1, 5)}",
                f"Brand#{rng.randint(1, 5)}{rng.randint(1, 5)}",
                f"{rng.choice(('STANDARD', 'SMALL', 'MEDIUM', 'LARGE', 'ECONOMY', 'PROMO'))} "
                f"{rng.choice(('ANODIZED', 'BURNISHED', 'PLATED', 'POLISHED', 'BRUSHED'))} "
                f"{rng.choice(('TIN', 'NICKEL', 'BRASS', 'STEEL', 'COPPER'))}",
                rng.randint(1, 50),
                f"{rng.choice(('SM', 'MED', 'LG', 'JUMBO', 'WRAP'))} "
                f"{rng.choice(('CASE', 'BOX', 'BAG', 'JAR', 'PKG', 'PACK', 'CAN', 'DRUM'))}",
                round(rng.uniform(900.0, 2000.0), 2),
                _comment(rng),
            )
        )
    tables["part"] = Relation(schema["part"].attribute_names, part_rows)

    # -- partsupp -----------------------------------------------------------
    # At micro scales the target may exceed the number of distinct
    # (part, supplier) pairs; cap it so the rejection loop terminates.
    n_partsupp = min(profile.rows("partsupp"), n_part * n_supplier)
    partsupp_rows = []
    seen = set()
    while len(partsupp_rows) < n_partsupp:
        pk = (rng.randint(1, n_part), rng.randint(1, n_supplier))
        if pk in seen:
            continue
        seen.add(pk)
        partsupp_rows.append(
            (
                pk[0],
                pk[1],
                rng.randint(1, 9999),
                round(rng.uniform(1.0, 1000.0), 2),
                _comment(rng),
            )
        )
    tables["partsupp"] = Relation(schema["partsupp"].attribute_names, partsupp_rows)

    # -- customer -------------------------------------------------------------
    n_customer = profile.rows("customer")
    customer_rows = []
    for key in range(1, n_customer + 1):
        nationkey = rng.choice(nation_keys)
        customer_rows.append(
            (
                key,
                f"Customer#{key:09d}",
                _comment(rng),
                nationkey,
                _phone(rng, nationkey),
                round(rng.uniform(-999.99, 9999.99), 2),
                rng.choice(words.SEGMENTS),
                _comment(rng),
            )
        )
    tables["customer"] = Relation(schema["customer"].attribute_names, customer_rows)

    # -- orders + lineitem ------------------------------------------------------
    n_orders = profile.rows("orders")
    target_lineitems = profile.rows("lineitem")
    order_rows: List[tuple] = []
    lineitem_rows: List[tuple] = []
    # One third of customers place no orders, per the specification.
    ordering_customers = [c for c in range(1, n_customer + 1) if c % 3 != 0] or [1]
    for okey in range(1, n_orders + 1):
        custkey = rng.choice(ordering_customers)
        orderdate = _rand_date(rng)
        if orderdate < _CUTOFF_F:
            status = "F"
        elif orderdate >= _CUTOFF_O:
            status = "O"
        else:
            status = rng.choice(("F", "O", "P"))
        remaining = target_lineitems - len(lineitem_rows)
        remaining_orders = n_orders - okey + 1
        max_items = max(1, min(7, remaining - (remaining_orders - 1)))
        n_items = rng.randint(1, max_items)
        total = 0.0
        for line_no in range(1, n_items + 1):
            partkey = rng.randint(1, n_part)
            suppkey = rng.randint(1, n_supplier)
            quantity = rng.randint(1, 50)
            price = round(rng.uniform(900.0, 2000.0) * quantity / 10.0, 2)
            total += price
            shipdate = orderdate + datetime.timedelta(days=rng.randint(1, 121))
            commitdate = orderdate + datetime.timedelta(days=rng.randint(30, 90))
            receiptdate = shipdate + datetime.timedelta(days=rng.randint(1, 30))
            lineitem_rows.append(
                (
                    okey,
                    partkey,
                    suppkey,
                    line_no,
                    quantity,
                    price,
                    round(rng.uniform(0.0, 0.10), 2),
                    round(rng.uniform(0.0, 0.08), 2),
                    rng.choice(("R", "A", "N")),
                    "F" if status == "F" else "O",
                    shipdate,
                    commitdate,
                    receiptdate,
                    rng.choice(("DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN")),
                    rng.choice(words.SHIP_MODES),
                    _comment(rng),
                )
            )
        order_rows.append(
            (
                okey,
                custkey,
                status,
                round(total, 2),
                orderdate,
                rng.choice(words.O_PRIORITIES),
                f"Clerk#{rng.randint(1, max(1, n_orders // 100)):09d}",
                0,
                _comment(rng),
            )
        )
    tables["orders"] = Relation(schema["orders"].attribute_names, order_rows)
    tables["lineitem"] = Relation(schema["lineitem"].attribute_names, lineitem_rows)

    return Database(tables, schema=schema)
