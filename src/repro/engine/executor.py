"""Top-level query execution: CTEs, set operations, output projection.

Two amortisation layers live here (see ``docs/engine.md``):

* :class:`PreparedQuery` separates compilation from execution, so a
  statement executed repeatedly (``repeats``/``param_draws`` loops in
  the experiment harness) compiles its blocks, join orders and hash
  indexes once and re-streams results on every :meth:`PreparedQuery.run`;
* a module-level LRU plan cache keyed on SQL text plus the execution
  flags lets :func:`execute_sql` skip re-parsing repeated statements.
"""

from __future__ import annotations

from collections import OrderedDict
from threading import Lock
from typing import Callable, Dict, List, Optional, Tuple, Union as TUnion

from repro.data.database import Database
from repro.data.relation import Relation
from repro.engine.blocks import CompiledBlock, ExecContext
from repro.engine.limits import ResourceLimits
from repro.engine.scope import EngineError
from repro.sql import ast
from repro.sql.parser import parse_sql

__all__ = [
    "Executor",
    "PreparedQuery",
    "execute_sql",
    "execute_query",
    "plan_cache_stats",
    "clear_plan_cache",
]

#: Sentinel distinguishing "no limits argument" from ``limits=None``.
_UNSET_LIMITS = object()

_EMPTY_ENV: Dict[Tuple[str, str], object] = {}


class PreparedQuery:
    """A compiled statement bound to one database and parameter set.

    ``run()`` may be called repeatedly; compilation artefacts (CTE
    materialisations, join orders, hash indexes, subquery probe tables
    and memo caches) persist across runs, so only the streaming work is
    repeated.  Instrumentation counters on :attr:`ctx` accumulate over
    runs.
    """

    __slots__ = ("executor", "_runner")

    def __init__(self, executor: "Executor", runner: Callable[[], Relation]):
        self.executor = executor
        self._runner = runner

    @property
    def ctx(self) -> ExecContext:
        return self.executor.ctx

    def run(self) -> Relation:
        # Each run gets a fresh wall-clock deadline (row budgets, being
        # cumulative work counters, deliberately persist across runs).
        self.executor.ctx.arm()
        return self._runner()

    def explain(self) -> str:
        """Cost-annotated plan for this statement's blocks.

        Includes the chosen join order; when the selectivity-driven
        planner ran, each step also reports its model-estimated
        cardinality and — after :meth:`run` — the actual rows the step
        produced.
        """
        from repro.engine.explain import estimate_block

        sections = []
        for block in self.executor.blocks:
            plan = estimate_block(block, correlated=False)
            sections.append(plan.render())
        return "\n".join(sections)


class Executor:
    """Executes parsed queries against a database.

    One executor instance corresponds to one statement: CTEs are
    materialised once, uncorrelated subqueries are cached, and the
    ``rows_examined`` / probe-cache counters on :attr:`ctx` report how
    much work evaluation did (used by tests and the ablation
    benchmarks).  :meth:`prepare` compiles without executing and returns
    a re-runnable :class:`PreparedQuery`.
    """

    def __init__(
        self,
        db: Database,
        params: Optional[Dict[str, object]] = None,
        marked_nulls: bool = False,
        memoize_probes: bool = True,
        decorrelate: bool = True,
        limits: Optional[ResourceLimits] = None,
        compile_predicates: Optional[bool] = None,
    ):
        self.ctx = ExecContext(
            db,
            params,
            marked_nulls=marked_nulls,
            memoize_probes=memoize_probes,
            decorrelate=decorrelate,
            limits=limits,
            compile_predicates=compile_predicates,
        )
        #: top-level blocks compiled by this executor (explain support)
        self.blocks: List[CompiledBlock] = []

    # ------------------------------------------------------------------
    def prepare(
        self,
        query: TUnion[ast.Query, ast.Select, ast.SetOp],
        limits: object = _UNSET_LIMITS,
    ) -> PreparedQuery:
        """Compile *query* into a re-runnable :class:`PreparedQuery`.

        Passing ``limits=`` swaps the executor's resource limits first:
        runtime state that baked the old limits in (probe tables,
        degradation decisions, hash indexes) is invalidated via
        :meth:`ExecContext.set_limits`, so the statement replans under
        the new caps instead of reusing stale state.
        """
        if limits is not _UNSET_LIMITS:
            self.ctx.set_limits(limits)  # type: ignore[arg-type]
        query = ast.query_of(query)
        seen = set()
        for name, sub in query.ctes:
            if name in seen:
                raise EngineError(f"duplicate WITH view {name!r}")
            seen.add(name)
            # Idempotent per statement: re-preparing (as PreparedQuery
            # invites) reuses the materialisation instead of erroring.
            if name not in self.ctx.ctes:
                self.ctx.ctes[name] = self._run_query(sub)
        return PreparedQuery(self, self._plan_body(query.body))

    def execute(self, query: TUnion[ast.Query, ast.Select, ast.SetOp]) -> Relation:
        return self.prepare(query).run()

    # ------------------------------------------------------------------
    def _run_query(self, query: ast.Query) -> Relation:
        return self._plan_query(query)()

    def _plan_query(self, query: ast.Query) -> Callable[[], Relation]:
        if query.ctes:
            raise EngineError("nested WITH is not supported")
        return self._plan_body(query.body)

    def _plan_body(self, body: TUnion[ast.Select, ast.SetOp]) -> Callable[[], Relation]:
        if isinstance(body, ast.Select):
            return self._plan_select(body)
        assert isinstance(body, ast.SetOp)
        left_plan = self._plan_query(body.left)
        right_plan = self._plan_query(body.right)
        op, keep_all = body.op, body.all

        def run_setop() -> Relation:
            left = left_plan()
            right = right_plan()
            if left.arity != right.arity:
                raise EngineError(
                    f"{op.upper()} operands have arity {left.arity} and {right.arity}"
                )
            if op == "union":
                rows = list(left.rows) + list(right.rows)
                if not keep_all:
                    rows = list(dict.fromkeys(rows))
                return Relation(left.attributes, rows)
            if op == "intersect":
                right_set = set(right.rows)
                rows = [r for r in dict.fromkeys(left.rows) if r in right_set]
                return Relation(left.attributes, rows)
            right_set = set(right.rows)
            rows = [r for r in dict.fromkeys(left.rows) if r not in right_set]
            return Relation(left.attributes, rows)

        return run_setop

    def _plan_select(self, select: ast.Select) -> Callable[[], Relation]:
        block = CompiledBlock(select, self.ctx, parent=None)
        self.blocks.append(block)
        outputs = self._output_plan(select, block)
        names = tuple(name for name, _getter in outputs)
        getters = tuple(getter for _name, getter in outputs)
        distinct = select.distinct

        def run_select() -> Relation:
            rows = []
            for cursor in block.iterate({}):
                rows.append(tuple(getter(cursor) for getter in getters))
            if distinct:
                rows = list(dict.fromkeys(rows))
            return Relation(names, rows)

        return run_select

    def _output_plan(self, select: ast.Select, block: CompiledBlock):
        """Compile the SELECT list into (name, getter) pairs."""
        outputs: List[Tuple[str, object]] = []
        if len(select.columns) == 1 and isinstance(select.columns[0], ast.Star):
            for binding, source in block.sources.items():
                for column in source.columns:
                    key = (binding, column)
                    outputs.append((column, _slot_getter(key)))
            return self._dedupe_names(outputs, block)
        for col in select.columns:
            if isinstance(col, ast.Star):
                raise EngineError("* mixed with explicit output columns")
            expr = block._expr(col.expr)
            if col.alias:
                name = col.alias
            elif isinstance(col.expr, ast.ColumnRef):
                name = col.expr.name
            elif isinstance(col.expr, ast.Aggregate):
                name = col.expr.func
            else:
                name = f"column{len(outputs) + 1}"
            outputs.append((name, _expr_getter(expr, self.ctx.compile_predicates)))
        return self._dedupe_names(outputs, block)

    @staticmethod
    def _dedupe_names(outputs, block):
        seen: Dict[str, int] = {}
        result = []
        for name, getter in outputs:
            if name in seen:
                seen[name] += 1
                name = f"{name}_{seen[name]}"
            else:
                seen[name] = 0
            result.append((name, getter))
        return result


def _slot_getter(key):
    def getter(cursor):
        slotmap, row = cursor
        return row[slotmap[key]]

    return getter


def _expr_getter(expr, compiled: bool = False):
    if compiled:
        from repro.engine.compile import compile_expr

        fn = compile_expr(expr)

        def compiled_getter(cursor):
            return fn(cursor, _EMPTY_ENV)

        return compiled_getter

    def getter(cursor):
        return expr.eval(cursor, {})

    return getter


# ---------------------------------------------------------------------------
# Plan cache: SQL text + flags → validated AST
# ---------------------------------------------------------------------------


class _PlanCache:
    """A small thread-safe LRU mapping ``(sql, flags)`` to parsed ASTs.

    Compiled blocks bind parameter values and per-database runtime state,
    so the artefact cached *across* databases and parameter sets is the
    validated parse tree; per-statement compiled state is reused through
    :class:`PreparedQuery` instead.
    """

    def __init__(self, maxsize: int = 256):
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Tuple[str, bool], ast.Query]" = OrderedDict()
        self._lock = Lock()

    def get_or_parse(self, sql: str, marked_nulls: bool) -> ast.Query:
        key = (sql, marked_nulls)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached
            self.misses += 1
        parsed = ast.query_of(parse_sql(sql))
        with self._lock:
            self._entries[key] = parsed
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return parsed

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


PLAN_CACHE = _PlanCache()


def plan_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the shared SQL-text plan cache."""
    return PLAN_CACHE.stats()


def clear_plan_cache() -> None:
    """Drop all cached plans and reset the counters (test isolation)."""
    PLAN_CACHE.clear()


def execute_query(
    db: Database,
    query: TUnion[ast.Query, ast.Select, ast.SetOp],
    params: Optional[Dict[str, object]] = None,
    marked_nulls: bool = False,
    memoize_probes: bool = True,
    decorrelate: bool = True,
    limits: Optional[ResourceLimits] = None,
    compile_predicates: Optional[bool] = None,
) -> Relation:
    """Execute a parsed query; returns a :class:`Relation`.

    ``marked_nulls=True`` switches equality on the *same* null from
    unknown to true — the Section 8 "marked nulls" evaluation mode.
    ``memoize_probes``/``decorrelate`` gate the correlated-subquery
    optimisations (both on by default; disabling them reproduces the
    naive O(outer × inner) probing, used by the equivalence tests).
    ``limits`` attaches a deadline/row budget to the run (see
    :mod:`repro.engine.limits`); exceeding a hard cap raises
    :class:`~repro.engine.limits.ResourceError`.
    ``compile_predicates=False`` (or the ``REPRO_NO_COMPILE`` env var)
    evaluates predicates through the interpreted ``eval`` tree walk
    instead of the compiled closures — same results and work counters,
    used as the differential-testing and benchmarking baseline.
    """
    return Executor(
        db,
        params,
        marked_nulls=marked_nulls,
        memoize_probes=memoize_probes,
        decorrelate=decorrelate,
        limits=limits,
        compile_predicates=compile_predicates,
    ).execute(ast.query_of(query))


def execute_sql(
    db: Database,
    sql: TUnion[str, ast.Query, ast.Select, ast.SetOp],
    params: Optional[Dict[str, object]] = None,
    marked_nulls: bool = False,
    memoize_probes: bool = True,
    decorrelate: bool = True,
    limits: Optional[ResourceLimits] = None,
    compile_predicates: Optional[bool] = None,
) -> Relation:
    """Parse (if necessary, through the plan cache) and execute SQL."""
    if isinstance(sql, str):
        sql = PLAN_CACHE.get_or_parse(sql, marked_nulls)
    return execute_query(
        db,
        sql,
        params,
        marked_nulls=marked_nulls,
        memoize_probes=memoize_probes,
        decorrelate=decorrelate,
        limits=limits,
        compile_predicates=compile_predicates,
    )
