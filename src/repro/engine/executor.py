"""Top-level query execution: CTEs, set operations, output projection."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union as TUnion

from repro.data.database import Database
from repro.data.relation import Relation
from repro.engine.blocks import CompiledBlock, ExecContext
from repro.engine.scope import EngineError
from repro.sql import ast
from repro.sql.parser import parse_sql

__all__ = ["Executor", "execute_sql", "execute_query"]


class Executor:
    """Executes parsed queries against a database.

    One executor instance corresponds to one statement execution: CTEs
    are materialised once, uncorrelated subqueries are cached, and the
    ``rows_examined`` counter on :attr:`ctx` reports how much work the
    joins did (used by tests and the ablation benchmarks).
    """

    def __init__(
        self,
        db: Database,
        params: Optional[Dict[str, object]] = None,
        marked_nulls: bool = False,
    ):
        self.ctx = ExecContext(db, params, marked_nulls=marked_nulls)

    # ------------------------------------------------------------------
    def execute(self, query: TUnion[ast.Query, ast.Select, ast.SetOp]) -> Relation:
        query = ast.query_of(query)
        for name, sub in query.ctes:
            if name in self.ctx.ctes:
                raise EngineError(f"duplicate WITH view {name!r}")
            self.ctx.ctes[name] = self._run_query(sub)
        return self._run_body(query.body)

    # ------------------------------------------------------------------
    def _run_query(self, query: ast.Query) -> Relation:
        if query.ctes:
            raise EngineError("nested WITH is not supported")
        return self._run_body(query.body)

    def _run_body(self, body: TUnion[ast.Select, ast.SetOp]) -> Relation:
        if isinstance(body, ast.Select):
            return self._run_select(body)
        assert isinstance(body, ast.SetOp)
        left = self._run_query(body.left)
        right = self._run_query(body.right)
        if left.arity != right.arity:
            raise EngineError(
                f"{body.op.upper()} operands have arity {left.arity} and {right.arity}"
            )
        if body.op == "union":
            rows = list(left.rows) + list(right.rows)
            if not body.all:
                rows = list(dict.fromkeys(rows))
            return Relation(left.attributes, rows)
        if body.op == "intersect":
            right_set = set(right.rows)
            rows = [r for r in dict.fromkeys(left.rows) if r in right_set]
            return Relation(left.attributes, rows)
        right_set = set(right.rows)
        rows = [r for r in dict.fromkeys(left.rows) if r not in right_set]
        return Relation(left.attributes, rows)

    # ------------------------------------------------------------------
    def _run_select(self, select: ast.Select) -> Relation:
        block = CompiledBlock(select, self.ctx, parent=None)
        outputs = self._output_plan(select, block)
        names = [name for name, _getter in outputs]
        rows = []
        for cursor in block.iterate({}):
            rows.append(tuple(getter(cursor) for _name, getter in outputs))
        if select.distinct:
            rows = list(dict.fromkeys(rows))
        return Relation(tuple(names), rows)

    def _output_plan(self, select: ast.Select, block: CompiledBlock):
        """Compile the SELECT list into (name, getter) pairs."""
        outputs: List[Tuple[str, object]] = []
        if len(select.columns) == 1 and isinstance(select.columns[0], ast.Star):
            for binding, source in block.sources.items():
                for column in source.columns:
                    key = (binding, column)
                    outputs.append((column, _slot_getter(key)))
            return self._dedupe_names(outputs, block)
        for col in select.columns:
            if isinstance(col, ast.Star):
                raise EngineError("* mixed with explicit output columns")
            expr = block._expr(col.expr)
            if col.alias:
                name = col.alias
            elif isinstance(col.expr, ast.ColumnRef):
                name = col.expr.name
            elif isinstance(col.expr, ast.Aggregate):
                name = col.expr.func
            else:
                name = f"column{len(outputs) + 1}"
            outputs.append((name, _expr_getter(expr)))
        return self._dedupe_names(outputs, block)

    @staticmethod
    def _dedupe_names(outputs, block):
        seen: Dict[str, int] = {}
        result = []
        for name, getter in outputs:
            if name in seen:
                seen[name] += 1
                name = f"{name}_{seen[name]}"
            else:
                seen[name] = 0
            result.append((name, getter))
        return result


def _slot_getter(key):
    def getter(cursor):
        slotmap, row = cursor
        return row[slotmap[key]]

    return getter


def _expr_getter(expr):
    def getter(cursor):
        return expr.eval(cursor, {})

    return getter


def execute_query(
    db: Database,
    query: TUnion[ast.Query, ast.Select, ast.SetOp],
    params: Optional[Dict[str, object]] = None,
    marked_nulls: bool = False,
) -> Relation:
    """Execute a parsed query; returns a :class:`Relation`.

    ``marked_nulls=True`` switches equality on the *same* null from
    unknown to true — the Section 8 "marked nulls" evaluation mode.
    """
    return Executor(db, params, marked_nulls=marked_nulls).execute(ast.query_of(query))


def execute_sql(
    db: Database,
    sql: TUnion[str, ast.Query, ast.Select, ast.SetOp],
    params: Optional[Dict[str, object]] = None,
    marked_nulls: bool = False,
) -> Relation:
    """Parse (if necessary) and execute SQL against *db*."""
    if isinstance(sql, str):
        sql = parse_sql(sql)
    return execute_query(db, sql, params, marked_nulls=marked_nulls)
