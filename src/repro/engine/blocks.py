"""Compiled SELECT blocks: classification, join ordering, evaluation.

A :class:`CompiledBlock` is the engine's unit of execution.  Compiling a
``SELECT`` block:

1. resolves every column reference (recording which outer blocks must
   supply values for correlated references);
2. classifies WHERE conjuncts into *pushed filters* (single table),
   *equi-joins* (plain ``a = b`` across two local tables), *probes*
   (``local = <outer expression>``) and *residuals* (everything else —
   ``OR`` conditions, subquery predicates, …);
3. compiles scalar expressions and conditions into evaluator objects
   with SQL's three-valued semantics.

At run time the block lazily picks a greedy left-deep join order (hash
joins on available equality keys, Cartesian products otherwise — which
is how an ``OR … IS NULL`` join condition degrades to nested loops, the
Section 7 Q4 effect), builds hash indexes once, and streams result rows
so ``EXISTS`` probes stop at the first match.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.algebra.conditions import like_match
from repro.algebra.threevl import FALSE, TRUE, UNKNOWN, ThreeValued, from_bool
from repro.data.nulls import Null, is_null
from repro.engine.limits import LimitGovernor, ResourceLimits
from repro.engine.scope import CompileScope, EngineError, Resolution
from repro.engine.stats import SourceStats, TableBytesMeter, choose_join_order
from repro.sql import ast

__all__ = ["CompiledBlock", "ExecContext", "compile_block"]

Row = Tuple[object, ...]
Key = Tuple[str, str]  # (binding, column)

#: Cursor slotmap for rows with no local columns (pre-join conditions).
_EMPTY_SLOTMAP: Dict[Key, int] = {}

#: Rows per chunk when streaming a filtered single-table scan through
#: the columnar batch passes (keeps ``EXISTS`` short-circuiting without
#: materialising the whole filtered table).
_FILTER_CHUNK = 1024

#: Test-only scan instrumentation installed by :mod:`repro.testing.faults`
#: (``(table name, relation) -> relation`` wrapper); ``None`` in production,
#: so the hot path pays one global load.
SCAN_FAULT_HOOK = None


class ExecContext:
    """Shared execution state: database, parameters, materialised CTEs."""

    def __init__(
        self,
        db,
        params: Optional[Dict[str, object]] = None,
        marked_nulls: bool = False,
        memoize_probes: bool = True,
        decorrelate: bool = True,
        limits: Optional[ResourceLimits] = None,
        compile_predicates: Optional[bool] = None,
    ):
        self.db = db
        self.params = dict(params or {})
        self.ctes: Dict[str, "object"] = {}
        #: Section 8's "proper implementation of marked nulls": equality
        #: between two occurrences of the *same* null is TRUE instead of
        #: unknown (and disequality FALSE).  Everything else keeps 3VL.
        self.marked_nulls = marked_nulls
        #: memoize correlated subquery probes on their correlation values
        self.memoize_probes = memoize_probes
        #: decorrelate pure equi-correlated subqueries into hash tables
        self.decorrelate = decorrelate
        #: resource governance (deadline / row budgets); ``None`` caps nothing
        self.limits = limits
        self.governor = (
            None if limits is None or limits.unlimited else LimitGovernor(limits)
        )
        #: instrumentation: rows produced by join steps (see explain/tests)
        self.rows_examined = 0
        #: probe-memo cache instrumentation (correlated subqueries)
        self.probe_cache_hits = 0
        self.probe_cache_misses = 0
        #: hash semi-/anti-join decorrelation instrumentation
        self.decorrelated_probes = 0
        self.probe_tables_built = 0
        #: rows consumed building decorrelated probe tables; kept out of
        #: ``rows_examined`` the same way hash-index builds are
        self.probe_build_rows = 0
        #: decorrelations abandoned because a probe-table build exceeded
        #: ``max_probe_build_rows`` — graceful degradation, not an error
        self.degradations = 0
        #: lower predicate/expression trees to specialized closures and
        #: run pushed filters as columnar batch passes (defaults to on;
        #: the ``REPRO_NO_COMPILE`` env var or ``compile_predicates=False``
        #: falls back to the interpreted ``eval`` path)
        if compile_predicates is None:
            from repro.engine.compile import compile_enabled

            compile_predicates = compile_enabled()
        self.compile_predicates = compile_predicates
        #: approximate bytes held by live probe/equi hash tables
        #: (:class:`~repro.engine.stats.TableBytesMeter` estimates), used
        #: to enforce ``ResourceLimits.max_probe_table_bytes``
        self.table_bytes = 0
        #: registries for :meth:`set_limits` invalidation
        self._blocks: List["CompiledBlock"] = []
        self._probe_preds: List[object] = []

    def set_limits(self, limits: Optional[ResourceLimits]) -> None:
        """Swap the resource limits, invalidating limit-dependent state.

        Lazily-built runtime state bakes the limits in (a probe-table
        build degrades at ``max_probe_build_rows``, an equi index at
        ``max_probe_table_bytes``), so changing them drops probe tables,
        decorrelation decisions and hash indexes; the next run replans
        under the new caps.  Results are unaffected — only degradation
        behavior changes.  No-op when the limits compare equal.
        """
        if limits == self.limits:
            return
        self.limits = limits
        self.governor = (
            None if limits is None or limits.unlimited else LimitGovernor(limits)
        )
        for pred in self._probe_preds:
            _reset_decor(pred)
        for block in self._blocks:
            block._reset_runtime()
        self.table_bytes = 0

    def arm(self) -> None:
        """Restart the wall-clock deadline (top of each prepared run)."""
        if self.governor is not None:
            self.governor.arm()

    def check(self) -> None:
        """Enforce resource limits; called once per row consumed.

        Amortised: with no limits this is a single attribute test, and
        the governor only reads the clock every
        :data:`~repro.engine.limits.CHECK_INTERVAL` calls.
        """
        governor = self.governor
        if governor is not None:
            governor.check(self.rows_examined + self.probe_build_rows)

    def relation(self, name: str):
        if name in self.ctes:
            relation = self.ctes[name]
        else:
            try:
                relation = self.db[name]
            except KeyError:
                raise EngineError(f"unknown table {name!r}") from None
        if SCAN_FAULT_HOOK is not None:
            relation = SCAN_FAULT_HOOK(name, relation)
        return relation


# ---------------------------------------------------------------------------
# Scalar expression evaluators
# ---------------------------------------------------------------------------


class _Expr:
    """Compiled scalar expression."""

    __slots__ = ()
    local_keys: frozenset = frozenset()
    has_outer: bool = False

    def eval(self, cursor, env):  # pragma: no cover - abstract
        raise NotImplementedError


class _Const(_Expr):
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def eval(self, cursor, env):
        return self.value


class _Col(_Expr):
    __slots__ = ("depth", "key", "local_keys", "has_outer")

    def __init__(self, resolution: Resolution):
        self.depth = resolution.depth
        self.key = resolution.key
        self.local_keys = frozenset([self.key]) if resolution.depth == 0 else frozenset()
        self.has_outer = resolution.depth > 0

    def eval(self, cursor, env):
        if self.depth == 0:
            slot = cursor[0].get(self.key)
            if slot is None:
                raise EngineError(f"column {self.key} not bound yet")
            return cursor[1][slot]
        return env[self.key]


class _Concat(_Expr):
    __slots__ = ("parts", "local_keys", "has_outer")

    def __init__(self, parts: Sequence[_Expr]):
        self.parts = tuple(parts)
        keys = frozenset()
        for part in parts:
            keys |= part.local_keys
        self.local_keys = keys
        self.has_outer = any(part.has_outer for part in parts)

    def eval(self, cursor, env):
        pieces = []
        for part in self.parts:
            value = part.eval(cursor, env)
            if is_null(value):
                return value  # null-propagating
            pieces.append(str(value))
        return "".join(pieces)


class _ScalarSubquery(_Expr):
    """Uncorrelated scalar aggregate subquery — evaluated once, cached."""

    __slots__ = ("block", "func", "arg", "_cache", "_computed")

    def __init__(self, block: "CompiledBlock", func: str, arg: Optional[_Expr]):
        if block.external:
            raise EngineError("correlated scalar subqueries are not supported")
        self.block = block
        self.func = func
        self.arg = arg
        self._cache = None
        self._computed = False

    def eval(self, cursor, env):
        if not self._computed:
            self._cache = self._compute()
            self._computed = True
        return self._cache

    def _compute(self):
        values = []
        count_star = 0
        for sub_cursor in self.block.iterate({}):
            count_star += 1
            if self.arg is not None:
                values.append(self.arg.eval(sub_cursor, {}))
        non_null = [v for v in values if not is_null(v)]
        if self.func == "count":
            return count_star if self.arg is None else len(non_null)
        if not non_null:
            return Null()  # SQL aggregates over nothing yield NULL
        if self.func == "avg":
            return sum(non_null) / len(non_null)
        if self.func == "sum":
            return sum(non_null)
        if self.func == "min":
            return min(non_null)
        if self.func == "max":
            return max(non_null)
        raise EngineError(f"unknown aggregate {self.func!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# Condition evaluators (three-valued)
# ---------------------------------------------------------------------------


class _Cond:
    __slots__ = ()
    local_keys: frozenset = frozenset()
    has_outer: bool = False

    def eval(self, cursor, env) -> ThreeValued:  # pragma: no cover - abstract
        raise NotImplementedError


def _compare(op: str, a, b, marked: bool = False) -> ThreeValued:
    if is_null(a) or is_null(b):
        if marked and is_null(a) and is_null(b) and a == b:
            # The same marked null certainly equals itself.
            if op == "=":
                return TRUE
            if op == "<>":
                return FALSE
        return UNKNOWN
    if op == "=":
        return from_bool(a == b)
    if op == "<>":
        return from_bool(a != b)
    if op == "like":
        return from_bool(like_match(a, b))
    if op == "not like":
        return from_bool(not like_match(a, b))
    if op == "<":
        return from_bool(a < b)
    if op == "<=":
        return from_bool(a <= b)
    if op == ">":
        return from_bool(a > b)
    if op == ">=":
        return from_bool(a >= b)
    raise EngineError(f"unknown comparison operator {op!r}")  # pragma: no cover


class _Cmp(_Cond):
    __slots__ = ("op", "left", "right", "local_keys", "has_outer", "marked")

    def __init__(self, op: str, left: _Expr, right: _Expr, marked: bool = False):
        self.op = op
        self.left = left
        self.right = right
        self.local_keys = left.local_keys | right.local_keys
        self.has_outer = left.has_outer or right.has_outer
        self.marked = marked

    def eval(self, cursor, env) -> ThreeValued:
        return _compare(
            self.op,
            self.left.eval(cursor, env),
            self.right.eval(cursor, env),
            self.marked,
        )


class _IsNull(_Cond):
    __slots__ = ("expr", "negated", "local_keys", "has_outer")

    def __init__(self, expr: _Expr, negated: bool):
        self.expr = expr
        self.negated = negated
        self.local_keys = expr.local_keys
        self.has_outer = expr.has_outer

    def eval(self, cursor, env) -> ThreeValued:
        value = self.expr.eval(cursor, env)
        return from_bool(is_null(value) != self.negated)


class _Bool(_Cond):
    __slots__ = ("op", "items", "local_keys", "has_outer")

    def __init__(self, op: str, items: Sequence[_Cond]):
        self.op = op
        self.items = tuple(items)
        keys = frozenset()
        for item in items:
            keys |= item.local_keys
        self.local_keys = keys
        self.has_outer = any(item.has_outer for item in items)

    def eval(self, cursor, env) -> ThreeValued:
        if self.op == "and":
            result = TRUE
            for item in self.items:
                value = item.eval(cursor, env)
                if value is FALSE:
                    return FALSE
                if value is UNKNOWN:
                    result = UNKNOWN
            return result
        result = FALSE
        for item in self.items:
            value = item.eval(cursor, env)
            if value is TRUE:
                return TRUE
            if value is UNKNOWN:
                result = UNKNOWN
        return result


class _Not(_Cond):
    __slots__ = ("item", "local_keys", "has_outer")

    def __init__(self, item: _Cond):
        self.item = item
        self.local_keys = item.local_keys
        self.has_outer = item.has_outer

    def eval(self, cursor, env) -> ThreeValued:
        return ~self.item.eval(cursor, env)


class _BoolConst(_Cond):
    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = TRUE if value else FALSE

    def eval(self, cursor, env) -> ThreeValued:
        return self.value


_MISSING = object()


class _Exists(_Cond):
    """``[NOT] EXISTS`` — two-valued; uncorrelated results are cached.

    Correlated probes are amortised two ways (Section 7's engine story):

    * when the correlation is purely equality against plain outer
      columns, the subquery is *decorrelated*: one pass over the inner
      block groups its rows by the correlated key and every outer row
      becomes a hash semi-/anti-join lookup;
    * otherwise probe results are memoized on the tuple of correlated
      values, so repeated outer keys re-execute nothing.
    """

    __slots__ = (
        "block", "negated", "needed", "local_keys", "has_outer",
        "_cache", "decor", "_table", "_memo", "_memo_keys",
        "_decor0", "_saved_probes",
    )

    def __init__(self, block: "CompiledBlock", negated: bool, parent_scope: CompileScope):
        self.block = block
        self.negated = negated
        self.needed = tuple(
            res.key for res in block.external if res.scope is parent_scope
        )
        self.local_keys = frozenset(self.needed)
        self.has_outer = any(res.scope is not parent_scope for res in block.external)
        self._cache: Optional[ThreeValued] = None
        self.decor = _pure_probe_plan(block, parent_scope) if block.ctx.decorrelate else None
        self._table: Optional[Set[Tuple]] = None
        self._memo: Dict[Tuple, ThreeValued] = {}
        self._memo_keys = tuple(dict.fromkeys(res.key for res in block.external))
        self._decor0 = self.decor
        self._saved_probes = None
        block.ctx._probe_preds.append(self)

    def eval(self, cursor, env) -> ThreeValued:
        if not self.block.external:
            if self._cache is None:
                self._cache = self._probe({})
            return self._cache
        ctx = self.block.ctx
        slotmap, row = cursor
        if self.decor is not None:
            if self._table is None:
                self._build_table()
            if self._table is not None:
                probe = tuple(row[slotmap[key]] for _local, key in self.decor)
                ctx.decorrelated_probes += 1
                if not ctx.marked_nulls and any(is_null(v) for v in probe):
                    found = False  # a null key never compares TRUE
                else:
                    found = probe in self._table
                return from_bool(found != self.negated)
        env2 = dict(env)
        for key in self.needed:
            env2[key] = row[slotmap[key]]
        if not ctx.memoize_probes:
            return self._probe(env2)
        try:
            memo_key = tuple(env2[k] for k in self._memo_keys)
            cached = self._memo.get(memo_key, _MISSING)
        except (KeyError, TypeError):  # unresolvable or unhashable key
            return self._probe(env2)
        if cached is not _MISSING:
            ctx.probe_cache_hits += 1
            return cached
        ctx.probe_cache_misses += 1
        result = self._probe(env2)
        self._memo[memo_key] = result
        return result

    def fast_eval(self, cursor, env) -> ThreeValued:
        """Compiled entry point: the decorrelated hash probe without the
        per-call tuple/genexpr allocations of :meth:`eval`.  Every other
        path (uncorrelated cache, memoized probing) delegates back to
        the interpreted logic — results and counters are identical by
        construction."""
        block = self.block
        if not block.external:
            if self._cache is None:
                self._cache = self._probe({})
            return self._cache
        if self.decor is not None:
            if self._table is None:
                self._build_table()
            table = self._table
            if table is not None:
                ctx = block.ctx
                slotmap, row = cursor
                ctx.decorrelated_probes += 1
                decor = self.decor
                if len(decor) == 1:
                    value = row[slotmap[decor[0][1]]]
                    if not ctx.marked_nulls and isinstance(value, Null):
                        found = False
                    else:
                        found = (value,) in table
                else:
                    probe = tuple(row[slotmap[key]] for _local, key in decor)
                    if not ctx.marked_nulls and any(
                        isinstance(v, Null) for v in probe
                    ):
                        found = False
                    else:
                        found = probe in table
                return TRUE if found != self.negated else FALSE
        return self.eval(cursor, env)

    def _build_table(self) -> None:
        """One-pass hash semi-join build: inner keys that have witnesses."""
        block = self.block
        if block._order is not None:
            # The block was already planned with its probes baked in
            # (e.g. EXPLAIN prepared it); replan without them.
            block._reset_runtime()
        ctx = block.ctx
        saved_probes = block.probes
        block.probes = [(k, e) for k, e in block.probes if not e.has_outer]
        self._saved_probes = saved_probes
        locals_ = tuple(local for local, _key in self.decor)
        marked = ctx.marked_nulls
        cap = None if ctx.limits is None else ctx.limits.max_probe_build_rows
        byte_cap = None if ctx.limits is None else ctx.limits.max_probe_table_bytes
        meter = TableBytesMeter()
        before = ctx.rows_examined
        table: Set[Tuple] = set()
        single = locals_[0] if len(locals_) == 1 else None
        positions: Optional[Tuple[int, ...]] = None
        for slotmap, row in block.iterate({}):
            if cap is not None and ctx.rows_examined - before > cap:
                _degrade(self, block, saved_probes, before)
                return
            # The block yields one shared slotmap; resolve key positions
            # once and index rows directly from then on.
            if positions is None:
                positions = tuple(slotmap[local] for local in locals_)
            if single is not None:
                value = row[positions[0]]
                if not marked and isinstance(value, Null):
                    continue
                key = (value,)
            else:
                key = tuple(row[p] for p in positions)
                if not marked and any(is_null(v) for v in key):
                    continue
            if key in table:
                continue
            table.add(key)
            meter.add(key)
            if (
                byte_cap is not None
                and meter.should_check()
                and meter.over_budget(ctx.table_bytes, byte_cap)
            ):
                _degrade(self, block, saved_probes, before)
                return
        ctx.probe_build_rows += ctx.rows_examined - before
        ctx.rows_examined = before
        ctx.probe_tables_built += 1
        ctx.table_bytes += meter.approx_bytes()
        self._table = table

    def _probe(self, env) -> ThreeValued:
        found = False
        for _ in self.block.iterate(env):
            found = True
            break
        return from_bool(found != self.negated)


class _InValues(_Cond):
    """``x [NOT] IN (v₁, …)`` with the IN-list pre-partitioned at compile
    time: hashable non-null constants go into a set probed in O(1) per
    row (under marked nulls, null constants join the set too — they hash
    by label); everything else (non-constant expressions, unhashable
    constants) stays a residual compared per evaluation.  The truth
    table matches the linear :func:`_membership` scan exactly."""

    __slots__ = (
        "expr", "values", "negated", "local_keys", "has_outer", "marked",
        "_const_set", "_has_null_const", "_residual",
    )

    def __init__(
        self, expr: _Expr, values: Sequence[_Expr], negated: bool, marked: bool = False
    ):
        self.expr = expr
        self.values = tuple(values)
        self.negated = negated
        self.local_keys = expr.local_keys
        self.has_outer = expr.has_outer or any(v.has_outer for v in self.values)
        self.marked = marked
        const_set: Set[object] = set()
        has_null_const = False
        residual: List[_Expr] = []
        for value_expr in self.values:
            if not isinstance(value_expr, _Const):
                residual.append(value_expr)
                continue
            value = value_expr.value
            items = value if isinstance(value, (list, tuple)) else (value,)
            for item in items:
                if is_null(item):
                    # A null candidate contributes UNKNOWN on any miss
                    # (and, under marked nulls, TRUE on a label match —
                    # caught by the set probe since nulls hash by label).
                    has_null_const = True
                    if marked:
                        const_set.add(item)
                    continue
                try:
                    const_set.add(item)
                except TypeError:  # unhashable constant
                    residual.append(_Const(item))
        self._const_set = const_set
        self._has_null_const = has_null_const
        self._residual = tuple(residual)

    def eval(self, cursor, env) -> ThreeValued:
        x = self.expr.eval(cursor, env)
        result = self._membership_fast(x, cursor, env)
        return ~result if self.negated else result

    def _membership_fast(self, x, cursor, env) -> ThreeValued:
        const_set = self._const_set
        if const_set:
            try:
                if x in const_set:
                    return TRUE
            except TypeError:  # unhashable probe value: linear fallback
                for value in const_set:
                    if _compare("=", x, value, self.marked) is TRUE:
                        return TRUE
        saw_unknown = self._has_null_const
        if not saw_unknown and const_set and is_null(x):
            saw_unknown = True  # null vs. any non-null candidate
        for value_expr in self._residual:
            value = value_expr.eval(cursor, env)
            candidates = value if isinstance(value, (list, tuple)) else (value,)
            for item in candidates:
                cmp = _compare("=", x, item, self.marked)
                if cmp is TRUE:
                    return TRUE
                if cmp is UNKNOWN:
                    saw_unknown = True
        return UNKNOWN if saw_unknown else FALSE


class _InSubquery(_Cond):
    """``x [NOT] IN (SELECT …)`` with the same probe amortisation as
    :class:`_Exists`: hash decorrelation for pure equi-correlation and
    memoized value lists otherwise."""

    __slots__ = (
        "expr", "block", "out", "negated", "needed", "local_keys", "has_outer",
        "marked", "_cache", "decor", "_table", "_memo", "_memo_keys",
        "_decor0", "_saved_probes",
    )

    def __init__(
        self,
        expr: _Expr,
        block: "CompiledBlock",
        out: _Expr,
        negated: bool,
        parent_scope: CompileScope,
    ):
        self.expr = expr
        self.block = block
        self.out = out
        self.negated = negated
        self.needed = tuple(
            res.key for res in block.external if res.scope is parent_scope
        )
        self.local_keys = expr.local_keys | frozenset(self.needed)
        self.has_outer = expr.has_outer or any(
            res.scope is not parent_scope for res in block.external
        )
        self.marked = block.ctx.marked_nulls
        self._cache: Optional[List[object]] = None
        self.decor = None
        if block.ctx.decorrelate and not out.has_outer:
            self.decor = _pure_probe_plan(block, parent_scope)
        self._table: Optional[Dict[Tuple, List[object]]] = None
        self._memo: Dict[Tuple, List[object]] = {}
        self._memo_keys = tuple(dict.fromkeys(res.key for res in block.external))
        self._decor0 = self.decor
        self._saved_probes = None
        block.ctx._probe_preds.append(self)

    def _values(self, env) -> List[object]:
        return [self.out.eval(cursor, env) for cursor in self.block.iterate(env)]

    def eval(self, cursor, env) -> ThreeValued:
        x = self.expr.eval(cursor, env)
        if not self.block.external:
            if self._cache is None:
                self._cache = self._values({})
            values = self._cache
        else:
            values = self._correlated_values(cursor, env)
        result = _membership(x, values, self.marked)
        return ~result if self.negated else result

    def _correlated_values(self, cursor, env) -> Sequence[object]:
        ctx = self.block.ctx
        slotmap, row = cursor
        if self.decor is not None:
            if self._table is None:
                self._build_table()
            if self._table is not None:
                probe = tuple(row[slotmap[key]] for _local, key in self.decor)
                ctx.decorrelated_probes += 1
                if not ctx.marked_nulls and any(is_null(v) for v in probe):
                    return ()  # a null key never compares TRUE
                return self._table.get(probe, ())
        env2 = dict(env)
        for key in self.needed:
            env2[key] = row[slotmap[key]]
        if not ctx.memoize_probes:
            return self._values(env2)
        try:
            memo_key = tuple(env2[k] for k in self._memo_keys)
            cached = self._memo.get(memo_key, _MISSING)
        except (KeyError, TypeError):  # unresolvable or unhashable key
            return self._values(env2)
        if cached is not _MISSING:
            ctx.probe_cache_hits += 1
            return cached
        ctx.probe_cache_misses += 1
        values = self._values(env2)
        self._memo[memo_key] = values
        return values

    def _build_table(self) -> None:
        """One-pass build: inner output values grouped by correlated key."""
        block = self.block
        if block._order is not None:
            # Planned with its probes baked in (e.g. EXPLAIN prepared
            # it); replan without them.
            block._reset_runtime()
        ctx = block.ctx
        saved_probes = block.probes
        block.probes = [(k, e) for k, e in block.probes if not e.has_outer]
        self._saved_probes = saved_probes
        locals_ = tuple(local for local, _key in self.decor)
        marked = ctx.marked_nulls
        cap = None if ctx.limits is None else ctx.limits.max_probe_build_rows
        byte_cap = None if ctx.limits is None else ctx.limits.max_probe_table_bytes
        meter = TableBytesMeter()
        before = ctx.rows_examined
        table: Dict[Tuple, List[object]] = {}
        for sub_cursor in block.iterate({}):
            if cap is not None and ctx.rows_examined - before > cap:
                _degrade(self, block, saved_probes, before)
                return
            sub_slotmap, sub_row = sub_cursor
            key = tuple(sub_row[sub_slotmap[local]] for local in locals_)
            if not marked and any(is_null(v) for v in key):
                continue
            bucket = table.get(key)
            if bucket is None:
                bucket = table[key] = []
                meter.add(key)
                if (
                    byte_cap is not None
                    and meter.should_check()
                    and meter.over_budget(ctx.table_bytes, byte_cap)
                ):
                    _degrade(self, block, saved_probes, before)
                    return
            bucket.append(self.out.eval(sub_cursor, {}))
        ctx.probe_build_rows += ctx.rows_examined - before
        ctx.rows_examined = before
        ctx.probe_tables_built += 1
        ctx.table_bytes += meter.approx_bytes()
        self._table = table


def _degrade(pred, block: "CompiledBlock", saved_probes, rows_before: int) -> None:
    """Abandon decorrelation mid-build: the probe table would cost more
    than ``max_probe_build_rows``.

    The inner block is restored to its correlated shape (probes back in
    place, lazy runtime state dropped so the next iteration re-plans
    with them) and the predicate falls back to memoized/naive probing,
    whose results bit-match by construction.  The wasted build work is
    accounted under ``probe_build_rows`` like any other build.
    """
    ctx = block.ctx
    block.probes = saved_probes
    block._reset_runtime()
    ctx.probe_build_rows += ctx.rows_examined - rows_before
    ctx.rows_examined = rows_before
    ctx.degradations += 1
    pred.decor = None
    pred._table = None
    pred._saved_probes = None


def _reset_decor(pred) -> None:
    """Restore a subquery predicate to its pre-decorrelation shape.

    Used by :meth:`ExecContext.set_limits`: probe tables, memo entries
    and past degradation decisions all baked in the old limits, so the
    predicate gets its original probes and decorrelation plan back and
    rebuilds lazily under the new caps.
    """
    block = pred.block
    if pred._saved_probes is not None:
        block.probes = pred._saved_probes
        pred._saved_probes = None
    pred._table = None
    pred._memo.clear()
    pred.decor = pred._decor0
    block._reset_runtime()


def _membership(x, values, marked: bool = False) -> ThreeValued:
    """SQL semantics of ``x IN (values)``."""
    saw_unknown = False
    for value in values:
        cmp = _compare("=", x, value, marked)
        if cmp is TRUE:
            return TRUE
        if cmp is UNKNOWN:
            saw_unknown = True
    return UNKNOWN if saw_unknown else FALSE


# ---------------------------------------------------------------------------
# The compiled block
# ---------------------------------------------------------------------------


class _Source:
    """One FROM entry with its pushed single-table filters."""

    __slots__ = ("binding", "table", "columns", "filters")

    def __init__(self, binding: str, table: str, columns: Tuple[str, ...]):
        self.binding = binding
        self.table = table
        self.columns = columns
        self.filters: List[_Cond] = []


class CompiledBlock:
    def __init__(self, select: ast.Select, ctx: ExecContext, parent: Optional[CompileScope]):
        self.select = select
        self.ctx = ctx
        self.sources: Dict[str, _Source] = {}
        for ref in select.tables:
            relation = ctx.relation(ref.name)
            if ref.binding in self.sources:
                raise EngineError(f"duplicate binding {ref.binding!r}")
            self.sources[ref.binding] = _Source(ref.binding, ref.name, relation.attributes)
        self.scope = CompileScope(
            {b: s.columns for b, s in self.sources.items()}, parent=parent
        )
        #: resolutions into enclosing scopes (this block + its subblocks)
        self.external: List[Resolution] = []
        #: (local key, outer expression) equality probes
        self.probes: List[Tuple[Key, _Expr]] = []
        #: plain local equi-joins (key_a, key_b)
        self.equi: List[Tuple[Key, Key]] = []
        #: residual conditions (evaluated 3VL once their tables are bound)
        self.residuals: List[_Cond] = []

        self._compile_where(select.where)

        # Uncorrelated/outer-only residuals (no local keys): computed
        # eagerly so iterate() can evaluate them *before* any planning
        # or filtering work — a FALSE short-circuits the whole block
        # without touching base tables (Q+2's win).
        self._pre: List[_Cond] = [c for c in self.residuals if not c.local_keys]
        if ctx.compile_predicates:
            from repro.engine.compile import compile_cond

            self._pre_fns = [compile_cond(c) for c in self._pre]
        else:
            self._pre_fns = [c.eval for c in self._pre]

        # Runtime state, built lazily on first iteration.
        self._filtered: Optional[Dict[str, List[Row]]] = None
        self._order: Optional[List[Tuple[str, List[Tuple[int, object]]]]] = None
        self._slotmap: Optional[Dict[Key, int]] = None
        self._indexes: Dict[
            Tuple[str, Tuple[str, ...]], Optional[Dict[Tuple, List[Row]]]
        ] = {}
        self._attached: Optional[List[List[_Cond]]] = None
        self._attached_fns: Optional[List[List[object]]] = None
        self._stats: Optional[Dict[str, SourceStats]] = None
        self._order_estimates: Optional[List[float]] = None
        self._step_actual: Optional[List[int]] = None
        # Compiled batch filter passes, cached per binding (filter sets
        # are immutable after compilation, so these survive resets).
        self._passes: Dict[str, List[object]] = {}
        ctx._blocks.append(self)

    def _reset_runtime(self) -> None:
        """Drop lazily-built plan state so the next iteration re-plans
        (used when a degraded probe-table build restores the block's
        probes after planning stripped them, and by
        :meth:`ExecContext.set_limits`)."""
        self._filtered = None
        self._order = None
        self._slotmap = None
        self._indexes = {}
        self._attached = None
        self._attached_fns = None
        self._stats = None
        self._order_estimates = None
        self._step_actual = None

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _compile_where(self, where: Optional[ast.SqlCond]) -> None:
        if where is None:
            return
        conjuncts = (
            where.items
            if isinstance(where, ast.BoolOp) and where.op == "and"
            else (where,)
        )
        for cond in conjuncts:
            self._classify(cond)

    def _classify(self, cond: ast.SqlCond) -> None:
        # Plain local equality: equi-join or probe.
        if isinstance(cond, ast.Comparison) and cond.op == "=":
            left = self._try_column(cond.left)
            right = self._try_column(cond.right)
            if left is not None and right is not None:
                if left.depth == 0 and right.depth == 0:
                    if left.binding != right.binding:
                        self.equi.append((left.key, right.key))
                        return
                elif left.depth == 0 or right.depth == 0:
                    local, outer = (left, cond.right) if left.depth == 0 else (right, cond.left)
                    self.probes.append((local.key, self._expr(outer)))
                    return
            elif left is not None and left.depth == 0 and self._is_outer_free(cond.right):
                self.probes.append((left.key, self._expr(cond.right)))
                return
            elif right is not None and right.depth == 0 and self._is_outer_free(cond.left):
                self.probes.append((right.key, self._expr(cond.left)))
                return
        compiled = self._cond(cond)
        keys = compiled.local_keys
        bindings = {binding for binding, _ in keys}
        if (
            len(bindings) == 1
            and not compiled.has_outer
            and not _contains_subquery(compiled)
        ):
            self.sources[next(iter(bindings))].filters.append(compiled)
        else:
            self.residuals.append(compiled)

    def _try_column(self, expr: ast.SqlExpr) -> Optional[Resolution]:
        if not isinstance(expr, ast.ColumnRef):
            return None
        resolution = self.scope.resolve(expr)
        if resolution.depth > 0:
            self.external.append(resolution)
        return resolution

    def _is_outer_free(self, expr: ast.SqlExpr) -> bool:
        """True for literals/params/concats without column references."""
        if isinstance(expr, (ast.Literal, ast.Param)):
            return True
        if isinstance(expr, ast.Concat):
            return all(self._is_outer_free(p) for p in expr.parts)
        return False

    # -- expressions ----------------------------------------------------
    def _expr(self, expr: ast.SqlExpr) -> _Expr:
        if isinstance(expr, ast.ColumnRef):
            resolution = self.scope.resolve(expr)
            if resolution.depth > 0:
                self.external.append(resolution)
            return _Col(resolution)
        if isinstance(expr, ast.Literal):
            return _Const(expr.value)
        if isinstance(expr, ast.Param):
            if expr.name not in self.ctx.params:
                raise EngineError(f"unbound parameter ${expr.name}")
            return _Const(self.ctx.params[expr.name])
        if isinstance(expr, ast.Concat):
            return _Concat([self._expr(p) for p in expr.parts])
        if isinstance(expr, ast.ScalarSubquery):
            return self._scalar_subquery(expr.query)
        if isinstance(expr, ast.Aggregate):
            raise EngineError("aggregates are only supported in scalar subqueries")
        raise EngineError(f"cannot compile expression {expr!r}")

    def _scalar_subquery(self, query: ast.Query) -> _ScalarSubquery:
        body = query.body
        if query.ctes or not isinstance(body, ast.Select):
            raise EngineError("scalar subqueries must be plain SELECT blocks")
        if len(body.columns) != 1 or isinstance(body.columns[0], ast.Star):
            raise EngineError("scalar subqueries must select a single value")
        out = body.columns[0]
        assert isinstance(out, ast.OutputColumn)
        if not isinstance(out.expr, ast.Aggregate):
            raise EngineError(
                "only aggregate scalar subqueries are supported (the paper's "
                "black-box case)"
            )
        sub = CompiledBlock(body, self.ctx, self.scope)
        self._absorb_external(sub)
        arg = None if out.expr.arg is None else sub._expr(out.expr.arg)
        return _ScalarSubquery(sub, out.expr.func, arg)

    # -- conditions -----------------------------------------------------
    def _cond(self, cond: ast.SqlCond) -> _Cond:
        if isinstance(cond, ast.Comparison):
            return _Cmp(
                cond.op,
                self._expr(cond.left),
                self._expr(cond.right),
                self.ctx.marked_nulls,
            )
        if isinstance(cond, ast.IsNull):
            return _IsNull(self._expr(cond.expr), cond.negated)
        if isinstance(cond, ast.BoolOp):
            return _Bool(cond.op, [self._cond(item) for item in cond.items])
        if isinstance(cond, ast.NotOp):
            return _Not(self._cond(cond.item))
        if isinstance(cond, ast.BoolLiteral):
            return _BoolConst(cond.value)
        if isinstance(cond, ast.Exists):
            sub = self._subblock(cond.query)
            return _Exists(sub, cond.negated, self.scope)
        if isinstance(cond, ast.InPredicate):
            if cond.values is not None:
                return _InValues(
                    self._expr(cond.expr),
                    [self._expr(v) for v in cond.values],
                    cond.negated,
                    self.ctx.marked_nulls,
                )
            assert cond.query is not None
            sub_body = cond.query.body
            if cond.query.ctes or not isinstance(sub_body, ast.Select):
                raise EngineError("IN subqueries must be plain SELECT blocks")
            if len(sub_body.columns) != 1 or isinstance(sub_body.columns[0], ast.Star):
                raise EngineError("IN subqueries must select one column")
            out = sub_body.columns[0]
            assert isinstance(out, ast.OutputColumn)
            sub = CompiledBlock(sub_body, self.ctx, self.scope)
            self._absorb_external(sub)
            out_expr = sub._expr(out.expr)
            return _InSubquery(
                self._expr(cond.expr), sub, out_expr, cond.negated, self.scope
            )
        raise EngineError(f"cannot compile condition {cond!r}")

    def _subblock(self, query: ast.Query) -> "CompiledBlock":
        body = query.body
        if query.ctes or not isinstance(body, ast.Select):
            raise EngineError("subqueries must be plain SELECT blocks")
        sub = CompiledBlock(body, self.ctx, self.scope)
        self._absorb_external(sub)
        return sub

    def _absorb_external(self, sub: "CompiledBlock") -> None:
        """Resolutions of *sub* pointing above this block become ours."""
        for res in sub.external:
            if res.scope is not self.scope:
                self.external.append(res)

    # ------------------------------------------------------------------
    # Runtime
    # ------------------------------------------------------------------
    def _filtered_rows(self, source: _Source) -> List[Row]:
        ctx = self.ctx
        relation = ctx.relation(source.table)
        rows = relation.rows
        if not source.filters:
            return rows
        if ctx.compile_predicates:
            # Columnar: each pushed conjunct is one batch pass over the
            # surviving row ids, so later conjuncts only touch rows the
            # earlier ones kept.  Filter scans stay outside the row
            # counters (same convention as the interpreted path).
            ids: Sequence[int] = range(len(rows))
            for batch_pass in self._batch_passes(source):
                ctx.check()
                ids = batch_pass(rows, ids)
                if not ids:
                    break
            return [rows[i] for i in ids]
        slotmap = {(source.binding, col): i for i, col in enumerate(source.columns)}
        kept = []
        for row in rows:
            ctx.check()
            cursor = (slotmap, row)
            if all(f.eval(cursor, {}) is TRUE for f in source.filters):
                kept.append(row)
        return kept

    def _batch_passes(self, source: _Source) -> List[object]:
        passes = self._passes.get(source.binding)
        if passes is None:
            from repro.engine.compile import build_batch_passes

            passes = build_batch_passes(source, source.filters)
            self._passes[source.binding] = passes
        return passes

    def _prepare(self, env_available: bool) -> None:
        if self._order is not None:
            return
        self._filtered = {}  # filled lazily by _get_filtered
        self._build_order(env_available)
        self._attach_residuals()

    def _get_filtered(self, binding: str) -> List[Row]:
        assert self._filtered is not None
        rows = self._filtered.get(binding)
        if rows is None:
            rows = self._filtered_rows(self.sources[binding])
            self._filtered[binding] = rows
        return rows

    def _build_order(self, env_available: bool) -> None:
        if len(self.sources) > 1:
            # Selectivity-driven greedy ordering: score each candidate
            # from its *filtered* cardinality and the NDV of its usable
            # equality keys (|R ⋈ S| ≈ |R|·|S| / key NDV).  Multi-table
            # blocks materialise their filtered rows for hash indexes
            # anyway, so the statistics pass reuses that work.
            stats = {b: SourceStats(self._get_filtered(b)) for b in self.sources}
            positions = {
                b: {col: i for i, col in enumerate(s.columns)}
                for b, s in self.sources.items()
            }
            order, estimates = choose_join_order(
                stats, positions, self.probes, self.equi, env_available
            )
            self._stats = stats
            self._order_estimates = estimates
        else:
            # Single-table blocks stream (EXISTS short-circuits without
            # materialising the filter), so keep the trivial order and
            # skip the statistics pass.
            order = list(self.sources)
            self._stats = None
            self._order_estimates = None
        self._step_actual = [0] * len(order)

        # Slot layout follows the join order.
        slotmap: Dict[Key, int] = {}
        offset = 0
        for binding in order:
            for col in self.sources[binding].columns:
                slotmap[(binding, col)] = offset
                offset += 1
        self._slotmap = slotmap

        # For each step, the equality keys usable to probe it.
        steps: List[Tuple[str, List[Tuple[str, object]]]] = []
        bound = set()
        for binding in order:
            keys: List[Tuple[str, object]] = []
            for key, expr in self.probes:
                if key[0] == binding:
                    keys.append((key[1], ("env", expr)))
            for a, b in self.equi:
                if a[0] == binding and b[0] in bound:
                    keys.append((a[1], ("row", b)))
                elif b[0] == binding and a[0] in bound:
                    keys.append((b[1], ("row", a)))
            steps.append((binding, keys))
            bound.add(binding)
        self._order = steps

    def _attach_residuals(self) -> None:
        assert self._order is not None
        bound_after: List[Set[str]] = []
        bound: Set[str] = set()
        for binding, _keys in self._order:
            bound = bound | {binding}
            bound_after.append(set(bound))
        self._attached = [[] for _ in self._order]
        for cond in self.residuals:
            bindings = {binding for binding, _ in cond.local_keys}
            if not bindings:
                continue  # handled eagerly via self._pre
            for i, have in enumerate(bound_after):
                if bindings <= have:
                    self._attached[i].append(cond)
                    break
            else:  # pragma: no cover - resolution guarantees coverage
                raise EngineError("residual references unbound tables")
        if self.ctx.compile_predicates:
            from repro.engine.compile import compile_cond

            self._attached_fns = []
            for conds in self._attached:
                nonnull = self._proven_nonnull(conds)
                self._attached_fns.append(
                    [compile_cond(c, nonnull) for c in conds]
                )
        else:
            self._attached_fns = [[c.eval for c in conds] for conds in self._attached]

    def _proven_nonnull(self, conds: Sequence[_Cond]) -> frozenset:
        """Data-driven non-null proofs for the closure compiler: a local
        column whose *filtered* column vector contains no nulls supports
        null-check hoisting in the conditions attached to this plan."""
        if not self._stats:
            return frozenset()
        keys: Set[Key] = set()
        for cond in conds:
            keys |= cond.local_keys
        proven: Set[Key] = set()
        for binding, col in keys:
            stats = self._stats.get(binding)
            if stats is None:
                continue
            position = self.sources[binding].columns.index(col)
            if not stats.has_null(position):
                proven.add((binding, col))
        return frozenset(proven)

    def _index(
        self, binding: str, columns: Tuple[str, ...]
    ) -> Optional[Dict[Tuple, List[Row]]]:
        """Hash index over the filtered rows, or ``None`` when building
        it would push ``ExecContext.table_bytes`` past the
        ``max_probe_table_bytes`` budget (the join then degrades to
        linear probing via :meth:`_linear_matches` — results identical,
        counted in ``ctx.degradations``)."""
        cache_key = (binding, columns)
        index = self._indexes.get(cache_key, _MISSING)
        if index is not _MISSING:
            return index
        source = self.sources[binding]
        positions = [source.columns.index(c) for c in columns]
        ctx = self.ctx
        marked = ctx.marked_nulls
        byte_cap = None if ctx.limits is None else ctx.limits.max_probe_table_bytes
        meter = TableBytesMeter()
        index = {}
        for row in self._get_filtered(binding):
            ctx.check()
            key = tuple(row[p] for p in positions)
            if not marked and any(is_null(v) for v in key):
                continue  # a null join key can never compare TRUE
            bucket = index.get(key)
            if bucket is None:
                index[key] = [row]
                meter.add(key)
                if (
                    byte_cap is not None
                    and meter.should_check()
                    and meter.over_budget(ctx.table_bytes, byte_cap)
                ):
                    ctx.degradations += 1
                    self._indexes[cache_key] = None
                    return None
            else:
                bucket.append(row)
        ctx.table_bytes += meter.approx_bytes()
        self._indexes[cache_key] = index
        return index

    def _linear_matches(
        self, binding: str, columns: Tuple[str, ...], key: Tuple
    ) -> List[Row]:
        """Degraded equi-join probe (hash index over byte budget): scan
        the filtered rows per probe.  Tuple equality yields the same
        matches the index would — the probe key is null-free under SQL
        nulls, and marked nulls compare by label either way."""
        source = self.sources[binding]
        positions = [source.columns.index(c) for c in columns]
        ctx = self.ctx
        matches = []
        for row in self._get_filtered(binding):
            ctx.check()
            if tuple(row[p] for p in positions) == key:
                matches.append(row)
        return matches

    def iterate(self, env: Dict[Key, object]) -> Iterator[Tuple[Dict[Key, int], Row]]:
        """Stream result rows as ``(slotmap, flat_tuple)`` cursors."""
        ctx = self.ctx

        # Uncorrelated/outer-only conditions first: a non-TRUE result
        # short-circuits the whole block (Q+2's win) before any
        # planning, filtering or statistics work happens.
        if self._pre:
            cursor0 = (_EMPTY_SLOTMAP, ())
            for fn in self._pre_fns:
                if fn(cursor0, env) is not TRUE:
                    return

        self._prepare(env_available=bool(self.external) or bool(env) or bool(self.probes))
        assert self._order is not None and self._slotmap is not None
        assert self._attached_fns is not None and self._step_actual is not None

        slotmap = self._slotmap
        attached_fns = self._attached_fns
        step_actual = self._step_actual

        def rows_for(step_index: int, partial: Row) -> Iterator[Row]:
            binding, keys = self._order[step_index]
            if keys:
                columns = tuple(col for col, _src in keys)
                index = self._index(binding, columns)
                probe: List[object] = []
                for _col, src in keys:
                    kind, payload = src
                    if kind == "env":
                        probe.append(payload.eval((slotmap, partial), env))
                    else:
                        probe.append(partial[slotmap[payload]])
                if not ctx.marked_nulls and any(is_null(v) for v in probe):
                    return iter(())
                key = tuple(probe)
                if index is None:  # over the byte budget: linear probe
                    return iter(self._linear_matches(binding, columns, key))
                return iter(index.get(key, ()))
            return iter(self._get_filtered(binding))

        if len(self._order) == 1:
            # Stream straight off the (possibly filtered) table so that
            # EXISTS probes short-circuit without materialising scans.
            binding, keys = self._order[0]
            checks = attached_fns[0]
            if keys:
                rows: Iterator[Row] = rows_for(0, ())
            else:
                source = self.sources[binding]
                if source.filters:
                    rows = self._stream_filtered(source)
                else:
                    rows = iter(ctx.relation(source.table).rows)
            for row in rows:
                ctx.rows_examined += 1
                step_actual[0] += 1
                ctx.check()
                cursor = (slotmap, row)
                if checks:
                    ok = True
                    for fn in checks:
                        if fn(cursor, env) is not TRUE:
                            ok = False
                            break
                    if not ok:
                        continue
                yield cursor
            return

        def pipeline(step_index: int, partial: Row) -> Iterator[Row]:
            checks = attached_fns[step_index]
            last = step_index == len(self._order) - 1
            for row in rows_for(step_index, partial):
                combined = partial + row
                ctx.rows_examined += 1
                step_actual[step_index] += 1
                ctx.check()
                cursor = (slotmap, combined)
                if checks:
                    ok = True
                    for fn in checks:
                        if fn(cursor, env) is not TRUE:
                            ok = False
                            break
                    if not ok:
                        continue
                if last:
                    yield cursor
                else:
                    yield from pipeline(step_index + 1, combined)

        yield from pipeline(0, ())

    def _stream_filtered(self, source: _Source) -> Iterator[Row]:
        ctx = self.ctx
        rows = ctx.relation(source.table).rows
        if ctx.compile_predicates:
            # Chunked columnar filtering: batch passes over a window of
            # row ids at a time, preserving first-match short-circuits.
            passes = self._batch_passes(source)
            total = len(rows)
            start = 0
            while start < total:
                ctx.check()
                ids: Sequence[int] = range(start, min(start + _FILTER_CHUNK, total))
                for batch_pass in passes:
                    ids = batch_pass(rows, ids)
                    if not ids:
                        break
                for i in ids:
                    yield rows[i]
                start += _FILTER_CHUNK
            return
        slotmap = {(source.binding, col): i for i, col in enumerate(source.columns)}
        for row in rows:
            ctx.check()
            cursor = (slotmap, row)
            if all(f.eval(cursor, {}) is TRUE for f in source.filters):
                yield row


def _pure_probe_plan(
    block: "CompiledBlock", parent_scope: CompileScope
) -> Optional[Tuple[Tuple[Key, Key], ...]]:
    """``((local key, outer key), …)`` when *block*'s correlation consists
    purely of equality probes against plain columns of the immediate outer
    block — the shape ``rewrite_certain`` emits for null checks — else
    ``None``.

    Eligibility demands that every outer reference is (a) resolved in the
    immediate parent scope and (b) consumed only by ``local = outer.col``
    probes: no outer references in residual conditions, non-column probe
    expressions, or anywhere else.  Under those conditions the subquery's
    result, as a function of the outer row, depends only on the probed key
    tuple, so a single pass over the inner block grouped by the local key
    columns answers every probe.
    """
    if not block.external:
        return None
    if any(res.scope is not parent_scope for res in block.external):
        return None
    pairs: List[Tuple[Key, Key]] = []
    for local_key, expr in block.probes:
        if expr.has_outer:
            if not isinstance(expr, _Col) or expr.depth == 0:
                return None
            pairs.append((local_key, expr.key))
    if not pairs:
        return None
    if any(cond.has_outer for cond in block.residuals):
        return None
    covered = {outer for _local, outer in pairs}
    if any(res.key not in covered for res in block.external):
        return None
    return tuple(pairs)


def _contains_subquery(cond: _Cond) -> bool:
    if isinstance(cond, (_Exists, _InSubquery)):
        return True
    if isinstance(cond, _Bool):
        return any(_contains_subquery(item) for item in cond.items)
    if isinstance(cond, _Not):
        return _contains_subquery(cond.item)
    if isinstance(cond, _Cmp):
        return isinstance(cond.left, _ScalarSubquery) or isinstance(
            cond.right, _ScalarSubquery
        )
    return False


def compile_block(
    select: ast.Select, ctx: ExecContext, parent: Optional[CompileScope] = None
) -> CompiledBlock:
    return CompiledBlock(select, ctx, parent)
