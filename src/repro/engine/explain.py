"""EXPLAIN: cost-annotated plans for compiled blocks.

The estimator is deliberately simple (textbook selectivities over exact
base cardinalities) but is enough to *show* the Section 7 optimizer
story: for the unsplit ``Q+4`` the subquery plan contains Cartesian
steps and its estimated cost is astronomically higher than both the
original query's and the split rewriting's.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union as TUnion

from repro.data.database import Database
from repro.engine.blocks import (
    CompiledBlock,
    _Bool,
    _Cmp,
    _Cond,
    _Exists,
    _InSubquery,
    _InValues,
    _IsNull,
    _Not,
)
from repro.sql import ast
from repro.sql.parser import parse_sql

__all__ = ["explain_sql", "PlanNode", "estimate_block"]

#: Textbook selectivity guesses.
_SEL_EQ = 0.1
_SEL_RANGE = 1.0 / 3.0
_SEL_ISNULL = 0.05
_SEL_DEFAULT = 0.5


class PlanNode:
    """One step of a block plan, with cardinality and cost estimates."""

    def __init__(
        self,
        description: str,
        est_rows: float,
        est_cost: float,
        children: Optional[List["PlanNode"]] = None,
    ):
        self.description = description
        self.est_rows = est_rows
        self.est_cost = est_cost
        self.children = children or []
        #: cardinality the selectivity-driven join-order model assigned
        #: to this step (``None`` when the static planner ordered it)
        self.model_rows: Optional[float] = None
        #: rows the step actually produced so far (before attached
        #: residuals), accumulated across runs of the prepared statement
        self.actual_rows: Optional[int] = None

    def total_cost(self) -> float:
        return self.est_cost + sum(child.total_cost() for child in self.children)

    def render(self, depth: int = 0) -> str:
        pad = "  " * depth
        line = (
            f"{pad}{self.description}  "
            f"(rows≈{self.est_rows:.0f}, cost≈{self.est_cost:.0f})"
        )
        if self.model_rows is not None:
            line += f"  [order est≈{self.model_rows:.0f}"
            if self.actual_rows is not None:
                line += f", actual {self.actual_rows}"
            line += "]"
        lines = [line]
        for child in self.children:
            lines.append(child.render(depth + 1))
        return "\n".join(lines)


def _cond_selectivity(cond: _Cond) -> float:
    if isinstance(cond, _Cmp):
        if cond.op == "=":
            return _SEL_EQ
        if cond.op == "<>":
            return 1.0 - _SEL_EQ
        return _SEL_RANGE
    if isinstance(cond, _IsNull):
        return _SEL_ISNULL if not cond.negated else 1.0 - _SEL_ISNULL
    if isinstance(cond, _Bool):
        if cond.op == "and":
            sel = 1.0
            for item in cond.items:
                sel *= _cond_selectivity(item)
            return sel
        sel = 0.0
        for item in cond.items:
            sel = sel + _cond_selectivity(item) - sel * _cond_selectivity(item)
        return min(sel, 1.0)
    if isinstance(cond, _Not):
        return 1.0 - _cond_selectivity(cond.item)
    if isinstance(cond, (_Exists, _InSubquery, _InValues)):
        return _SEL_DEFAULT
    return _SEL_DEFAULT


def estimate_block(block: CompiledBlock, correlated: bool) -> PlanNode:
    """Estimate the plan of a prepared block (children = subqueries)."""
    block._prepare(env_available=correlated or bool(block.probes))
    assert block._order is not None and block._attached is not None

    nodes: List[PlanNode] = []
    current_rows = 1.0
    total_cost = 0.0
    for step_index, (binding, keys) in enumerate(block._order):
        source = block.sources[binding]
        base = len(block.ctx.relation(source.table).rows)
        sel = 1.0
        for f in source.filters:
            sel *= _cond_selectivity(f)
        filtered = max(base * sel, 0.001)
        if keys:
            fanout = max(filtered * (_SEL_EQ ** len(keys)), 0.001)
            step_rows = current_rows * fanout
            step_cost = current_rows + filtered  # probe + index build amortised
            how = f"hash probe {source.table} [{', '.join(c for c, _ in keys)}]"
        else:
            step_rows = current_rows * filtered
            step_cost = current_rows * filtered
            how = f"{'scan' if step_index == 0 else 'nested loop'} {source.table}"
        for cond in block._attached[step_index]:
            step_rows *= _cond_selectivity(cond)
        node = PlanNode(how, step_rows, step_cost)
        if block._order_estimates is not None:
            node.model_rows = block._order_estimates[step_index]
            if block._step_actual is not None:
                node.actual_rows = block._step_actual[step_index]
        nodes.append(node)
        current_rows = max(step_rows, 0.001)
        total_cost += step_cost

    children = nodes
    # Subquery plans (attached predicates), estimated per invocation and
    # multiplied by the number of outer invocations.
    for step_index, conds in enumerate(block._attached or []):
        for cond in conds:
            for sub, label, is_corr in _subqueries_of(cond):
                sub_node = estimate_block(sub, correlated=is_corr)
                invocations = nodes[step_index].est_rows if is_corr else 1.0
                wrapper = PlanNode(
                    f"{label} (×{invocations:.0f} invocations)",
                    sub_node.est_rows,
                    sub_node.total_cost() * max(invocations, 1.0),
                )
                wrapper.children = sub_node.children
                children.append(wrapper)
    for cond in block._pre:
        for sub, label, is_corr in _subqueries_of(cond):
            sub_node = estimate_block(sub, correlated=is_corr)
            wrapper = PlanNode(f"{label} (×1 invocation)", sub_node.est_rows, sub_node.total_cost())
            wrapper.children = sub_node.children
            children.append(wrapper)

    root = PlanNode(
        f"block over {', '.join(s.table for s in block.sources.values())}",
        current_rows,
        total_cost,
    )
    root.children = children
    return root


def _subqueries_of(cond: _Cond) -> List[Tuple[CompiledBlock, str, bool]]:
    found: List[Tuple[CompiledBlock, str, bool]] = []
    if isinstance(cond, _Exists):
        label = "NOT EXISTS" if cond.negated else "EXISTS"
        found.append((cond.block, label, bool(cond.block.external)))
    elif isinstance(cond, _InSubquery):
        label = "NOT IN" if cond.negated else "IN"
        found.append((cond.block, label, bool(cond.block.external)))
    elif isinstance(cond, _Bool):
        for item in cond.items:
            found.extend(_subqueries_of(item))
    elif isinstance(cond, _Not):
        found.extend(_subqueries_of(cond.item))
    return found


def explain_sql(
    db: Database,
    sql: TUnion[str, ast.Query],
    params: Optional[Dict[str, object]] = None,
) -> str:
    """Return a cost-annotated plan description for a query."""
    if isinstance(sql, str):
        sql = parse_sql(sql)
    query = ast.query_of(sql)
    sections: List[str] = []
    from repro.engine.executor import Executor  # local import to avoid a cycle

    executor = Executor(db, params)
    for name, sub in query.ctes:
        executor.ctx.ctes[name] = executor._run_query(sub)
        sections.append(f"-- WITH {name}: materialised "
                        f"({len(executor.ctx.ctes[name])} rows)")
    body = query.body
    if not isinstance(body, ast.Select):
        return "\n".join(sections + ["(set operation: operands explained separately)"])
    block = CompiledBlock(body, executor.ctx, parent=None)
    plan = estimate_block(block, correlated=False)
    sections.append(plan.render())
    sections.append(f"-- total estimated cost: {plan.total_cost():.0f}")
    return "\n".join(sections)
