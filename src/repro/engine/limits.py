"""Resource governance: deadlines, row budgets, graceful degradation.

Certain-answer computation is coNP-hard in data complexity (Section 2),
so both the brute-force ground truth and the rewritten ``Q+`` queries
can blow up without warning.  A production engine never runs a query
without a deadline; this module supplies the vocabulary:

* :class:`ResourceLimits` — an immutable bundle of caps a caller may
  attach to an execution (``limits=`` on :class:`~repro.engine.Executor`,
  :func:`~repro.engine.execute_sql`, …);
* a structured exception hierarchy rooted at :class:`ResourceError`
  (itself an :class:`~repro.engine.scope.EngineError`, so existing
  blanket handlers keep working): :class:`QueryTimeout` for wall-clock
  deadlines and :class:`RowBudgetExceeded` for row budgets;
* :class:`LimitGovernor` — the amortised run-time checker carried by
  ``ExecContext`` and consulted from the engine's row-iteration and
  hash/probe-build loops.

``max_probe_build_rows`` is different from the two hard caps: tripping
it does not raise.  The engine *degrades* instead — it abandons hash
decorrelation for the offending subquery and falls back to memoized
probing, which bit-matches the naive path (counted in
``ExecContext.degradations``).  That is the paper-adjacent "anytime"
stance: when an optimisation's up-front cost is out of budget, a slower
sound strategy beats an error.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.engine.scope import EngineError

__all__ = [
    "ResourceLimits",
    "ResourceError",
    "QueryTimeout",
    "RowBudgetExceeded",
    "LimitGovernor",
]


class ResourceError(EngineError):
    """A query exceeded one of its :class:`ResourceLimits`."""


class QueryTimeout(ResourceError):
    """The wall-clock deadline expired before evaluation finished."""

    def __init__(self, deadline_seconds: float, elapsed: float):
        super().__init__(
            f"query exceeded its {deadline_seconds:g}s deadline "
            f"(elapsed {elapsed:.3f}s)"
        )
        self.deadline_seconds = deadline_seconds
        self.elapsed = elapsed


class RowBudgetExceeded(ResourceError):
    """Evaluation consumed more rows than ``max_rows_examined`` allows."""

    def __init__(self, budget: int, examined: int):
        super().__init__(
            f"query examined {examined} rows, exceeding its budget of {budget}"
        )
        self.budget = budget
        self.examined = examined


@dataclass(frozen=True)
class ResourceLimits:
    """Caps on one execution.  ``None`` disables the corresponding cap.

    ``deadline_seconds``
        Wall-clock budget per run.  Re-armed on every
        :meth:`PreparedQuery.run`, so a prepared statement gets a fresh
        deadline each execution.  Expiry raises :class:`QueryTimeout`.
    ``max_rows_examined``
        Hard cap on ``rows_examined + probe_build_rows``.  Exceeding it
        raises :class:`RowBudgetExceeded`.
    ``max_probe_build_rows``
        Soft cap on the rows any *single* decorrelated probe-table build
        may consume.  Exceeding it abandons decorrelation for that
        subquery (falling back to memoized probing, results unchanged)
        and bumps ``ExecContext.degradations`` instead of raising.
    ``max_probe_table_bytes``
        Soft cap on the *cumulative* approximate memory of the probe and
        equi-join hash tables one execution context holds (tracked on
        ``ExecContext.table_bytes`` via
        :class:`~repro.engine.stats.TableBytesMeter`).  A build that
        would cross the cap degrades gracefully — probe tables fall back
        to memoized probing, equi-join indexes to linear probing of the
        filtered rows — with identical results, counted in
        ``ExecContext.degradations``.
    """

    deadline_seconds: Optional[float] = None
    max_rows_examined: Optional[int] = None
    max_probe_build_rows: Optional[int] = None
    max_probe_table_bytes: Optional[int] = None

    def __post_init__(self):
        for name in (
            "deadline_seconds",
            "max_rows_examined",
            "max_probe_build_rows",
            "max_probe_table_bytes",
        ):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be non-negative, got {value!r}")

    @property
    def unlimited(self) -> bool:
        return (
            self.deadline_seconds is None
            and self.max_rows_examined is None
            and self.max_probe_build_rows is None
            and self.max_probe_table_bytes is None
        )


#: How many ``check()`` calls elapse between wall-clock reads.  Row
#: budgets are exact (an integer compare per call is cheap); the clock
#: is only consulted every interval, so a deadline can overshoot by at
#: most the time it takes to examine this many rows.
CHECK_INTERVAL = 64


class LimitGovernor:
    """Amortised enforcement of one :class:`ResourceLimits` bundle.

    The engine calls :meth:`check` once per row produced by a scan or
    join step.  The row-budget comparison runs every call; the clock is
    read on the first call after :meth:`arm` and every
    :data:`CHECK_INTERVAL` calls thereafter, keeping the common case to
    two attribute loads and an integer compare.
    """

    __slots__ = ("limits", "_started", "_deadline", "_ticks")

    def __init__(self, limits: ResourceLimits):
        self.limits = limits
        self.arm()

    def arm(self) -> None:
        """(Re-)start the wall clock; called at the top of each run."""
        self._started = time.monotonic()
        deadline = self.limits.deadline_seconds
        self._deadline = None if deadline is None else self._started + deadline
        self._ticks = CHECK_INTERVAL  # first check() reads the clock

    def check(self, rows_consumed: int) -> None:
        budget = self.limits.max_rows_examined
        if budget is not None and rows_consumed > budget:
            raise RowBudgetExceeded(budget, rows_consumed)
        if self._deadline is None:
            return
        self._ticks += 1
        if self._ticks < CHECK_INTERVAL:
            return
        self._ticks = 0
        now = time.monotonic()
        if now > self._deadline:
            raise QueryTimeout(self.limits.deadline_seconds, now - self._started)
