"""Resource governance: deadlines, row budgets, graceful degradation.

Certain-answer computation is coNP-hard in data complexity (Section 2),
so both the brute-force ground truth and the rewritten ``Q+`` queries
can blow up without warning.  A production engine never runs a query
without a deadline; this module supplies the vocabulary:

* :class:`ResourceLimits` — an immutable bundle of caps a caller may
  attach to an execution (``limits=`` on :class:`~repro.engine.Executor`,
  :func:`~repro.engine.execute_sql`, …);
* a structured exception hierarchy rooted at :class:`ResourceError`
  (itself an :class:`~repro.engine.scope.EngineError`, so existing
  blanket handlers keep working): :class:`QueryTimeout` for wall-clock
  deadlines, :class:`RowBudgetExceeded` for row budgets and
  :class:`QueryCancelled` for cooperative cancellation;
* :class:`CancelToken` — a one-shot flag another thread may fire to
  abort an in-flight execution (or brute-force certain-answer search)
  at its next governed checkpoint;
* :class:`LimitGovernor` — the amortised run-time checker carried by
  ``ExecContext`` and consulted from the engine's row-iteration and
  hash/probe-build loops.

``max_probe_build_rows`` is different from the two hard caps: tripping
it does not raise.  The engine *degrades* instead — it abandons hash
decorrelation for the offending subquery and falls back to memoized
probing, which bit-matches the naive path (counted in
``ExecContext.degradations``).  That is the paper-adjacent "anytime"
stance: when an optimisation's up-front cost is out of budget, a slower
sound strategy beats an error.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.engine.scope import EngineError

__all__ = [
    "ResourceLimits",
    "ResourceError",
    "QueryTimeout",
    "RowBudgetExceeded",
    "QueryCancelled",
    "CancelToken",
    "LimitGovernor",
]


class CancelToken:
    """A one-shot cooperative cancellation flag, safe to fire cross-thread.

    The worker attaches the token (``ResourceLimits(cancel=token)`` for
    the engine, ``cancel=token`` on
    :func:`~repro.certain.certain_answers_with_nulls` or
    :func:`~repro.experiments.runner.run_tasks`); any other thread may
    call :meth:`cancel` at any time.  Reading the flag is a plain
    attribute load (atomic under the GIL), so the governed hot paths can
    consult it at the same amortised cadence as the wall clock.  Tokens
    never re-arm: once fired, every execution holding the token stops at
    its next checkpoint, including future runs of a prepared statement —
    use a fresh token per logical job.
    """

    __slots__ = ("_cancelled", "reason")

    def __init__(self) -> None:
        self._cancelled = False
        self.reason: Optional[str] = None

    def cancel(self, reason: Optional[str] = None) -> None:
        """Fire the token (idempotent; the first reason wins)."""
        if not self._cancelled:
            self.reason = reason
            self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def raise_if_cancelled(self) -> None:
        if self._cancelled:
            raise QueryCancelled(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"fired, reason={self.reason!r}" if self._cancelled else "armed"
        return f"CancelToken({state})"


class ResourceError(EngineError):
    """A query exceeded one of its :class:`ResourceLimits`."""


class QueryTimeout(ResourceError):
    """The wall-clock deadline expired before evaluation finished."""

    def __init__(self, deadline_seconds: float, elapsed: float):
        super().__init__(
            f"query exceeded its {deadline_seconds:g}s deadline "
            f"(elapsed {elapsed:.3f}s)"
        )
        self.deadline_seconds = deadline_seconds
        self.elapsed = elapsed


class RowBudgetExceeded(ResourceError):
    """Evaluation consumed more rows than ``max_rows_examined`` allows."""

    def __init__(self, budget: int, examined: int):
        super().__init__(
            f"query examined {examined} rows, exceeding its budget of {budget}"
        )
        self.budget = budget
        self.examined = examined


class QueryCancelled(ResourceError):
    """A :class:`CancelToken` fired while evaluation was in flight."""

    def __init__(self, token: "CancelToken"):
        detail = f": {token.reason}" if token.reason else ""
        super().__init__(f"query cancelled by CancelToken{detail}")
        self.token = token


@dataclass(frozen=True)
class ResourceLimits:
    """Caps on one execution.  ``None`` disables the corresponding cap.

    ``deadline_seconds``
        Wall-clock budget per run.  Re-armed on every
        :meth:`PreparedQuery.run`, so a prepared statement gets a fresh
        deadline each execution.  Expiry raises :class:`QueryTimeout`.
    ``max_rows_examined``
        Hard cap on ``rows_examined + probe_build_rows``.  Exceeding it
        raises :class:`RowBudgetExceeded`.
    ``max_probe_build_rows``
        Soft cap on the rows any *single* decorrelated probe-table build
        may consume.  Exceeding it abandons decorrelation for that
        subquery (falling back to memoized probing, results unchanged)
        and bumps ``ExecContext.degradations`` instead of raising.
    ``max_probe_table_bytes``
        Soft cap on the *cumulative* approximate memory of the probe and
        equi-join hash tables one execution context holds (tracked on
        ``ExecContext.table_bytes`` via
        :class:`~repro.engine.stats.TableBytesMeter`).  A build that
        would cross the cap degrades gracefully — probe tables fall back
        to memoized probing, equi-join indexes to linear probing of the
        filtered rows — with identical results, counted in
        ``ExecContext.degradations``.
    ``cancel``
        A :class:`CancelToken` another thread may fire; the next
        governed checkpoint after firing raises
        :class:`QueryCancelled`.  Unlike the deadline, the token is
        *not* re-armed per run — a fired token also stops later runs of
        the same prepared statement.
    """

    deadline_seconds: Optional[float] = None
    max_rows_examined: Optional[int] = None
    max_probe_build_rows: Optional[int] = None
    max_probe_table_bytes: Optional[int] = None
    cancel: Optional[CancelToken] = None

    def __post_init__(self):
        for name in (
            "deadline_seconds",
            "max_rows_examined",
            "max_probe_build_rows",
            "max_probe_table_bytes",
        ):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be non-negative, got {value!r}")

    @property
    def unlimited(self) -> bool:
        return (
            self.deadline_seconds is None
            and self.max_rows_examined is None
            and self.max_probe_build_rows is None
            and self.max_probe_table_bytes is None
            and self.cancel is None
        )


#: How many ``check()`` calls elapse between wall-clock reads.  Row
#: budgets are exact (an integer compare per call is cheap); the clock
#: is only consulted every interval, so a deadline can overshoot by at
#: most the time it takes to examine this many rows.
CHECK_INTERVAL = 64


class LimitGovernor:
    """Amortised enforcement of one :class:`ResourceLimits` bundle.

    The engine calls :meth:`check` once per row produced by a scan or
    join step.  The row-budget comparison runs every call; the clock and
    the cancellation token are read on the first call after :meth:`arm`
    and every :data:`CHECK_INTERVAL` calls thereafter, keeping the
    common case to two attribute loads and an integer compare.  A fired
    :class:`CancelToken` therefore stops evaluation within one check
    interval (at most the time it takes to examine 64 rows).
    """

    __slots__ = ("limits", "_started", "_deadline", "_cancel", "_ticks")

    def __init__(self, limits: ResourceLimits):
        self.limits = limits
        self._cancel = limits.cancel
        self.arm()

    def arm(self) -> None:
        """(Re-)start the wall clock; called at the top of each run.

        The cancellation token is deliberately *not* reset — a token
        fired between runs stops the next run at its first check.
        """
        self._started = time.monotonic()
        deadline = self.limits.deadline_seconds
        self._deadline = None if deadline is None else self._started + deadline
        self._ticks = CHECK_INTERVAL  # first check() reads clock + token

    def check(self, rows_consumed: int) -> None:
        budget = self.limits.max_rows_examined
        if budget is not None and rows_consumed > budget:
            raise RowBudgetExceeded(budget, rows_consumed)
        if self._deadline is None and self._cancel is None:
            return
        self._ticks += 1
        if self._ticks < CHECK_INTERVAL:
            return
        self._ticks = 0
        cancel = self._cancel
        if cancel is not None and cancel.cancelled:
            raise QueryCancelled(cancel)
        if self._deadline is not None:
            now = time.monotonic()
            if now > self._deadline:
                raise QueryTimeout(
                    self.limits.deadline_seconds, now - self._started
                )
