"""Compile-time name resolution for the engine.

Unlike the rewriter's :class:`repro.sql.nullability.Scope` (which
resolves against a schema), the engine resolves against the actual
relations present in the database and the materialised CTEs, so it
works on schemaless ad-hoc databases too.  Resolutions carry the scope
object they landed in, which is how correlated subqueries know which
ancestor block must supply each outer value at run time.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.sql import ast

__all__ = ["CompileScope", "Resolution", "EngineError"]


class EngineError(ValueError):
    """Execution-time or compile-time engine failure."""


class Resolution:
    """Outcome of resolving a column reference."""

    __slots__ = ("depth", "binding", "column", "scope")

    def __init__(self, depth: int, binding: str, column: str, scope: "CompileScope"):
        self.depth = depth
        self.binding = binding
        self.column = column
        self.scope = scope

    @property
    def key(self) -> Tuple[str, str]:
        return (self.binding, self.column)

    def __repr__(self) -> str:
        return f"{self.binding}.{self.column}@{self.depth}"


class CompileScope:
    """binding → columns for one block, chained to the enclosing block."""

    def __init__(
        self,
        bindings: Dict[str, Tuple[str, ...]],
        parent: Optional["CompileScope"] = None,
    ):
        self.bindings = bindings
        self.parent = parent

    def resolve(self, column: ast.ColumnRef) -> Resolution:
        scope: Optional[CompileScope] = self
        depth = 0
        while scope is not None:
            found = scope._resolve_local(column)
            if found is not None:
                binding, col = found
                return Resolution(depth, binding, col, scope)
            scope = scope.parent
            depth += 1
        raise EngineError(f"cannot resolve column {column.display!r}")

    def _resolve_local(self, column: ast.ColumnRef) -> Optional[Tuple[str, str]]:
        if column.qualifier is not None:
            if column.qualifier in self.bindings:
                if column.name not in self.bindings[column.qualifier]:
                    raise EngineError(
                        f"no column {column.name!r} under binding {column.qualifier!r}"
                    )
                return (column.qualifier, column.name)
            return None
        owners = [
            binding for binding, cols in self.bindings.items() if column.name in cols
        ]
        if len(owners) > 1:
            raise EngineError(f"ambiguous column {column.name!r}")
        if owners:
            return (owners[0], column.name)
        return None
