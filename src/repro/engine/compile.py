"""Closure compilation: lowering evaluator trees to specialized closures.

The interpreted engine walks ``_Cond``/``_Expr`` object trees with a
virtual ``eval(cursor, env)`` call per node per row.  This module
lowers those trees, at prepare time, into plain Python closures:

* **operator specialization** — each comparison operator gets its own
  closure body, ``LIKE`` patterns against constants are compiled to a
  regex once, and boolean connectives unroll their 3VL short-circuit
  loops;
* **constant folding** — condition subtrees over constants collapse to
  a precomputed truth value at compile time;
* **null-check hoisting** — when the caller proves an operand non-null
  (data-driven: the filtered column vector contains no nulls, see
  :class:`repro.engine.stats.SourceStats`), the per-row ``is_null``
  test disappears from the closure;
* **columnar batch filters** — pushed single-table filters become
  batch passes over row-id lists (one tight comprehension per
  conjunct) instead of per-row tree walks.

Stateful predicates (subqueries) keep their interpreted entry points —
their cost is amortised by decorrelation/memoization, not dispatch —
except that ``EXISTS`` gains a slot-specialized hash-probe fast path
(``_Exists.fast_eval``).

The interpreted path remains fully supported: set the
``REPRO_NO_COMPILE`` environment variable (or pass
``compile_predicates=False`` to the executor) to fall back, which is
also how the differential tests and the ``BENCH_compile`` benchmark
obtain their baseline.
"""

from __future__ import annotations

import os
from typing import Callable, FrozenSet, List, Optional, Sequence, Tuple

from repro.algebra.conditions import _like_regex, like_match
from repro.algebra.threevl import FALSE, TRUE, UNKNOWN
from repro.data.nulls import Null
from repro.engine import blocks as B

__all__ = [
    "NO_COMPILE_ENV",
    "compile_enabled",
    "compile_expr",
    "compile_cond",
    "build_batch_passes",
]

#: Environment escape hatch: any non-empty value disables compilation.
NO_COMPILE_ENV = "REPRO_NO_COMPILE"

Key = Tuple[str, str]
NonNull = FrozenSet[Key]
_EMPTY_NONNULL: NonNull = frozenset()
_EMPTY_ENV: dict = {}


def compile_enabled() -> bool:
    """Default compilation mode (read once per ``ExecContext``)."""
    return not os.environ.get(NO_COMPILE_ENV)


def _proved_nonnull(expr: "B._Expr", nonnull: NonNull) -> bool:
    if isinstance(expr, B._Const):
        return not isinstance(expr.value, Null)
    if isinstance(expr, B._Col):
        return expr.depth == 0 and expr.key in nonnull
    return False


# ---------------------------------------------------------------------------
# Scalar expressions
# ---------------------------------------------------------------------------


def compile_expr(expr: "B._Expr", nonnull: NonNull = _EMPTY_NONNULL) -> Callable:
    if isinstance(expr, B._Const):
        value = expr.value

        def const(cursor, env, _v=value):
            return _v

        return const
    if isinstance(expr, B._Col):
        key = expr.key
        if expr.depth == 0:

            def local(cursor, env, _k=key):
                slotmap, row = cursor
                return row[slotmap[_k]]

            return local

        def outer(cursor, env, _k=key):
            return env[_k]

        return outer
    if isinstance(expr, B._Concat):
        parts = tuple(compile_expr(p, nonnull) for p in expr.parts)

        def concat(cursor, env):
            pieces = []
            for part in parts:
                value = part(cursor, env)
                if isinstance(value, Null):
                    return value
                pieces.append(str(value))
            return "".join(pieces)

        return concat
    # _ScalarSubquery and anything else stateful keeps its own eval.
    return expr.eval


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------


def _const_result(value) -> Callable:
    def const_cond(cursor, env, _v=value):
        return _v

    return const_cond


def _compile_cmp(cond: "B._Cmp", nonnull: NonNull) -> Callable:
    op = cond.op
    if isinstance(cond.left, B._Const) and isinstance(cond.right, B._Const):
        return _const_result(
            B._compare(op, cond.left.value, cond.right.value, cond.marked)
        )
    left = compile_expr(cond.left, nonnull)
    right = compile_expr(cond.right, nonnull)
    if cond.marked:
        # Marked-null equality is label-sensitive; keep the shared
        # comparison kernel and only strip the dispatch layer.
        compare = B._compare

        def marked_cmp(cursor, env):
            return compare(op, left(cursor, env), right(cursor, env), True)

        return marked_cmp
    hoist = _proved_nonnull(cond.left, nonnull) and _proved_nonnull(
        cond.right, nonnull
    )
    if op == "=":
        if hoist:

            def eq_nn(cursor, env):
                return TRUE if left(cursor, env) == right(cursor, env) else FALSE

            return eq_nn

        def eq(cursor, env):
            a = left(cursor, env)
            b = right(cursor, env)
            if isinstance(a, Null) or isinstance(b, Null):
                return UNKNOWN
            return TRUE if a == b else FALSE

        return eq
    if op == "<>":
        if hoist:

            def ne_nn(cursor, env):
                return TRUE if left(cursor, env) != right(cursor, env) else FALSE

            return ne_nn

        def ne(cursor, env):
            a = left(cursor, env)
            b = right(cursor, env)
            if isinstance(a, Null) or isinstance(b, Null):
                return UNKNOWN
            return TRUE if a != b else FALSE

        return ne
    if op in ("like", "not like"):
        want = op == "like"
        if isinstance(cond.right, B._Const) and not isinstance(cond.right.value, Null):
            regex = _like_regex(cond.right.value)

            def like_const(cursor, env):
                a = left(cursor, env)
                if isinstance(a, Null):
                    return UNKNOWN
                hit = regex.match(str(a)) is not None
                return TRUE if hit == want else FALSE

            return like_const

        def like_dyn(cursor, env):
            a = left(cursor, env)
            b = right(cursor, env)
            if isinstance(a, Null) or isinstance(b, Null):
                return UNKNOWN
            return TRUE if like_match(a, b) == want else FALSE

        return like_dyn

    import operator as _operator

    cmp_fn = {
        "<": _operator.lt,
        "<=": _operator.le,
        ">": _operator.gt,
        ">=": _operator.ge,
    }[op]
    if hoist:

        def ord_nn(cursor, env):
            return TRUE if cmp_fn(left(cursor, env), right(cursor, env)) else FALSE

        return ord_nn

    def ord_(cursor, env):
        a = left(cursor, env)
        b = right(cursor, env)
        if isinstance(a, Null) or isinstance(b, Null):
            return UNKNOWN
        return TRUE if cmp_fn(a, b) else FALSE

    return ord_


def _compile_bool(cond: "B._Bool", nonnull: NonNull) -> Callable:
    fns: List[Callable] = []
    is_and = cond.op == "and"
    for item in cond.items:
        compiled = compile_cond(item, nonnull)
        if isinstance(item, B._BoolConst):
            # Constant folding: absorbing constants decide the result,
            # identity constants vanish.
            value = item.value
            if is_and and value is FALSE:
                return _const_result(FALSE)
            if not is_and and value is TRUE:
                return _const_result(TRUE)
            continue
        fns.append(compiled)
    if not fns:
        return _const_result(TRUE if is_and else FALSE)
    if len(fns) == 1:
        return fns[0]
    fns_t = tuple(fns)
    if is_and:

        def conj(cursor, env):
            result = TRUE
            for fn in fns_t:
                value = fn(cursor, env)
                if value is FALSE:
                    return FALSE
                if value is UNKNOWN:
                    result = UNKNOWN
            return result

        return conj

    def disj(cursor, env):
        result = FALSE
        for fn in fns_t:
            value = fn(cursor, env)
            if value is TRUE:
                return TRUE
            if value is UNKNOWN:
                result = UNKNOWN
        return result

    return disj


def compile_cond(cond: "B._Cond", nonnull: NonNull = _EMPTY_NONNULL) -> Callable:
    if isinstance(cond, B._BoolConst):
        return _const_result(cond.value)
    if isinstance(cond, B._Cmp):
        return _compile_cmp(cond, nonnull)
    if isinstance(cond, B._IsNull):
        expr_fn = compile_expr(cond.expr, nonnull)
        if _proved_nonnull(cond.expr, nonnull):
            return _const_result(TRUE if cond.negated else FALSE)
        if cond.negated:

            def notnull(cursor, env):
                return FALSE if isinstance(expr_fn(cursor, env), Null) else TRUE

            return notnull

        def isnull(cursor, env):
            return TRUE if isinstance(expr_fn(cursor, env), Null) else FALSE

        return isnull
    if isinstance(cond, B._Bool):
        return _compile_bool(cond, nonnull)
    if isinstance(cond, B._Not):
        inner = compile_cond(cond.item, nonnull)

        def negate(cursor, env):
            value = inner(cursor, env)
            if value is TRUE:
                return FALSE
            if value is FALSE:
                return TRUE
            return UNKNOWN

        return negate
    if isinstance(cond, B._InValues):
        expr_fn = compile_expr(cond.expr, nonnull)
        membership = cond._membership_fast
        if cond.negated:

            def notin(cursor, env):
                value = membership(expr_fn(cursor, env), cursor, env)
                if value is TRUE:
                    return FALSE
                if value is FALSE:
                    return TRUE
                return UNKNOWN

            return notin

        def in_(cursor, env):
            return membership(expr_fn(cursor, env), cursor, env)

        return in_
    if isinstance(cond, B._Exists):
        return cond.fast_eval
    # _InSubquery and anything unknown: interpreted entry point.
    return cond.eval


# ---------------------------------------------------------------------------
# Columnar batch filters
# ---------------------------------------------------------------------------


def _unary_pred(cond: "B._Cond", source: "B._Source") -> Optional[Tuple[int, Callable]]:
    """``(column position, value → keep?)`` for single-column filters.

    Returns ``None`` when *cond* does not specialize; the boolean
    predicate answers "does the condition evaluate to TRUE on a row
    whose column holds this value".
    """
    binding = source.binding
    if isinstance(cond, B._IsNull) and isinstance(cond.expr, B._Col):
        if cond.expr.depth != 0 or cond.expr.key[0] != binding:
            return None
        position = source.columns.index(cond.expr.key[1])
        if cond.negated:
            return position, lambda v: not isinstance(v, Null)
        return position, lambda v: isinstance(v, Null)
    if isinstance(cond, B._Cmp):
        col, const = cond.left, cond.right
        flipped = False
        if not isinstance(col, B._Col):
            col, const, flipped = cond.right, cond.left, True
        if not isinstance(col, B._Col) or not isinstance(const, B._Const):
            return None
        if col.depth != 0 or col.key[0] != binding:
            return None
        position = source.columns.index(col.key[1])
        c = const.value
        op = cond.op
        if flipped:
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
            if cond.op in ("like", "not like"):
                # column used as the pattern — no precompiled regex
                return None
        if isinstance(c, Null):
            if cond.marked and op == "=":
                return position, lambda v: v == c  # same-label marked null
            return position, lambda v: False  # never TRUE against a null
        if op == "=":
            return position, lambda v: v == c
        if op == "<>":
            return position, lambda v: not isinstance(v, Null) and v != c
        if op == "like" or op == "not like":
            regex = _like_regex(c)
            want = op == "like"
            return position, (
                lambda v: not isinstance(v, Null)
                and (regex.match(str(v)) is not None) == want
            )
        import operator as _operator

        cmp_fn = {
            "<": _operator.lt,
            "<=": _operator.le,
            ">": _operator.gt,
            ">=": _operator.ge,
        }[op]
        return position, lambda v: not isinstance(v, Null) and cmp_fn(v, c)
    if isinstance(cond, B._InValues) and not cond._residual:
        expr = cond.expr
        if not isinstance(expr, B._Col) or expr.depth != 0 or expr.key[0] != binding:
            return None
        position = source.columns.index(expr.key[1])
        const_set = cond._const_set
        has_null = cond._has_null_const
        marked = cond.marked
        if not cond.negated:
            if marked:
                return position, lambda v: v in const_set
            return position, lambda v: not isinstance(v, Null) and v in const_set
        # NOT IN is TRUE only when membership is definitely FALSE.
        if not const_set and not has_null:
            return position, lambda v: True  # empty IN list is FALSE
        if has_null:
            return position, lambda v: False  # a null candidate forces UNKNOWN
        return position, lambda v: not isinstance(v, Null) and v not in const_set
    return None


def _binary_pred(
    cond: "B._Cond", source: "B._Source"
) -> Optional[Tuple[int, int, Callable]]:
    """``(pos, pos, raw comparator)`` for local column-column filters.

    Covers comparisons between two columns of the *same* source (e.g.
    ``l_receiptdate > l_commitdate``): the batch pass reads both cells
    and applies the C-level operator directly, with the 3VL null guards
    inlined at the call site.  Marked-null equality stays on the generic
    path (same-label nulls compare TRUE there, which the plain operator
    plus null guard would get wrong).
    """
    if not isinstance(cond, B._Cmp):
        return None
    left, right = cond.left, cond.right
    if not (isinstance(left, B._Col) and isinstance(right, B._Col)):
        return None
    binding = source.binding
    if left.depth != 0 or right.depth != 0:
        return None
    if left.key[0] != binding or right.key[0] != binding:
        return None
    op = cond.op
    if op in ("like", "not like"):
        return None
    if cond.marked and op in ("=", "<>"):
        return None
    import operator as _operator

    cmp_fn = {
        "=": _operator.eq,
        "<>": _operator.ne,
        "<": _operator.lt,
        "<=": _operator.le,
        ">": _operator.gt,
        ">=": _operator.ge,
    }[op]
    p1 = source.columns.index(left.key[1])
    p2 = source.columns.index(right.key[1])
    return p1, p2, cmp_fn


def build_batch_passes(
    source: "B._Source", conds: Sequence["B._Cond"]
) -> List[Callable]:
    """Compile pushed filters into ``(rows, ids) → ids`` batch passes.

    Each pass scans one column (or, for the generic fallback, builds a
    cursor per surviving row) and returns the surviving row ids, so a
    chain of passes touches only rows that survived every earlier
    conjunct.
    """
    passes: List[Callable] = []
    slotmap = {(source.binding, col): i for i, col in enumerate(source.columns)}
    for cond in conds:
        unary = _unary_pred(cond, source)
        if unary is not None:
            position, keep = unary

            def unary_pass(rows, ids, _p=position, _keep=keep):
                return [i for i in ids if _keep(rows[i][_p])]

            passes.append(unary_pass)
            continue
        binary = _binary_pred(cond, source)
        if binary is not None:
            p1, p2, cmp_fn = binary

            def binary_pass(rows, ids, _p1=p1, _p2=p2, _cmp=cmp_fn):
                return [
                    i
                    for i in ids
                    if not isinstance((a := rows[i][_p1]), Null)
                    and not isinstance((b := rows[i][_p2]), Null)
                    and _cmp(a, b)
                ]

            passes.append(binary_pass)
            continue
        if isinstance(cond, B._Bool) and cond.op == "or":
            unaries = [_unary_pred(item, source) for item in cond.items]
            if all(u is not None for u in unaries) and len(unaries) == 2:
                (p1, k1), (p2, k2) = unaries  # type: ignore[misc]

                def or_pass(rows, ids, _p1=p1, _k1=k1, _p2=p2, _k2=k2):
                    return [
                        i
                        for i in ids
                        if _k1(rows[i][_p1]) or _k2(rows[i][_p2])
                    ]

                passes.append(or_pass)
                continue
        fn = compile_cond(cond)

        def generic_pass(rows, ids, _fn=fn, _slotmap=slotmap):
            return [i for i in ids if _fn((_slotmap, rows[i]), _EMPTY_ENV) is TRUE]

        passes.append(generic_pass)
    return passes
