"""Cardinality statistics and the selectivity-driven join-order model.

The block engine plans greedily: it repeatedly appends the table whose
join step is estimated to produce the fewest rows.  Before this module
the only signal was raw base-table size; now each candidate is scored
from its *filtered* cardinality (pushed single-table filters have
already run as columnar batch passes by the time ordering happens) and
the number-of-distinct-values (NDV) of its equality keys, using the
textbook independent-uniform estimate

    |R ⋈_k S|  ≈  |R| · |S| / max-NDV over the key columns.

Everything here is deliberately cheap: NDV is estimated from an evenly
spaced sample (``SAMPLE_CAP`` rows) and scaled linearly, which is crude
but monotone enough for greedy ordering, and the per-column scans also
yield null counts that feed the closure compiler's null-check hoisting
(:mod:`repro.engine.compile`).

The module also hosts the approximate byte accounting used by
``ResourceLimits.max_probe_table_bytes``: probe/equi hash tables report
an estimated footprint while they are being built so an over-budget
build can degrade gracefully instead of exhausting memory.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.nulls import Null

__all__ = [
    "SourceStats",
    "choose_join_order",
    "estimate_ndv",
    "TableBytesMeter",
]

Row = Tuple[object, ...]

#: Rows sampled (evenly spaced) for NDV estimation.
SAMPLE_CAP = 4096


def estimate_ndv(rows: Sequence[Row], position: int) -> int:
    """Estimated number of distinct values in one column of *rows*.

    Exact for small inputs; for larger ones the estimate is the sample
    NDV scaled by the sampling ratio, capped at the row count.  Nulls
    count as one value each (they hash by label), which mildly
    *under*-estimates join fanout on null-heavy columns — safe, since
    null keys never match anyway.
    """
    n = len(rows)
    if n == 0:
        return 1
    step = max(1, n // SAMPLE_CAP)
    if step == 1:
        seen = {row[position] for row in rows}
        return max(1, len(seen))
    sample = rows[::step]
    seen = {row[position] for row in sample}
    scaled = int(len(seen) * (n / len(sample)))
    return max(1, min(n, scaled))


class SourceStats:
    """Per-source statistics over the *filtered* rows of one FROM entry.

    Column vectors are extracted lazily and cached — the same vector
    backs NDV estimation, null counting (for null-check hoisting) and
    any columnar consumer that asks.
    """

    __slots__ = ("rows", "_columns", "_ndv", "_has_null")

    def __init__(self, rows: Sequence[Row]):
        self.rows = rows
        self._columns: Dict[int, List[object]] = {}
        self._ndv: Dict[int, int] = {}
        self._has_null: Dict[int, bool] = {}

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, position: int) -> List[object]:
        col = self._columns.get(position)
        if col is None:
            col = [row[position] for row in self.rows]
            self._columns[position] = col
        return col

    def ndv(self, position: int) -> int:
        value = self._ndv.get(position)
        if value is None:
            value = estimate_ndv(self.rows, position)
            self._ndv[position] = value
        return value

    def has_null(self, position: int) -> bool:
        value = self._has_null.get(position)
        if value is None:
            value = any(isinstance(v, Null) for v in self.column(position))
            self._has_null[position] = value
        return value


def choose_join_order(
    stats: Dict[str, SourceStats],
    positions: Dict[str, Dict[str, int]],
    probes: Sequence[Tuple[Tuple[str, str], object]],
    equi: Sequence[Tuple[Tuple[str, str], Tuple[str, str]]],
    env_available: bool,
) -> Tuple[List[str], List[float]]:
    """Greedy left-deep join order minimising estimated step output.

    ``stats`` maps each binding to its filtered-row statistics,
    ``positions`` to its column→index layout.  ``probes`` and ``equi``
    are the block's classified equality conjuncts.  Returns the chosen
    binding order and the per-step estimated cardinalities (rows the
    step yields *before* attached residual conditions).

    Keyed candidates win ties against Cartesian ones, preserving the
    old planner's guarantee that a hash-joinable table is never passed
    over for an equally-sized cross product.
    """
    remaining = set(stats)
    bound: set = set()
    order: List[str] = []
    estimates: List[float] = []
    current = 1.0

    def key_columns(binding: str) -> List[str]:
        cols: List[str] = []
        if env_available:
            for (b, col), _expr in probes:
                if b == binding:
                    cols.append(col)
        for a, b in equi:
            if a[0] == binding and b[0] in bound:
                cols.append(a[1])
            elif b[0] == binding and a[0] in bound:
                cols.append(b[1])
        return cols

    while remaining:
        best: Optional[Tuple[float, int, int, str]] = None
        best_binding = None
        for binding in sorted(remaining):
            size = len(stats[binding])
            cols = key_columns(binding)
            if cols:
                denom = 1.0
                for col in cols:
                    denom *= stats[binding].ndv(positions[binding][col])
                denom = max(1.0, min(float(max(size, 1)), denom))
                est = current * size / denom
                keyed = 0
            else:
                est = current * size
                keyed = 1
            rank = (est, keyed, size, binding)
            if best is None or rank < best:
                best = rank
                best_binding = binding
        assert best is not None and best_binding is not None
        order.append(best_binding)
        estimates.append(best[0])
        current = max(best[0], 0.001)
        bound.add(best_binding)
        remaining.discard(best_binding)
    return order, estimates


# ---------------------------------------------------------------------------
# Approximate hash-table byte accounting
# ---------------------------------------------------------------------------

#: Assumed per-entry overhead beyond the key object itself: a dict/set
#: slot, the value-list header amortised, and pointer padding.
_ENTRY_OVERHEAD = 96

#: How many entries between budget re-checks during a build.
_CHECK_EVERY = 256


class TableBytesMeter:
    """Incremental, approximate footprint of one hash table under build.

    ``sys.getsizeof`` is sampled on the first few keys and the average
    is extrapolated, so the per-entry cost of metering is an integer
    increment.  :meth:`over_budget` answers whether adding this table
    would push the context's cumulative ``table_bytes`` past the cap.
    """

    __slots__ = ("entries", "_sampled", "_sample_total", "_since_check")

    _SAMPLE = 64

    def __init__(self) -> None:
        self.entries = 0
        self._sampled = 0
        self._sample_total = 0
        self._since_check = 0

    def add(self, key: object) -> None:
        self.entries += 1
        if self._sampled < self._SAMPLE:
            self._sampled += 1
            try:
                size = sys.getsizeof(key)
            except TypeError:  # pragma: no cover - exotic keys
                size = 64
            self._sample_total += size

    def approx_bytes(self) -> int:
        if self.entries == 0:
            return 0
        avg_key = self._sample_total / self._sampled if self._sampled else 64
        return int(self.entries * (avg_key + _ENTRY_OVERHEAD))

    def should_check(self) -> bool:
        """Amortise budget checks to every ``_CHECK_EVERY`` insertions."""
        self._since_check += 1
        if self._since_check >= _CHECK_EVERY:
            self._since_check = 0
            return True
        return self.entries <= 1  # always validate the very first entry

    def over_budget(self, used_bytes: int, cap: Optional[int]) -> bool:
        if cap is None:
            return False
        return used_bytes + self.approx_bytes() > cap
