"""A small executable SQL engine — the paper's PostgreSQL stand-in.

The engine executes the supported SQL fragment under standard SQL
three-valued semantics, with the physical behaviours the paper's
performance story depends on:

* hash equi-joins with greedy join ordering — so an ``OR … IS NULL`` on
  a join condition *genuinely* defeats the hash path and falls back to
  nested loops, exactly the Q4 phenomenon of Section 7;
* correlated subqueries probed through hash indexes on their
  correlation columns, with first-match short-circuiting (``EXISTS``);
* uncorrelated subquery predicates evaluated once, before the main
  join, short-circuiting the whole query — the source of ``Q+2``'s
  1000× speed-up;
* ``WITH`` views materialised once per query.

Use :func:`execute_sql` for text or parsed queries, and
:func:`explain_sql` for the cost-annotated plan (the "astronomical
estimates" of Section 7 are visible there for the unsplit ``Q+4``).
"""

from repro.engine.compile import NO_COMPILE_ENV, compile_enabled
from repro.engine.executor import (
    Executor,
    PreparedQuery,
    clear_plan_cache,
    execute_query,
    execute_sql,
    plan_cache_stats,
)
from repro.engine.explain import explain_sql
from repro.engine.limits import (
    CancelToken,
    QueryCancelled,
    QueryTimeout,
    ResourceError,
    ResourceLimits,
    RowBudgetExceeded,
)

__all__ = [
    "execute_sql",
    "execute_query",
    "Executor",
    "PreparedQuery",
    "explain_sql",
    "plan_cache_stats",
    "clear_plan_cache",
    "ResourceLimits",
    "ResourceError",
    "QueryTimeout",
    "RowBudgetExceeded",
    "QueryCancelled",
    "CancelToken",
    "NO_COMPILE_ENV",
    "compile_enabled",
]
