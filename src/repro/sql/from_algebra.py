"""Compile relational algebra into executable SQL (the paper's path).

Section 7: *"we shall take SQL queries Q1–Q4, apply the translation
Q → Q+ to their relational algebra equivalents, and then run the
results of the translation as SQL queries."*  This module provides that
last leg: any algebra expression — including the outputs of the
Figure 2 and Figure 3 translations — becomes a ``WITH``-chain of SQL
views, one per operator, ending in a ``SELECT`` over the last view.

Operator mapping:

=====================  ====================================================
σ, π, ρ                ``SELECT … FROM prev WHERE …``
×, ⋈                   two views in one ``FROM`` (equality/θ in ``WHERE``)
∪, ∩, −                ``UNION`` / ``INTERSECT`` / ``EXCEPT``
⋉θ / ▷θ                ``[NOT] EXISTS`` correlated subquery
⋉⇑ / ▷⇑                ``[NOT] EXISTS`` with per-column weakened equality
                       ``l.c = r.c OR l.c IS NULL OR r.c IS NULL``
÷                      double ``NOT EXISTS`` (the classical encoding)
adomᵏ                  ``adom`` view (union of all columns of all
                       relations), self-joined k times
=====================  ====================================================

Column names are canonicalised to ``c0 … cn`` per view, so arbitrary
algebra attribute names (``l1.l_suppkey``) never leak into SQL
identifiers.

Semantics note: the unification semijoins compile to the *position-wise*
(Codd) test — exact for non-repeating nulls, a sound approximation for
marked nulls (Corollary 1).  That is precisely the SQL-adjusted reading
the paper executes on PostgreSQL.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.algebra import conditions as AC
from repro.algebra.expr import (
    AdomPower,
    AntiJoin,
    Difference,
    Division,
    Expr,
    Intersection,
    Join,
    Literal,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    SemiJoin,
    Union,
    UnifAntiJoin,
    UnifSemiJoin,
)
from repro.algebra.infer import attribute_lookup, output_attributes
from repro.sql import ast

__all__ = ["algebra_to_sql", "AlgebraToSqlError"]


class AlgebraToSqlError(ValueError):
    """The expression cannot be compiled to the supported SQL fragment."""


class _Compiler:
    def __init__(self, schema_source):
        self._lookup = (
            schema_source if callable(schema_source) else attribute_lookup(schema_source)
        )
        self.views: List[Tuple[str, ast.Query]] = []
        self._counter = 0
        self._adom_view: Optional[str] = None
        self._relations: Optional[Tuple[str, ...]] = None

    # ------------------------------------------------------------------
    def fresh_view(self, body) -> str:
        name = f"v{self._counter}"
        self._counter += 1
        self.views.append((name, ast.query_of(body)))
        return name

    @staticmethod
    def _select_all(view: str, alias: Optional[str] = None) -> ast.Select:
        return ast.Select(
            columns=(ast.Star(),), tables=(ast.TableRef(view, alias),)
        )

    def _attrs(self, expr: Expr) -> Tuple[str, ...]:
        return output_attributes(expr, self._lookup)

    # ------------------------------------------------------------------
    # Conditions: algebra attribute names → view column references
    # ------------------------------------------------------------------
    def _term(self, term: AC.Term, mapping: Dict[str, ast.ColumnRef]) -> ast.SqlExpr:
        if isinstance(term, AC.Attr):
            try:
                return mapping[term.name]
            except KeyError:
                raise AlgebraToSqlError(
                    f"attribute {term.name!r} not available; have {sorted(mapping)}"
                ) from None
        return ast.Literal(term.value)

    def _condition(self, cond: AC.Condition, mapping: Dict[str, ast.ColumnRef]) -> ast.SqlCond:
        if isinstance(cond, AC.TrueCond):
            return ast.BoolLiteral(True)
        if isinstance(cond, AC.FalseCond):
            return ast.BoolLiteral(False)
        if isinstance(cond, AC.And):
            return ast.BoolOp("and", *[self._condition(c, mapping) for c in cond.items])
        if isinstance(cond, AC.Or):
            return ast.BoolOp("or", *[self._condition(c, mapping) for c in cond.items])
        if isinstance(cond, AC.Not):
            return ast.NotOp(self._condition(cond.item, mapping))
        if isinstance(cond, AC.NullTest):
            return ast.IsNull(self._term(cond.term, mapping), negated=not cond.is_null)
        if isinstance(cond, AC.Comparison):
            return ast.Comparison(
                cond.op, self._term(cond.left, mapping), self._term(cond.right, mapping)
            )
        raise AlgebraToSqlError(f"cannot compile condition {cond!r}")

    @staticmethod
    def _mapping(attrs: Tuple[str, ...], qualifier: Optional[str] = None) -> Dict[str, ast.ColumnRef]:
        return {
            attr: ast.ColumnRef(f"c{i}", qualifier) for i, attr in enumerate(attrs)
        }

    # ------------------------------------------------------------------
    # Expression compilation: returns the view name holding the result,
    # whose columns are c0..cn in the order of the algebra attributes.
    # ------------------------------------------------------------------
    def compile(self, expr: Expr) -> str:
        method = getattr(self, f"_compile_{type(expr).__name__}", None)
        if method is None:
            raise AlgebraToSqlError(f"cannot compile {type(expr).__name__} to SQL")
        return method(expr)

    def _canonical_base(self, name: str, attrs: Tuple[str, ...]) -> ast.Select:
        return ast.Select(
            columns=tuple(
                ast.OutputColumn(ast.ColumnRef(attr), alias=f"c{i}")
                for i, attr in enumerate(attrs)
            ),
            tables=(ast.TableRef(name),),
            distinct=True,
        )

    def _compile_RelationRef(self, expr: RelationRef) -> str:
        attrs = tuple(self._lookup(expr.name))
        return self.fresh_view(self._canonical_base(expr.name, attrs))

    def _compile_Literal(self, expr: Literal) -> str:
        raise AlgebraToSqlError(
            "inline literal relations have no SQL form; materialise them as "
            "database tables first"
        )

    def _compile_Selection(self, expr: Selection) -> str:
        child = self.compile(expr.child)
        mapping = self._mapping(self._attrs(expr.child))
        return self.fresh_view(
            ast.Select(
                columns=(ast.Star(),),
                tables=(ast.TableRef(child),),
                where=self._condition(expr.condition, mapping),
            )
        )

    def _compile_Projection(self, expr: Projection) -> str:
        child = self.compile(expr.child)
        child_attrs = self._attrs(expr.child)
        position = {attr: i for i, attr in enumerate(child_attrs)}
        columns = tuple(
            ast.OutputColumn(ast.ColumnRef(f"c{position[attr]}"), alias=f"c{i}")
            for i, attr in enumerate(expr.attributes)
        )
        return self.fresh_view(
            ast.Select(columns=columns, tables=(ast.TableRef(child),), distinct=True)
        )

    def _compile_Rename(self, expr: Rename) -> str:
        # Canonical columns are positional; renaming is a no-op in SQL.
        return self.compile(expr.child)

    def _binary_from(self, expr) -> Tuple[str, str, Dict[str, ast.ColumnRef], Tuple[ast.OutputColumn, ...]]:
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        left_attrs = self._attrs(expr.left)
        right_attrs = self._attrs(expr.right)
        mapping = self._mapping(left_attrs, "l")
        mapping.update(
            {
                attr: ast.ColumnRef(f"c{i}", "r")
                for i, attr in enumerate(right_attrs)
            }
        )
        columns = tuple(
            ast.OutputColumn(ast.ColumnRef(f"c{i}", "l"), alias=f"c{i}")
            for i in range(len(left_attrs))
        ) + tuple(
            ast.OutputColumn(ast.ColumnRef(f"c{i}", "r"), alias=f"c{len(left_attrs) + i}")
            for i in range(len(right_attrs))
        )
        return left, right, mapping, columns

    def _compile_Product(self, expr: Product) -> str:
        left, right, _mapping, columns = self._binary_from(expr)
        return self.fresh_view(
            ast.Select(
                columns=columns,
                tables=(ast.TableRef(left, "l"), ast.TableRef(right, "r")),
                distinct=True,
            )
        )

    def _compile_Join(self, expr: Join) -> str:
        left, right, mapping, columns = self._binary_from(expr)
        return self.fresh_view(
            ast.Select(
                columns=columns,
                tables=(ast.TableRef(left, "l"), ast.TableRef(right, "r")),
                where=self._condition(expr.condition, mapping),
                distinct=True,
            )
        )

    def _set_op(self, expr, op: str) -> str:
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        return self.fresh_view(
            ast.SetOp(
                op=op,
                left=ast.query_of(self._select_all(left)),
                right=ast.query_of(self._select_all(right)),
            )
        )

    def _compile_Union(self, expr: Union) -> str:
        return self._set_op(expr, "union")

    def _compile_Intersection(self, expr: Intersection) -> str:
        return self._set_op(expr, "intersect")

    def _compile_Difference(self, expr: Difference) -> str:
        return self._set_op(expr, "except")

    def _exists_view(self, expr, inner_where: ast.SqlCond, negated: bool) -> str:
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        sub = ast.Exists(
            ast.Query(
                ast.Select(
                    columns=(ast.Star(),),
                    tables=(ast.TableRef(right, "r"),),
                    where=inner_where,
                )
            ),
            negated=negated,
        )
        return self.fresh_view(
            ast.Select(
                columns=(ast.Star(),),
                tables=(ast.TableRef(left, "l"),),
                where=sub,
            )
        )

    def _theta_semi_where(self, expr) -> ast.SqlCond:
        left_attrs = self._attrs(expr.left)
        right_attrs = self._attrs(expr.right)
        mapping = self._mapping(left_attrs, "l")
        mapping.update(
            {attr: ast.ColumnRef(f"c{i}", "r") for i, attr in enumerate(right_attrs)}
        )
        return self._condition(expr.condition, mapping)

    def _compile_SemiJoin(self, expr: SemiJoin) -> str:
        return self._exists_view(expr, self._theta_semi_where(expr), negated=False)

    def _compile_AntiJoin(self, expr: AntiJoin) -> str:
        return self._exists_view(expr, self._theta_semi_where(expr), negated=True)

    def _unification_where(self, arity: int) -> ast.SqlCond:
        """Position-wise unifiability: per column, equal or either null."""
        conjuncts: List[ast.SqlCond] = []
        for i in range(arity):
            l_col = ast.ColumnRef(f"c{i}", "l")
            r_col = ast.ColumnRef(f"c{i}", "r")
            conjuncts.append(
                ast.BoolOp(
                    "or",
                    ast.Comparison("=", l_col, r_col),
                    ast.IsNull(l_col),
                    ast.IsNull(r_col),
                )
            )
        return conjuncts[0] if len(conjuncts) == 1 else ast.BoolOp("and", *conjuncts)

    def _compile_UnifSemiJoin(self, expr: UnifSemiJoin) -> str:
        arity = len(self._attrs(expr.left))
        return self._exists_view(expr, self._unification_where(arity), negated=False)

    def _compile_UnifAntiJoin(self, expr: UnifAntiJoin) -> str:
        arity = len(self._attrs(expr.left))
        return self._exists_view(expr, self._unification_where(arity), negated=True)

    def _compile_Division(self, expr: Division) -> str:
        """``v1 ÷ v2``: keep-tuples x with no divisor tuple y missing a
        witness (x, y) in v1 — the classical double NOT EXISTS."""
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        left_attrs = self._attrs(expr.left)
        right_attrs = self._attrs(expr.right)
        keep = [a for a in left_attrs if a not in set(right_attrs)]
        position = {attr: i for i, attr in enumerate(left_attrs)}

        witness = ast.Select(
            columns=(ast.Star(),),
            tables=(ast.TableRef(left, "w"),),
            where=ast.BoolOp(
                "and",
                *[
                    ast.Comparison(
                        "=",
                        ast.ColumnRef(f"c{position[attr]}", "w"),
                        ast.ColumnRef(f"c{position[attr]}", "x"),
                    )
                    for attr in keep
                ],
                *[
                    ast.Comparison(
                        "=",
                        ast.ColumnRef(f"c{position[attr]}", "w"),
                        ast.ColumnRef(f"c{i}", "y"),
                    )
                    for i, attr in enumerate(right_attrs)
                ],
            ),
        )
        missing_divisor = ast.Select(
            columns=(ast.Star(),),
            tables=(ast.TableRef(right, "y"),),
            where=ast.Exists(ast.Query(witness), negated=True),
        )
        columns = tuple(
            ast.OutputColumn(ast.ColumnRef(f"c{position[attr]}", "x"), alias=f"c{i}")
            for i, attr in enumerate(keep)
        )
        return self.fresh_view(
            ast.Select(
                columns=columns,
                tables=(ast.TableRef(left, "x"),),
                where=ast.Exists(ast.Query(missing_divisor), negated=True),
                distinct=True,
            )
        )

    # ------------------------------------------------------------------
    # adom^k: a union-of-all-columns view, self-joined k times.
    # ------------------------------------------------------------------
    def set_relations(self, relations: Tuple[str, ...]) -> None:
        self._relations = relations

    def _adom(self) -> str:
        if self._adom_view is not None:
            return self._adom_view
        if not self._relations:
            raise AlgebraToSqlError(
                "adom^k needs the database's relation names; pass a Database "
                "or DatabaseSchema as schema_source"
            )
        branches: List[ast.Query] = []
        for relation in self._relations:
            for attr in self._lookup(relation):
                branches.append(
                    ast.query_of(
                        ast.Select(
                            columns=(ast.OutputColumn(ast.ColumnRef(attr), alias="c0"),),
                            tables=(ast.TableRef(relation),),
                        )
                    )
                )
        body: ast.Query = branches[0]
        for branch in branches[1:]:
            body = ast.query_of(ast.SetOp(op="union", left=body, right=branch))
        self._adom_view = self.fresh_view(body)
        return self._adom_view

    def _compile_AdomPower(self, expr: AdomPower) -> str:
        adom = self._adom()
        k = len(expr.attributes)
        tables = tuple(ast.TableRef(adom, f"a{i}") for i in range(k))
        columns = tuple(
            ast.OutputColumn(ast.ColumnRef("c0", f"a{i}"), alias=f"c{i}")
            for i in range(k)
        )
        return self.fresh_view(
            ast.Select(columns=columns, tables=tables, distinct=True)
        )


def algebra_to_sql(expr: Expr, schema_source) -> ast.Query:
    """Compile an algebra expression into an executable SQL query.

    ``schema_source`` supplies base-relation attribute names (and, for
    ``adom^k``, the list of relations): a
    :class:`~repro.data.database.Database`, a
    :class:`~repro.data.schema.DatabaseSchema` or a dict.  The result's
    output columns are named ``c0 … cn``, positionally matching the
    expression's attributes.
    """
    compiler = _Compiler(schema_source)
    # Remember relation names for adom^k if we were handed a catalogue.
    from repro.data.database import Database
    from repro.data.schema import DatabaseSchema

    if isinstance(schema_source, Database):
        compiler.set_relations(schema_source.relation_names())
    elif isinstance(schema_source, DatabaseSchema):
        compiler.set_relations(schema_source.relation_names())
    elif isinstance(schema_source, dict):
        compiler.set_relations(tuple(schema_source))

    final = compiler.compile(expr)
    return ast.Query(
        body=ast.Select(
            columns=(ast.Star(),), tables=(ast.TableRef(final),), distinct=True
        ),
        ctes=tuple(compiler.views),
    )
