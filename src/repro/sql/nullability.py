"""Name resolution and nullability analysis for the SQL rewriter.

The appendix rewrites of the paper add ``OR x IS NULL`` escapes only for
attributes that can actually be null at that point.  Two sources of
"cannot be null" are used:

1. the schema — key columns and ``NOT NULL`` declarations;
2. the enclosing *positive* context — under SQL's three-valued logic a
   top-level conjunct only selects rows where it is ``TRUE``, and a
   comparison can only be ``TRUE`` on non-null operands.  So in Q1, the
   outer conjunct ``s_suppkey = l1.l_suppkey`` forces ``l1.l_suppkey``
   non-null, which is why the appendix version of ``Q+1`` does *not* add
   ``OR l1.l_suppkey IS NULL`` inside the ``NOT EXISTS``.

This module provides the :class:`Catalog` (schema + ``WITH`` views), the
:class:`Scope` chain (FROM bindings, with parent links for correlation)
and :func:`forced_nonnull` (the positive-context analysis).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.data.schema import DatabaseSchema
from repro.sql import ast

__all__ = ["Catalog", "Scope", "forced_nonnull", "RewriteError", "columns_in_expr"]


class RewriteError(ValueError):
    """The query falls outside the rewritable fragment.

    Besides the message, the error records *where* the query left the
    fragment: ``node`` is the offending AST node (when one was at hand)
    and ``span`` its ``(start, end)`` source offsets — taken from the
    node when not given explicitly.  ``diagnostics`` is filled by
    :func:`repro.sql.rewrite.rewrite_certain` with the static analyzer's
    findings for the same query, so CLI and library callers can report
    locations uniformly (see :mod:`repro.analysis`).
    """

    def __init__(self, message, *, node=None, span=None):
        super().__init__(message)
        self.node = node
        if span is None and node is not None:
            span = getattr(node, "span", None)
        self.span = span
        self.diagnostics = []


class Catalog:
    """Column and nullability lookup over base tables and ``WITH`` views."""

    def __init__(self, schema: DatabaseSchema):
        self.schema = schema
        self._view_columns: Dict[str, Tuple[str, ...]] = {}
        self._view_nullable: Dict[str, Dict[str, bool]] = {}

    # ------------------------------------------------------------------
    def has_table(self, name: str) -> bool:
        return name in self._view_columns or name in self.schema

    def columns_of(self, name: str) -> Tuple[str, ...]:
        if name in self._view_columns:
            return self._view_columns[name]
        if name in self.schema:
            return self.schema[name].attribute_names
        raise RewriteError(f"unknown table {name!r}")

    def is_nullable(self, table: str, column: str) -> bool:
        if table in self._view_nullable:
            return self._view_nullable[table][column]
        return self.schema[table].is_nullable(column)

    # ------------------------------------------------------------------
    def register_view(self, name: str, query: ast.Query) -> None:
        """Derive a view's output columns and their nullability."""
        columns, nullable = self._analyze_view(query)
        self._view_columns[name] = columns
        self._view_nullable[name] = nullable

    def _analyze_view(self, query: ast.Query) -> Tuple[Tuple[str, ...], Dict[str, bool]]:
        body = query.body
        if isinstance(body, ast.SetOp):
            left_cols, left_null = self._analyze_view(body.left)
            _right_cols, right_null = self._analyze_view(body.right)
            merged = {
                col: left_null[col] or right_null.get(col, True) for col in left_cols
            }
            return left_cols, merged
        assert isinstance(body, ast.Select)
        scope = Scope(body.tables, self)
        columns: List[str] = []
        nullable: Dict[str, bool] = {}
        for col in body.columns:
            if isinstance(col, ast.Star):
                for binding, table in scope.bindings.items():
                    for name in self.columns_of(table):
                        columns.append(name)
                        nullable[name] = self.is_nullable(table, name)
                continue
            if isinstance(col.expr, ast.ColumnRef):
                out_name = col.alias or col.expr.name
                resolved = scope.resolve(col.expr)
                columns.append(out_name)
                nullable[out_name] = self.is_nullable(resolved.table, resolved.column)
            else:
                out_name = col.alias or f"column{len(columns) + 1}"
                columns.append(out_name)
                nullable[out_name] = True
        return tuple(columns), nullable


class ResolvedColumn:
    """Where a column reference landed: scope, binding and base table."""

    __slots__ = ("scope", "binding", "table", "column", "depth")

    def __init__(self, scope: "Scope", binding: str, table: str, column: str, depth: int):
        self.scope = scope
        self.binding = binding
        self.table = table
        self.column = column
        self.depth = depth

    @property
    def key(self) -> Tuple[str, str]:
        return (self.binding, self.column)


class Scope:
    """FROM bindings of one SELECT block, chained to the enclosing block."""

    def __init__(
        self,
        tables: Tuple[ast.TableRef, ...],
        catalog: Catalog,
        parent: Optional["Scope"] = None,
    ):
        self.catalog = catalog
        self.parent = parent
        self.bindings: Dict[str, str] = {}
        #: (binding, column) pairs proven non-null by the positive context.
        self.forced_nonnull: Set[Tuple[str, str]] = set()
        for ref in tables:
            if ref.binding in self.bindings:
                raise RewriteError(f"duplicate table binding {ref.binding!r}", node=ref)
            if not catalog.has_table(ref.name):
                raise RewriteError(f"unknown table {ref.name!r}", node=ref)
            self.bindings[ref.binding] = ref.name

    def resolve(self, column: ast.ColumnRef, depth: int = 0) -> ResolvedColumn:
        if column.qualifier is not None:
            if column.qualifier in self.bindings:
                table = self.bindings[column.qualifier]
                if column.name not in self.catalog.columns_of(table):
                    raise RewriteError(
                        f"no column {column.name!r} in table {table!r} "
                        f"(binding {column.qualifier!r})",
                        node=column,
                    )
                return ResolvedColumn(self, column.qualifier, table, column.name, depth)
        else:
            owners = [
                (binding, table)
                for binding, table in self.bindings.items()
                if column.name in self.catalog.columns_of(table)
            ]
            if len(owners) > 1:
                raise RewriteError(f"ambiguous column {column.name!r}", node=column)
            if owners:
                binding, table = owners[0]
                return ResolvedColumn(self, binding, table, column.name, depth)
        if self.parent is not None:
            return self.parent.resolve(column, depth + 1)
        raise RewriteError(f"cannot resolve column {column.display!r}", node=column)

    # ------------------------------------------------------------------
    def is_possibly_null(self, column: ast.ColumnRef) -> bool:
        """May this reference evaluate to NULL at this point in the query?"""
        resolved = self.resolve(column)
        if not resolved.scope.catalog.is_nullable(resolved.table, resolved.column):
            return False
        return resolved.key not in resolved.scope.forced_nonnull


def columns_in_expr(expr: ast.SqlExpr) -> List[ast.ColumnRef]:
    """All column references syntactically inside a scalar expression."""
    if isinstance(expr, ast.ColumnRef):
        return [expr]
    if isinstance(expr, ast.Concat):
        refs: List[ast.ColumnRef] = []
        for part in expr.parts:
            refs.extend(columns_in_expr(part))
        return refs
    if isinstance(expr, ast.Aggregate) and expr.arg is not None:
        return columns_in_expr(expr.arg)
    # Literals, params and scalar subqueries contribute nothing: a scalar
    # subquery is the paper's black-box constant.
    return []


def forced_nonnull(where: Optional[ast.SqlCond], scope: Scope) -> None:
    """Populate ``forced_nonnull`` on *scope* (and enclosing scopes).

    Walks the top-level conjuncts of a *positively evaluated* WHERE
    clause.  A conjunct that must be ``TRUE`` under 3VL forces its
    comparison operands non-null; positive ``EXISTS`` conjuncts force
    the outer columns their own conjuncts compare (the subquery only
    passes if some inner row made those comparisons ``TRUE``).
    """
    if where is None:
        return
    conjuncts = (
        where.items if isinstance(where, ast.BoolOp) and where.op == "and" else (where,)
    )
    for item in conjuncts:
        if isinstance(item, ast.Comparison):
            _force_expr(item.left, scope)
            _force_expr(item.right, scope)
        elif isinstance(item, ast.IsNull) and item.negated:
            _force_expr(item.expr, scope)
        elif isinstance(item, ast.InPredicate) and not item.negated:
            _force_expr(item.expr, scope)
            if item.query is not None:
                _force_subquery(item.query, scope)
        elif isinstance(item, ast.Exists) and not item.negated:
            _force_subquery(item.query, scope)
        # OR blocks, negated predicates and literals force nothing.


def _force_expr(expr: ast.SqlExpr, scope: Scope) -> None:
    for column in columns_in_expr(expr):
        try:
            resolved = scope.resolve(column)
        except RewriteError:
            continue
        resolved.scope.forced_nonnull.add(resolved.key)


def _force_subquery(query: ast.Query, outer: Scope) -> None:
    """Record outer columns forced by a positive subquery's conjuncts."""
    body = query.body
    if not isinstance(body, ast.Select):
        return
    try:
        scope = Scope(body.tables, outer.catalog, parent=outer)
    except RewriteError:
        return
    if body.where is None:
        return
    conjuncts = (
        body.where.items
        if isinstance(body.where, ast.BoolOp) and body.where.op == "and"
        else (body.where,)
    )
    for item in conjuncts:
        if isinstance(item, ast.Comparison):
            for column in columns_in_expr(item.left) + columns_in_expr(item.right):
                try:
                    resolved = scope.resolve(column)
                except RewriteError:
                    continue
                # Only outer references escape the existential: the
                # subquery's own rows are witnesses, not outputs.
                if resolved.depth > 0:
                    resolved.scope.forced_nonnull.add(resolved.key)
        elif isinstance(item, ast.Exists) and not item.negated:
            _force_subquery(item.query, scope)
