"""SQL front-end: parsing, printing, translation to algebra, rewriting.

The supported fragment is the paper's: ``SELECT``-``FROM``-``WHERE``
with (correlated) subqueries under ``[NOT] EXISTS`` / ``[NOT] IN``,
scalar aggregate subqueries treated as black boxes, ``WITH`` views,
``UNION``/``INTERSECT``/``EXCEPT``, comparison operators, ``LIKE``,
``IS [NOT] NULL``, string concatenation and ``$parameters``.
"""

from repro.sql.parser import parse_sql
from repro.sql.printer import to_sql
from repro.sql.rewrite import rewrite_certain, rewrite_possible, RewriteOptions
from repro.sql.to_algebra import sql_to_algebra
from repro.sql.from_algebra import algebra_to_sql

__all__ = [
    "parse_sql",
    "to_sql",
    "rewrite_certain",
    "rewrite_possible",
    "RewriteOptions",
    "sql_to_algebra",
    "algebra_to_sql",
]
