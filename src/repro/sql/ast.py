"""Abstract syntax trees for the SQL fragment of the paper.

Scalar expressions and predicates are separate hierarchies; queries are
``Select`` blocks possibly combined by set operations and prefixed by
``WITH`` views.  All nodes are immutable dataclasses, so rewrites build
new trees (the rewriter relies on structural sharing being safe).

Nodes the parser produces carry an optional ``span`` — ``(start, end)``
character offsets into the source text — excluded from equality and
hashing so rewritten trees still compare equal to hand-built ones.
Trees built programmatically simply leave ``span`` as ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union as TUnion

#: ``(start, end)`` character offsets into the SQL source text.
Span = Tuple[int, int]


def _span_field():
    return field(default=None, compare=False, repr=False)


__all__ = [
    "Span",
    "ColumnRef",
    "Literal",
    "Param",
    "Concat",
    "Aggregate",
    "ScalarSubquery",
    "SqlExpr",
    "Comparison",
    "IsNull",
    "Exists",
    "InPredicate",
    "BoolOp",
    "NotOp",
    "BoolLiteral",
    "SqlCond",
    "OutputColumn",
    "Star",
    "TableRef",
    "Select",
    "SetOp",
    "Query",
    "query_of",
]


# ---------------------------------------------------------------------------
# Scalar expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnRef:
    """``qualifier.name`` or bare ``name`` (resolved against scopes)."""

    name: str
    qualifier: Optional[str] = None
    span: Optional[Span] = _span_field()

    @property
    def display(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name

    def __repr__(self) -> str:
        return self.display


@dataclass(frozen=True)
class Literal:
    value: object

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Param:
    """A ``$name`` placeholder bound at execution time."""

    name: str

    def __repr__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class Concat:
    """String concatenation ``a || b || …`` (null-propagating)."""

    parts: Tuple["SqlExpr", ...]

    def __repr__(self) -> str:
        return "||".join(map(repr, self.parts))


@dataclass(frozen=True)
class Aggregate:
    """``func(arg)`` with ``arg=None`` meaning ``COUNT(*)``."""

    func: str  # 'avg' | 'sum' | 'count' | 'min' | 'max'
    arg: Optional["SqlExpr"]
    span: Optional[Span] = _span_field()

    def __repr__(self) -> str:
        return f"{self.func}({'*' if self.arg is None else repr(self.arg)})"


@dataclass(frozen=True)
class ScalarSubquery:
    """A subquery used as a scalar value (the paper's aggregate black box)."""

    query: "Query"

    def __repr__(self) -> str:
        return "(scalar subquery)"


SqlExpr = TUnion[ColumnRef, Literal, Param, Concat, Aggregate, ScalarSubquery]


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Comparison:
    op: str  # '=', '<>', '<', '<=', '>', '>=', 'like', 'not like'
    left: SqlExpr
    right: SqlExpr
    span: Optional[Span] = _span_field()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class IsNull:
    expr: SqlExpr
    negated: bool = False
    span: Optional[Span] = _span_field()

    def __repr__(self) -> str:
        return f"({self.expr!r} IS {'NOT ' if self.negated else ''}NULL)"


@dataclass(frozen=True)
class Exists:
    query: "Query"
    negated: bool = False
    span: Optional[Span] = _span_field()

    def __repr__(self) -> str:
        return f"{'NOT ' if self.negated else ''}EXISTS(…)"


@dataclass(frozen=True)
class InPredicate:
    """``expr [NOT] IN (values…)`` or ``expr [NOT] IN (subquery)``."""

    expr: SqlExpr
    values: Optional[Tuple[SqlExpr, ...]] = None
    query: Optional["Query"] = None
    negated: bool = False
    span: Optional[Span] = _span_field()

    def __post_init__(self):
        if (self.values is None) == (self.query is None):
            raise ValueError("InPredicate needs exactly one of values/query")

    def __repr__(self) -> str:
        target = "…" if self.query else ", ".join(map(repr, self.values or ()))
        return f"({self.expr!r} {'NOT ' if self.negated else ''}IN ({target}))"


@dataclass(frozen=True)
class BoolOp:
    """N-ary AND / OR (flattened on construction)."""

    op: str  # 'and' | 'or'
    items: Tuple["SqlCond", ...]

    def __init__(self, op: str, *items: "SqlCond"):
        if op not in ("and", "or"):
            raise ValueError(f"bad boolean operator {op!r}")
        flattened = []
        for item in items:
            if isinstance(item, BoolOp) and item.op == op:
                flattened.extend(item.items)
            else:
                flattened.append(item)
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "items", tuple(flattened))

    def __repr__(self) -> str:
        return "(" + f" {self.op.upper()} ".join(map(repr, self.items)) + ")"


@dataclass(frozen=True)
class NotOp:
    item: "SqlCond"
    span: Optional[Span] = _span_field()

    def __repr__(self) -> str:
        return f"NOT {self.item!r}"


@dataclass(frozen=True)
class BoolLiteral:
    value: bool

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"


SqlCond = TUnion[Comparison, IsNull, Exists, InPredicate, BoolOp, NotOp, BoolLiteral]


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Star:
    """``SELECT *``."""

    def __repr__(self) -> str:
        return "*"


@dataclass(frozen=True)
class OutputColumn:
    expr: SqlExpr
    alias: Optional[str] = None

    def __repr__(self) -> str:
        return f"{self.expr!r}" + (f" AS {self.alias}" if self.alias else "")


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None
    span: Optional[Span] = _span_field()

    @property
    def binding(self) -> str:
        """The name this table is known by inside the query block."""
        return self.alias or self.name

    def __repr__(self) -> str:
        return self.name + (f" {self.alias}" if self.alias else "")


@dataclass(frozen=True)
class Select:
    columns: Tuple[TUnion[OutputColumn, Star], ...]
    tables: Tuple[TableRef, ...]
    where: Optional[SqlCond] = None
    distinct: bool = False
    span: Optional[Span] = _span_field()

    def __repr__(self) -> str:
        return (
            f"SELECT{' DISTINCT' if self.distinct else ''} "
            f"{', '.join(map(repr, self.columns))} FROM "
            f"{', '.join(map(repr, self.tables))}"
            + (f" WHERE {self.where!r}" if self.where else "")
        )


@dataclass(frozen=True)
class SetOp:
    """``left UNION|INTERSECT|EXCEPT [ALL] right`` (set semantics default)."""

    op: str  # 'union' | 'intersect' | 'except'
    left: "Query"
    right: "Query"
    all: bool = False
    span: Optional[Span] = _span_field()

    def __post_init__(self):
        if self.op not in ("union", "intersect", "except"):
            raise ValueError(f"bad set operation {self.op!r}")


@dataclass(frozen=True)
class Query:
    """A query body plus its ``WITH`` views (may be empty)."""

    body: TUnion[Select, SetOp]
    ctes: Tuple[Tuple[str, "Query"], ...] = ()

    def __repr__(self) -> str:
        prefix = f"WITH {', '.join(n for n, _ in self.ctes)} " if self.ctes else ""
        return prefix + repr(self.body)


def query_of(body: TUnion[Select, SetOp, Query]) -> Query:
    """Wrap a bare Select/SetOp into a Query (idempotent)."""
    if isinstance(body, Query):
        return body
    return Query(body=body)
