"""Translate the SQL fragment into relational algebra.

The paper follows [Van den Bussche & Vansummeren 2009] to express its
SQL queries in algebra before applying the Figure 3 translation; we do
the same.  ``EXISTS`` / ``NOT EXISTS`` and ``IN`` / ``NOT IN``
subqueries become condition semijoins / antijoins whose right side is
the subquery's ``FROM`` product and whose condition is the subquery's
``WHERE`` clause (which may reference the enclosing block — one level of
correlation, which covers the paper's queries; deeper correlation raises
``NotImplementedError``).

Attributes are qualified as ``binding.column`` throughout and renamed to
their SQL output names at the top of each block, so translated queries
evaluate to relations directly comparable with the engine's output.

Scalar aggregate subqueries are not first-order; per Section 7 they are
treated as black-box constants, supplied via ``scalar_resolver``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union as TUnion

from repro.algebra import conditions as AC
from repro.algebra.expr import (
    AntiJoin,
    Difference,
    Expr,
    Intersection,
    Projection,
    Product,
    RelationRef,
    Rename,
    Selection,
    SemiJoin,
    Union,
)
from repro.algebra.infer import attribute_lookup
from repro.sql import ast

__all__ = ["sql_to_algebra", "AlgebraTranslationError"]


class AlgebraTranslationError(ValueError):
    """The query falls outside the algebra-translatable fragment."""


class _Scope:
    """Name resolution for one SELECT block (with a link to the outer one)."""

    def __init__(
        self,
        tables: Sequence[ast.TableRef],
        attrs_of: Callable[[str], Tuple[str, ...]],
        parent: Optional["_Scope"] = None,
    ):
        self.parent = parent
        self.bindings: Dict[str, Tuple[str, ...]] = {}
        for ref in tables:
            if ref.binding in self.bindings:
                raise AlgebraTranslationError(
                    f"duplicate table binding {ref.binding!r}"
                )
            self.bindings[ref.binding] = attrs_of(ref.name)

    def qualified_attributes(self) -> List[str]:
        return [
            f"{binding}.{attr}"
            for binding, attrs in self.bindings.items()
            for attr in attrs
        ]

    def resolve(self, column: ast.ColumnRef, depth: int = 0) -> Tuple[str, int]:
        """Return the qualified name and scope depth (0 = this block)."""
        if column.qualifier is not None:
            if column.qualifier in self.bindings:
                if column.name not in self.bindings[column.qualifier]:
                    raise AlgebraTranslationError(
                        f"no column {column.name!r} in {column.qualifier!r}"
                    )
                return f"{column.qualifier}.{column.name}", depth
        else:
            owners = [
                binding
                for binding, attrs in self.bindings.items()
                if column.name in attrs
            ]
            if len(owners) > 1:
                raise AlgebraTranslationError(
                    f"ambiguous column {column.name!r} (tables {sorted(owners)})"
                )
            if owners:
                return f"{owners[0]}.{column.name}", depth
        if self.parent is not None:
            return self.parent.resolve(column, depth + 1)
        raise AlgebraTranslationError(f"cannot resolve column {column.display!r}")


class _Translator:
    def __init__(
        self,
        schema_source,
        params: Optional[Dict[str, object]] = None,
        scalar_resolver: Optional[Callable[[ast.Query], object]] = None,
    ):
        self._base_lookup = attribute_lookup(schema_source) if not callable(
            schema_source
        ) else schema_source
        self.params = dict(params or {})
        self.scalar_resolver = scalar_resolver
        # name -> (algebra, output attribute names) for WITH views.
        self.ctes: Dict[str, Tuple[Expr, Tuple[str, ...]]] = {}

    # ------------------------------------------------------------------
    def attrs_of(self, table: str) -> Tuple[str, ...]:
        if table in self.ctes:
            return self.ctes[table][1]
        return tuple(self._base_lookup(table))

    def table_expr(self, ref: ast.TableRef) -> Expr:
        if ref.name in self.ctes:
            expr, attrs = self.ctes[ref.name]
        else:
            expr, attrs = RelationRef(ref.name), self.attrs_of(ref.name)
        mapping = {attr: f"{ref.binding}.{attr}" for attr in attrs}
        return Rename(expr, mapping)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, query: ast.Query, scope: Optional[_Scope] = None) -> Tuple[Expr, Tuple[str, ...]]:
        saved = dict(self.ctes)
        try:
            for name, sub in query.ctes:
                self.ctes[name] = self.query(sub)
            return self.body(query.body, scope)
        finally:
            self.ctes = saved

    def body(
        self, body: TUnion[ast.Select, ast.SetOp], scope: Optional[_Scope]
    ) -> Tuple[Expr, Tuple[str, ...]]:
        if isinstance(body, ast.Select):
            return self.select(body, scope)
        left, left_attrs = self.query(body.left, scope)
        right, right_attrs = self.query(body.right, scope)
        if len(left_attrs) != len(right_attrs):
            raise AlgebraTranslationError("set operands have different arity")
        node = {"union": Union, "intersect": Intersection, "except": Difference}[
            body.op
        ]
        return node(left, right), left_attrs

    # ------------------------------------------------------------------
    def select(
        self, select: ast.Select, outer: Optional[_Scope]
    ) -> Tuple[Expr, Tuple[str, ...]]:
        scope = _Scope(select.tables, self.attrs_of, parent=outer)
        expr: Expr = None  # type: ignore[assignment]
        for ref in select.tables:
            table = self.table_expr(ref)
            expr = table if expr is None else Product(expr, table)
        if expr is None:
            raise AlgebraTranslationError("FROM clause is empty")

        if select.where is not None:
            expr = self.apply_condition(expr, select.where, scope)

        return self.project(expr, select, scope)

    def project(
        self, expr: Expr, select: ast.Select, scope: _Scope
    ) -> Tuple[Expr, Tuple[str, ...]]:
        if len(select.columns) == 1 and isinstance(select.columns[0], ast.Star):
            attrs = tuple(scope.qualified_attributes())
            return Projection(expr, attrs), attrs
        qualified: List[str] = []
        output: List[str] = []
        for col in select.columns:
            if isinstance(col, ast.Star):
                raise AlgebraTranslationError("* mixed with explicit columns")
            if not isinstance(col.expr, ast.ColumnRef):
                raise AlgebraTranslationError(
                    "only plain columns are supported in SELECT lists of the "
                    "algebra-translatable fragment"
                )
            name, depth = scope.resolve(col.expr)
            if depth != 0:
                raise AlgebraTranslationError(
                    f"SELECT list references outer column {col.expr.display!r}"
                )
            qualified.append(name)
            output.append(col.alias or col.expr.name)
        if len(set(output)) != len(output):
            raise AlgebraTranslationError(f"duplicate output names: {output}")
        projected = Projection(expr, tuple(qualified))
        renamed = Rename(projected, dict(zip(qualified, output)))
        return renamed, tuple(output)

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------
    def apply_condition(self, expr: Expr, cond: ast.SqlCond, scope: _Scope) -> Expr:
        """Apply *cond* to *expr*: subquery predicates become semi/anti
        joins, everything else one selection."""
        conjuncts = cond.items if isinstance(cond, ast.BoolOp) and cond.op == "and" else (cond,)
        flat: List[AC.Condition] = []
        for item in conjuncts:
            if isinstance(item, ast.Exists):
                expr = self.exists_join(expr, item, scope)
            elif isinstance(item, ast.InPredicate) and item.query is not None:
                expr = self.in_join(expr, item, scope)
            else:
                flat.append(self.condition(item, scope))
        if flat:
            expr = Selection(expr, AC.And(*flat) if len(flat) > 1 else flat[0])
        return expr

    def exists_join(self, expr: Expr, pred: ast.Exists, scope: _Scope) -> Expr:
        sub_expr, sub_cond, _output = self.subquery_base(pred.query, scope)
        node = AntiJoin if pred.negated else SemiJoin
        return node(expr, sub_expr, sub_cond)

    def in_join(self, expr: Expr, pred: ast.InPredicate, scope: _Scope) -> Expr:
        assert pred.query is not None
        sub_expr, sub_cond, sub_attrs = self.subquery_base(
            pred.query, scope, keep_output=True
        )
        if len(sub_attrs) != 1:
            raise AlgebraTranslationError("IN subquery must return one column")
        left_term = self.term(pred.expr, scope)
        membership = AC.Comparison("=", left_term, AC.Attr(sub_attrs[0]))
        cond = AC.And(sub_cond, membership) if not isinstance(sub_cond, AC.TrueCond) else membership
        node = AntiJoin if pred.negated else SemiJoin
        return node(expr, sub_expr, cond)

    def subquery_base(
        self, query: ast.Query, outer: _Scope, keep_output: bool = False
    ) -> Tuple[Expr, AC.Condition, Tuple[str, ...]]:
        """The subquery as (FROM-product expression, WHERE condition).

        The condition may reference the enclosing block's attributes —
        they are in scope on the left side of the semijoin.  Nested
        subqueries *inside* the subquery are folded into its expression
        recursively.
        """
        if query.ctes:
            raise AlgebraTranslationError("WITH inside subqueries is not supported")
        body = query.body
        if not isinstance(body, ast.Select):
            raise AlgebraTranslationError("set operations under EXISTS/IN are not supported")
        scope = _Scope(body.tables, self.attrs_of, parent=outer)
        expr: Expr = None  # type: ignore[assignment]
        for ref in body.tables:
            table = self.table_expr(ref)
            expr = table if expr is None else Product(expr, table)
        flat: List[AC.Condition] = []
        if body.where is not None:
            conjuncts = (
                body.where.items
                if isinstance(body.where, ast.BoolOp) and body.where.op == "and"
                else (body.where,)
            )
            for item in conjuncts:
                if isinstance(item, ast.Exists):
                    expr = self.exists_join(expr, item, scope)
                elif isinstance(item, ast.InPredicate) and item.query is not None:
                    expr = self.in_join(expr, item, scope)
                else:
                    flat.append(self.condition(item, scope))
        output: Tuple[str, ...] = ()
        if keep_output:
            if len(body.columns) == 1 and not isinstance(body.columns[0], ast.Star):
                col = body.columns[0]
                assert isinstance(col, ast.OutputColumn)
                if not isinstance(col.expr, ast.ColumnRef):
                    raise AlgebraTranslationError("IN subquery output must be a column")
                name, depth = scope.resolve(col.expr)
                if depth != 0:
                    raise AlgebraTranslationError("IN subquery output from outer scope")
                output = (name,)
            else:
                raise AlgebraTranslationError("IN subquery must select one column")
        cond = AC.And(*flat) if len(flat) > 1 else (flat[0] if flat else AC.TrueCond())
        return expr, cond, output

    # ------------------------------------------------------------------
    def condition(self, cond: ast.SqlCond, scope: _Scope) -> AC.Condition:
        if isinstance(cond, ast.BoolOp):
            node = AC.And if cond.op == "and" else AC.Or
            return node(*[self.condition(item, scope) for item in cond.items])
        if isinstance(cond, ast.NotOp):
            return AC.negate(self.condition(cond.item, scope))
        if isinstance(cond, ast.BoolLiteral):
            return AC.TrueCond() if cond.value else AC.FalseCond()
        if isinstance(cond, ast.IsNull):
            return AC.NullTest(self.term(cond.expr, scope), is_null=not cond.negated)
        if isinstance(cond, ast.Comparison):
            return AC.Comparison(
                cond.op, self.term(cond.left, scope), self.term(cond.right, scope)
            )
        if isinstance(cond, ast.InPredicate) and cond.values is not None:
            term = self.term(cond.expr, scope)
            disjuncts = []
            for value in cond.values:
                value_term = self.term(value, scope)
                if isinstance(value_term, AC.Const) and isinstance(value_term.value, (list, tuple)):
                    disjuncts.extend(
                        AC.Comparison("=", term, AC.Const(v)) for v in value_term.value
                    )
                else:
                    disjuncts.append(AC.Comparison("=", term, value_term))
            membership = AC.Or(*disjuncts) if len(disjuncts) != 1 else disjuncts[0]
            return AC.negate(membership) if cond.negated else membership
        if isinstance(cond, (ast.Exists, ast.InPredicate)):
            raise AlgebraTranslationError(
                "subquery predicate under OR/NOT is outside the supported fragment"
            )
        raise AlgebraTranslationError(f"cannot translate condition {cond!r}")

    def term(self, expr: ast.SqlExpr, scope: _Scope) -> AC.Term:
        if isinstance(expr, ast.ColumnRef):
            name, _depth = scope.resolve(expr)
            return AC.Attr(name)
        if isinstance(expr, ast.Literal):
            return AC.Const(expr.value)
        if isinstance(expr, ast.Param):
            if expr.name not in self.params:
                raise AlgebraTranslationError(f"unbound parameter ${expr.name}")
            return AC.Const(self.params[expr.name])
        if isinstance(expr, ast.Concat):
            parts = []
            for part in expr.parts:
                folded = self.term(part, scope)
                if not isinstance(folded, AC.Const):
                    raise AlgebraTranslationError(
                        "|| is only supported over literals and parameters"
                    )
                parts.append(str(folded.value))
            return AC.Const("".join(parts))
        if isinstance(expr, ast.ScalarSubquery):
            if self.scalar_resolver is None:
                raise AlgebraTranslationError(
                    "scalar subqueries need a scalar_resolver (the paper treats "
                    "them as black-box constants)"
                )
            return AC.Const(self.scalar_resolver(expr.query))
        raise AlgebraTranslationError(f"cannot translate expression {expr!r}")


def sql_to_algebra(
    query: TUnion[ast.Query, ast.Select, ast.SetOp],
    schema_source,
    params: Optional[Dict[str, object]] = None,
    scalar_resolver: Optional[Callable[[ast.Query], object]] = None,
) -> Expr:
    """Translate a SQL AST into a relational algebra expression."""
    translator = _Translator(schema_source, params=params, scalar_resolver=scalar_resolver)
    expr, _attrs = translator.query(ast.query_of(query))
    return expr
