"""Recursive-descent parser for the supported SQL fragment.

Grammar (informally)::

    query       := [WITH name AS (query) {, ...}] set_expr
    set_expr    := select { (UNION|INTERSECT|EXCEPT) [ALL] select }
    select      := SELECT [DISTINCT] (* | out {, out}) FROM table {, table}
                   [WHERE cond]
                 | ( set_expr )
    cond        := and_cond { OR and_cond }
    and_cond    := not_cond { AND not_cond }
    not_cond    := NOT not_cond | predicate
    predicate   := [NOT] EXISTS ( query )
                 | ( cond )
                 | TRUE | FALSE
                 | expr ( =|<>|<|<=|>|>= ) expr
                 | expr IS [NOT] NULL
                 | expr [NOT] IN ( query | expr {, expr} )
                 | expr [NOT] LIKE expr
    expr        := primary { || primary }
    primary     := number | string | $param | agg ( expr | * )
                 | name [. name] | ( query )

Parenthesised *scalar* expressions are intentionally unsupported (the
fragment never needs them), which keeps ``(`` unambiguous: it opens a
subquery when followed by ``SELECT``/``WITH`` and a condition group
otherwise.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union as TUnion

from repro.sql import ast
from repro.sql.lexer import SqlSyntaxError, Token, tokenize

__all__ = ["parse_sql", "parse_condition", "SqlSyntaxError"]

_COMPARE_OPS = ("=", "<>", "<", "<=", ">", ">=")
_AGG_FUNCS = ("avg", "sum", "count", "min", "max")


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0
        #: End offset of the most recently consumed token (for spans).
        self.last_end = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
            self.last_end = token.stop
        return token

    def span_from(self, start: int) -> ast.Span:
        """Source span from *start* to the last consumed token."""
        return (start, max(start, self.last_end))

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.advance()
            return True
        return False

    def accept_op(self, op: str) -> bool:
        token = self.peek()
        if token.kind == "op" and token.value == op:
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            self.fail(f"expected {word.upper()}")

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            self.fail(f"expected {op!r}")

    def expect_name(self) -> str:
        token = self.peek()
        if token.kind != "name":
            self.fail("expected an identifier")
        self.advance()
        return str(token.value)

    def fail(self, message: str) -> None:
        token = self.peek()
        raise SqlSyntaxError(f"{message}, found {token!r}", token.position, self.text)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def parse_query(self) -> ast.Query:
        ctes: List[Tuple[str, ast.Query]] = []
        if self.accept_keyword("with"):
            while True:
                name = self.expect_name()
                self.expect_keyword("as")
                self.expect_op("(")
                ctes.append((name, self.parse_query()))
                self.expect_op(")")
                if not self.accept_op(","):
                    break
        body = self.parse_set_expr()
        return ast.Query(body=body, ctes=tuple(ctes))

    def parse_set_expr(self) -> TUnion[ast.Select, ast.SetOp]:
        start = self.peek().position
        left: TUnion[ast.Select, ast.SetOp] = self.parse_select_core()
        while True:
            token = self.peek()
            if token.kind == "keyword" and token.value in ("union", "intersect", "except"):
                op = str(token.value)
                self.advance()
                all_flag = self.accept_keyword("all")
                right = self.parse_select_core()
                left = ast.SetOp(
                    op=op,
                    left=ast.query_of(left),
                    right=ast.query_of(right),
                    all=all_flag,
                    span=self.span_from(start),
                )
            else:
                return left

    def parse_select_core(self) -> TUnion[ast.Select, ast.SetOp]:
        start = self.peek().position
        if self.accept_op("("):
            inner = self.parse_set_expr()
            self.expect_op(")")
            return inner
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        columns = self.parse_select_list()
        self.expect_keyword("from")
        tables = [self.parse_table_ref()]
        while self.accept_op(","):
            tables.append(self.parse_table_ref())
        where = None
        if self.accept_keyword("where"):
            where = self.parse_condition()
        return ast.Select(
            columns=tuple(columns),
            tables=tuple(tables),
            where=where,
            distinct=distinct,
            span=self.span_from(start),
        )

    def parse_select_list(self) -> List[TUnion[ast.OutputColumn, ast.Star]]:
        if self.accept_op("*"):
            return [ast.Star()]
        columns: List[TUnion[ast.OutputColumn, ast.Star]] = []
        while True:
            expr = self.parse_expr()
            alias = None
            if self.accept_keyword("as"):
                alias = self.expect_name()
            elif self.peek().kind == "name":
                alias = self.expect_name()
            columns.append(ast.OutputColumn(expr=expr, alias=alias))
            if not self.accept_op(","):
                return columns

    def parse_table_ref(self) -> ast.TableRef:
        start = self.peek().position
        name = self.expect_name()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_name()
        elif self.peek().kind == "name":
            alias = self.expect_name()
        return ast.TableRef(name=name, alias=alias, span=self.span_from(start))

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------
    def parse_condition(self) -> ast.SqlCond:
        items = [self.parse_and_condition()]
        while self.accept_keyword("or"):
            items.append(self.parse_and_condition())
        return items[0] if len(items) == 1 else ast.BoolOp("or", *items)

    def parse_and_condition(self) -> ast.SqlCond:
        items = [self.parse_not_condition()]
        while self.accept_keyword("and"):
            items.append(self.parse_not_condition())
        return items[0] if len(items) == 1 else ast.BoolOp("and", *items)

    def parse_not_condition(self) -> ast.SqlCond:
        start = self.peek().position
        if self.accept_keyword("not"):
            # NOT EXISTS / NOT IN read better as dedicated nodes.
            if self.peek().is_keyword("exists"):
                return self._parse_exists(negated=True, start=start)
            return ast.NotOp(self.parse_not_condition(), span=self.span_from(start))
        return self.parse_predicate()

    def _parse_exists(self, negated: bool, start: Optional[int] = None) -> ast.Exists:
        if start is None:
            start = self.peek().position
        self.expect_keyword("exists")
        self.expect_op("(")
        query = self.parse_query()
        self.expect_op(")")
        return ast.Exists(query=query, negated=negated, span=self.span_from(start))

    def _starts_subquery(self, ahead: int = 0) -> bool:
        token = self.peek(ahead)
        return token.kind == "keyword" and token.value in ("select", "with")

    def parse_predicate(self) -> ast.SqlCond:
        token = self.peek()
        if token.is_keyword("exists"):
            return self._parse_exists(negated=False)
        if token.is_keyword("true"):
            self.advance()
            return ast.BoolLiteral(True)
        if token.is_keyword("false"):
            self.advance()
            return ast.BoolLiteral(False)
        if token.kind == "op" and token.value == "(" and not self._starts_subquery(1):
            self.advance()
            cond = self.parse_condition()
            self.expect_op(")")
            return cond
        start = token.position
        left = self.parse_expr()
        return self.parse_predicate_tail(left, start)

    def parse_predicate_tail(self, left: ast.SqlExpr, start: Optional[int] = None) -> ast.SqlCond:
        if start is None:
            left_span = getattr(left, "span", None)
            start = left_span[0] if left_span else self.peek().position
        token = self.peek()
        if token.kind == "op" and token.value in _COMPARE_OPS:
            self.advance()
            right = self.parse_expr()
            return ast.Comparison(
                op=str(token.value), left=left, right=right, span=self.span_from(start)
            )
        if token.is_keyword("is"):
            self.advance()
            negated = self.accept_keyword("not")
            self.expect_keyword("null")
            return ast.IsNull(expr=left, negated=negated, span=self.span_from(start))
        negated = False
        if token.is_keyword("not"):
            self.advance()
            negated = True
            token = self.peek()
        if token.is_keyword("like"):
            self.advance()
            pattern = self.parse_expr()
            return ast.Comparison(
                op="not like" if negated else "like",
                left=left,
                right=pattern,
                span=self.span_from(start),
            )
        if token.is_keyword("in"):
            self.advance()
            self.expect_op("(")
            if self._starts_subquery():
                query = self.parse_query()
                self.expect_op(")")
                return ast.InPredicate(
                    expr=left, query=query, negated=negated, span=self.span_from(start)
                )
            values = [self.parse_expr()]
            while self.accept_op(","):
                values.append(self.parse_expr())
            self.expect_op(")")
            return ast.InPredicate(
                expr=left, values=tuple(values), negated=negated, span=self.span_from(start)
            )
        self.fail("expected a predicate")
        raise AssertionError  # pragma: no cover

    # ------------------------------------------------------------------
    # Scalar expressions
    # ------------------------------------------------------------------
    def parse_expr(self) -> ast.SqlExpr:
        parts = [self.parse_primary()]
        while self.accept_op("||"):
            parts.append(self.parse_primary())
        return parts[0] if len(parts) == 1 else ast.Concat(tuple(parts))

    def parse_primary(self) -> ast.SqlExpr:
        token = self.peek()
        if token.kind == "number" or token.kind == "string":
            self.advance()
            return ast.Literal(token.value)
        if token.kind == "param":
            self.advance()
            return ast.Param(str(token.value))
        if token.kind == "keyword" and token.value in _AGG_FUNCS:
            func = str(token.value)
            start = token.position
            self.advance()
            self.expect_op("(")
            arg: Optional[ast.SqlExpr]
            if self.accept_op("*"):
                arg = None
            else:
                arg = self.parse_expr()
            self.expect_op(")")
            return ast.Aggregate(func=func, arg=arg, span=self.span_from(start))
        if token.kind == "op" and token.value == "(":
            if self._starts_subquery(1):
                self.advance()
                query = self.parse_query()
                self.expect_op(")")
                return ast.ScalarSubquery(query=query)
            self.fail("parenthesised scalar expressions are not supported")
        if token.kind == "name":
            start = token.position
            first = self.expect_name()
            if self.accept_op("."):
                second = self.expect_name()
                return ast.ColumnRef(name=second, qualifier=first, span=self.span_from(start))
            return ast.ColumnRef(name=first, span=self.span_from(start))
        self.fail("expected a scalar expression")
        raise AssertionError  # pragma: no cover


def parse_sql(text: str) -> ast.Query:
    """Parse *text* into a :class:`repro.sql.ast.Query`."""
    parser = _Parser(text)
    query = parser.parse_query()
    parser.accept_op(";")
    if parser.peek().kind != "eof":
        parser.fail("unexpected trailing input")
    return query


def parse_condition(text: str) -> ast.SqlCond:
    """Parse a standalone condition (handy in tests)."""
    parser = _Parser(text)
    cond = parser.parse_condition()
    if parser.peek().kind != "eof":
        parser.fail("unexpected trailing input")
    return cond
