"""Render SQL ASTs back to (pretty-printed) SQL text.

Round-tripping ``parse_sql(to_sql(q))`` is tested to be the identity on
ASTs; the printer is also how rewritten queries are shown in examples
and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Union as TUnion

from repro.sql import ast

__all__ = ["to_sql"]

_INDENT = "  "


def _indent(text: str, depth: int) -> str:
    pad = _INDENT * depth
    return "\n".join(pad + line if line else line for line in text.split("\n"))


def _format_literal(value: object) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)


def _format_expr(expr: ast.SqlExpr) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.display
    if isinstance(expr, ast.Literal):
        return _format_literal(expr.value)
    if isinstance(expr, ast.Param):
        return f"${expr.name}"
    if isinstance(expr, ast.Concat):
        return " || ".join(_format_expr(p) for p in expr.parts)
    if isinstance(expr, ast.Aggregate):
        inner = "*" if expr.arg is None else _format_expr(expr.arg)
        return f"{expr.func.upper()}({inner})"
    if isinstance(expr, ast.ScalarSubquery):
        return "(\n" + _indent(_format_query(expr.query), 1) + " )"
    raise TypeError(f"cannot print expression {type(expr).__name__}")


def _format_cond(cond: ast.SqlCond, parent: str = "") -> str:
    if isinstance(cond, ast.Comparison):
        return f"{_format_expr(cond.left)} {cond.op.upper()} {_format_expr(cond.right)}"
    if isinstance(cond, ast.IsNull):
        negation = " NOT" if cond.negated else ""
        return f"{_format_expr(cond.expr)} IS{negation} NULL"
    if isinstance(cond, ast.Exists):
        keyword = "NOT EXISTS" if cond.negated else "EXISTS"
        return f"{keyword} (\n" + _indent(_format_query(cond.query), 1) + " )"
    if isinstance(cond, ast.InPredicate):
        keyword = "NOT IN" if cond.negated else "IN"
        if cond.query is not None:
            body = "(\n" + _indent(_format_query(cond.query), 1) + " )"
        else:
            body = "(" + ", ".join(_format_expr(v) for v in cond.values or ()) + ")"
        return f"{_format_expr(cond.expr)} {keyword} {body}"
    if isinstance(cond, ast.BoolOp):
        joiner = f"\n{cond.op.upper()} " if cond.op == "and" else f" {cond.op.upper()} "
        rendered = joiner.join(_format_cond(item, parent=cond.op) for item in cond.items)
        # Parenthesise ORs nested under ANDs (and vice versa) for clarity.
        if parent and parent != cond.op:
            return "( " + rendered.replace("\n", " ") + " )"
        return rendered
    if isinstance(cond, ast.NotOp):
        return f"NOT ( {_format_cond(cond.item)} )"
    if isinstance(cond, ast.BoolLiteral):
        return "TRUE" if cond.value else "FALSE"
    raise TypeError(f"cannot print condition {type(cond).__name__}")


def _format_select(select: ast.Select) -> str:
    columns = ", ".join(
        "*"
        if isinstance(col, ast.Star)
        else _format_expr(col.expr) + (f" AS {col.alias}" if col.alias else "")
        for col in select.columns
    )
    tables = ", ".join(
        ref.name + (f" {ref.alias}" if ref.alias else "") for ref in select.tables
    )
    parts = [
        f"SELECT {'DISTINCT ' if select.distinct else ''}{columns}",
        f"FROM {tables}",
    ]
    if select.where is not None:
        parts.append(f"WHERE {_format_cond(select.where)}")
    return "\n".join(parts)


def _format_body(body: TUnion[ast.Select, ast.SetOp]) -> str:
    if isinstance(body, ast.Select):
        return _format_select(body)
    if isinstance(body, ast.SetOp):
        keyword = body.op.upper() + (" ALL" if body.all else "")
        return (
            _format_query(body.left)
            + f"\n{keyword}\n"
            + _format_query(body.right)
        )
    raise TypeError(f"cannot print query body {type(body).__name__}")


def _format_query(query: ast.Query) -> str:
    if not query.ctes:
        return _format_body(query.body)
    views = ",\n".join(
        f"{name} AS (\n" + _indent(_format_query(sub), 1) + " )"
        for name, sub in query.ctes
    )
    return f"WITH\n{views}\n" + _format_body(query.body)


def to_sql(query: TUnion[ast.Query, ast.Select, ast.SetOp]) -> str:
    """Pretty-print a query AST as SQL text."""
    return _format_query(ast.query_of(query))
