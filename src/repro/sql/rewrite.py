"""Direct SQL-to-SQL rewriting with correctness guarantees.

This implements the paper's translation ``Q → Q+`` directly on SQL ASTs
(the "direct SQL rewriting" Section 8 calls for), in three passes:

**Pass 1 — mode-based condition rewriting.**  Every condition is
rewritten in one of two modes mirroring Figure 3:

* mode ``+`` (certain): the condition must hold under every valuation.
  Under SQL's 3VL the adjusted ``θ*`` is what the engine already
  evaluates (a comparison is ``TRUE`` only on constants), so
  comparisons stay unchanged; ``EXISTS`` keeps mode ``+`` and
  ``NOT EXISTS`` flips its subquery into mode ``?``.
* mode ``?`` (possible): the condition must hold under *some*
  valuation.  Comparisons are weakened with ``OR x IS NULL`` escapes
  for every operand that may actually be null — consulting the schema
  *and* the non-null facts forced by the enclosing positive context
  (:mod:`repro.sql.nullability`); ``NOT EXISTS`` flips back to ``+``.

**Pass 2 — dimension view folding** (the Q+4 treatment).  Inside a
``NOT EXISTS``, a cluster of tables attached to the correlated anchor
table through a single weakened join ``(x = t.k OR x IS NULL)`` is
replaced by a ``WITH`` view computing the possible key set, turning the
appendix's ``part_view`` / ``supp_view`` out of Q4 automatically.

**Pass 3 — disjunction splitting** (the Q+2/Q+4 treatment).  A
``NOT EXISTS (… WHERE c1 AND (a OR b) …)`` is split into a conjunction
of ``NOT EXISTS`` blocks, one per disjunct; tables no longer referenced
in a block are dropped from its ``FROM`` with an ``EXISTS`` guard
(``AND EXISTS (SELECT * FROM t)``) preserving semantics.  Splitting is
applied when it decorrelates a block (Q2 — enabling the engine's
short-circuit) or when the ``OR`` blocks an equi-join (Q4 — restoring
hash joins); Q1/Q3-style residual ``OR``\\ s are left inline, matching
the appendix.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union as TUnion

from repro.data.schema import DatabaseSchema
from repro.sql import ast
from repro.sql.nullability import (
    Catalog,
    RewriteError,
    Scope,
    columns_in_expr,
    forced_nonnull,
)

__all__ = ["rewrite_certain", "rewrite_possible", "RewriteOptions", "RewriteError"]

CERTAIN = "+"
POSSIBLE = "?"

_MAX_SPLIT_COMBOS = 16

_NEGATED_OP = {
    "=": "<>",
    "<>": "=",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
    "like": "not like",
    "not like": "like",
}


@dataclass(frozen=True)
class RewriteOptions:
    """Tuning knobs for the rewriter (defaults reproduce the appendix).

    ``split``: ``"auto"`` applies the paper's heuristics, ``"always"``
    splits every OR inside a ``NOT EXISTS``, ``"never"`` disables
    splitting (the configuration whose optimizer breakdown Section 7
    describes for Q4).  ``fold_views`` controls dimension view folding,
    ``union_views`` renders folded views as ``UNION`` of null/match
    branches (the appendix shape) instead of a single ``OR`` filter.
    """

    split: str = "auto"  # "never" | "auto" | "always"
    fold_views: str = "auto"  # "never" | "auto"
    union_views: bool = True

    def __post_init__(self):
        if self.split not in ("never", "auto", "always"):
            raise ValueError(f"bad split mode {self.split!r}")
        if self.fold_views not in ("never", "auto"):
            raise ValueError(f"bad fold_views mode {self.fold_views!r}")


def _conjuncts(cond: Optional[ast.SqlCond]) -> Tuple[ast.SqlCond, ...]:
    if cond is None:
        return ()
    if isinstance(cond, ast.BoolOp) and cond.op == "and":
        return cond.items
    return (cond,)


def _and(conds: Sequence[ast.SqlCond]) -> Optional[ast.SqlCond]:
    conds = [c for c in conds if not (isinstance(c, ast.BoolLiteral) and c.value)]
    if not conds:
        return None
    if len(conds) == 1:
        return conds[0]
    return ast.BoolOp("and", *conds)


def negate_sql(cond: ast.SqlCond) -> ast.SqlCond:
    """Push a negation through a SQL condition."""
    if isinstance(cond, ast.Comparison):
        return ast.Comparison(_NEGATED_OP[cond.op], cond.left, cond.right)
    if isinstance(cond, ast.IsNull):
        return ast.IsNull(cond.expr, negated=not cond.negated)
    if isinstance(cond, ast.Exists):
        return ast.Exists(cond.query, negated=not cond.negated)
    if isinstance(cond, ast.InPredicate):
        return ast.InPredicate(
            expr=cond.expr,
            values=cond.values,
            query=cond.query,
            negated=not cond.negated,
        )
    if isinstance(cond, ast.BoolOp):
        flipped = "or" if cond.op == "and" else "and"
        return ast.BoolOp(flipped, *[negate_sql(item) for item in cond.items])
    if isinstance(cond, ast.NotOp):
        return cond.item
    if isinstance(cond, ast.BoolLiteral):
        return ast.BoolLiteral(not cond.value)
    raise RewriteError(f"cannot negate {cond!r}", node=cond)


# ---------------------------------------------------------------------------
# Pass 1: mode-based rewriting
# ---------------------------------------------------------------------------


class _ModeRewriter:
    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # -- queries --------------------------------------------------------
    def query(self, query: ast.Query, outer: Optional[Scope], mode: str) -> ast.Query:
        if query.ctes:
            raise RewriteError("WITH views must be handled by the caller")
        return ast.Query(body=self.body(query.body, outer, mode))

    def body(self, body, outer: Optional[Scope], mode: str):
        if isinstance(body, ast.Select):
            return self.select(body, outer, mode)
        assert isinstance(body, ast.SetOp)
        if body.op == "union":
            # (Q1 ∪ Q2)+ and (Q1 ∪ Q2)? are both component-wise.
            return ast.SetOp(
                op="union",
                left=ast.Query(self.body(body.left.body, outer, mode)),
                right=ast.Query(self.body(body.right.body, outer, mode)),
                all=body.all,
            )
        if body.op == "except" and mode == CERTAIN:
            return self._except_certain(body, outer)
        if body.op == "except" and mode == POSSIBLE:
            # (Q1 − Q2)? = Q1? − Q2+ ; tuple matching in the engine's
            # EXCEPT is exact (marked-null labels), i.e. set difference.
            return ast.SetOp(
                op="except",
                left=ast.Query(self.body(body.left.body, outer, POSSIBLE)),
                right=ast.Query(self.body(body.right.body, outer, CERTAIN)),
                all=body.all,
            )
        if body.op == "intersect" and mode == CERTAIN:
            return self._intersect_certain(body, outer)
        raise RewriteError(
            f"{body.op.upper()} in a {'negative' if mode == POSSIBLE else 'positive'} "
            "context is outside the rewritable fragment",
            node=body,
        )

    def _simple_select_columns(self, query: ast.Query, what: str) -> Tuple[ast.Select, List[ast.ColumnRef]]:
        """Return the SELECT block and its output columns, *requalified*
        with their binding so they cannot be captured when moved into a
        subquery over the other operand's tables."""
        body = query.body
        if query.ctes or not isinstance(body, ast.Select):
            raise RewriteError(
                f"{what} operands must be plain SELECT blocks", node=body
            )
        scope = Scope(body.tables, self.catalog)
        refs: List[ast.ColumnRef] = []
        for col in body.columns:
            if isinstance(col, ast.Star) or not isinstance(col.expr, ast.ColumnRef):
                raise RewriteError(
                    f"{what} operands must select plain columns", node=body
                )
            resolved = scope.resolve(col.expr)
            refs.append(ast.ColumnRef(name=resolved.column, qualifier=resolved.binding))
        return body, refs

    @staticmethod
    def _check_disjoint_bindings(left: ast.Select, right: ast.Select, what: str) -> None:
        shared = {t.binding for t in left.tables} & {t.binding for t in right.tables}
        if shared:
            raise RewriteError(
                f"{what} operands share table bindings {sorted(shared)}; "
                "alias one side so the rewrite can correlate them"
            )

    def _except_certain(self, body: ast.SetOp, outer: Optional[Scope]) -> ast.Select:
        """``(Q1 − Q2)+ = Q1+ ▷⇑ Q2?`` as a ``NOT EXISTS`` on Q1+.

        The anti-unification condition per output column ``c`` is the
        weakened equality ``l.c = r.c OR l.c IS NULL OR r.c IS NULL``.
        """
        left_sel, left_cols = self._simple_select_columns(body.left, "EXCEPT")
        right_sel, right_cols = self._simple_select_columns(body.right, "EXCEPT")
        if len(left_cols) != len(right_cols):
            raise RewriteError("EXCEPT operands have different arity")
        self._check_disjoint_bindings(left_sel, right_sel, "EXCEPT")
        left_plus = self.select(left_sel, outer, CERTAIN)
        left_scope = Scope(left_sel.tables, self.catalog, parent=outer)
        forced_nonnull(left_sel.where, left_scope)
        right_scope = Scope(right_sel.tables, self.catalog, parent=left_scope)
        matches: List[ast.SqlCond] = []
        for lcol, rcol in zip(left_cols, right_cols):
            disjuncts: List[ast.SqlCond] = [ast.Comparison("=", lcol, rcol)]
            if left_scope.is_possibly_null(lcol):
                disjuncts.append(ast.IsNull(lcol))
            if right_scope.is_possibly_null(rcol):
                disjuncts.append(ast.IsNull(rcol))
            matches.append(
                disjuncts[0] if len(disjuncts) == 1 else ast.BoolOp("or", *disjuncts)
            )
        inner_where = _and(
            list(_conjuncts(self._rewrite_where(right_sel, left_scope, POSSIBLE)))
            + matches
        )
        anti = ast.Exists(
            ast.Query(
                ast.Select(
                    columns=(ast.Star(),),
                    tables=right_sel.tables,
                    where=inner_where,
                )
            ),
            negated=True,
        )
        return ast.Select(
            columns=left_plus.columns,
            tables=left_plus.tables,
            where=_and(list(_conjuncts(left_plus.where)) + [anti]),
            distinct=True,
        )

    def _intersect_certain(self, body: ast.SetOp, outer: Optional[Scope]) -> ast.Select:
        """``(Q1 ∩ Q2)+`` as a strengthened semijoin (sound; complete on
        null-free outputs — SQL cannot assert that two nulls denote the
        same value, see the Section 7 discussion of SQL vs Codd nulls)."""
        left_sel, left_cols = self._simple_select_columns(body.left, "INTERSECT")
        right_sel, right_cols = self._simple_select_columns(body.right, "INTERSECT")
        if len(left_cols) != len(right_cols):
            raise RewriteError("INTERSECT operands have different arity")
        self._check_disjoint_bindings(left_sel, right_sel, "INTERSECT")
        left_plus = self.select(left_sel, outer, CERTAIN)
        right_plus = self.select(right_sel, outer, CERTAIN)
        matches: List[ast.SqlCond] = [
            ast.Comparison("=", lcol, rcol)
            for lcol, rcol in zip(left_cols, right_cols)
        ]
        semi = ast.Exists(
            ast.Query(
                ast.Select(
                    columns=(ast.Star(),),
                    tables=right_plus.tables,
                    where=_and(list(_conjuncts(right_plus.where)) + matches),
                )
            ),
            negated=False,
        )
        return ast.Select(
            columns=left_plus.columns,
            tables=left_plus.tables,
            where=_and(list(_conjuncts(left_plus.where)) + [semi]),
            distinct=True,
        )

    # -- selects --------------------------------------------------------
    def select(self, select: ast.Select, outer: Optional[Scope], mode: str) -> ast.Select:
        if mode == POSSIBLE:
            for ref in select.tables:
                if not self.catalog.has_table(ref.name):
                    raise RewriteError(f"unknown table {ref.name!r}", node=ref)
                if ref.name not in self.catalog.schema:
                    raise RewriteError(
                        f"view {ref.name!r} referenced in a negative context; "
                        "views are rewritten for certainty and cannot soundly "
                        "over-approximate there — inline it first",
                        node=ref,
                    )
        scope = Scope(select.tables, self.catalog, parent=outer)
        if mode == CERTAIN:
            forced_nonnull(select.where, scope)
        where = self._rewrite_where(select, scope, mode, prebuilt_scope=True)
        return ast.Select(
            columns=select.columns,
            tables=select.tables,
            where=where,
            distinct=select.distinct,
        )

    def _rewrite_where(
        self,
        select: ast.Select,
        scope_or_outer,
        mode: str,
        prebuilt_scope: bool = False,
    ) -> Optional[ast.SqlCond]:
        if prebuilt_scope:
            scope = scope_or_outer
        else:
            scope = Scope(select.tables, self.catalog, parent=scope_or_outer)
            if mode == CERTAIN:
                forced_nonnull(select.where, scope)
        if select.where is None:
            return None
        return self.condition(select.where, scope, mode)

    # -- conditions -----------------------------------------------------
    def condition(self, cond: ast.SqlCond, scope: Scope, mode: str) -> ast.SqlCond:
        if isinstance(cond, ast.BoolOp):
            return ast.BoolOp(
                cond.op, *[self.condition(item, scope, mode) for item in cond.items]
            )
        if isinstance(cond, ast.NotOp):
            return self.condition(negate_sql(cond.item), scope, mode)
        if isinstance(cond, ast.BoolLiteral):
            return cond
        if isinstance(cond, ast.IsNull):
            # θ*(null(A)) = θ**(null(A)) = false; dually for const(A):
            # possible worlds contain no nulls.
            return ast.BoolLiteral(cond.negated)
        if isinstance(cond, ast.Comparison):
            return self.comparison(cond, scope, mode)
        if isinstance(cond, ast.Exists):
            sub_mode = (
                _flip(mode) if cond.negated else mode
            )
            rewritten = self.subquery(cond.query, scope, sub_mode)
            return ast.Exists(rewritten, negated=cond.negated)
        if isinstance(cond, ast.InPredicate):
            return self.in_predicate(cond, scope, mode)
        raise RewriteError(f"cannot rewrite condition {cond!r}", node=cond)

    def comparison(self, comp: ast.Comparison, scope: Scope, mode: str) -> ast.SqlCond:
        self._check_operand(comp.left, scope, mode)
        self._check_operand(comp.right, scope, mode)
        if mode == CERTAIN:
            # SQL-adjusted θ*: 3VL only selects TRUE comparisons, which
            # already implies both operands are non-null constants.
            return comp
        escapes: List[ast.SqlCond] = []
        for side in (comp.left, comp.right):
            columns = columns_in_expr(side)
            if columns and any(scope.is_possibly_null(c) for c in columns):
                escapes.append(ast.IsNull(side))
        if not escapes:
            return comp
        return ast.BoolOp("or", comp, *escapes)

    def _check_operand(self, expr: ast.SqlExpr, scope: Scope, mode: str) -> None:
        """Resolve columns early (clear errors) — scalar subqueries are
        the paper's black boxes and stay untouched in either mode."""
        for column in columns_in_expr(expr):
            scope.resolve(column)

    def in_predicate(self, pred: ast.InPredicate, scope: Scope, mode: str) -> ast.SqlCond:
        if pred.values is not None:
            if mode == CERTAIN:
                return pred
            base = ast.InPredicate(
                expr=pred.expr, values=pred.values, negated=pred.negated
            )
            if pred.negated:
                # x NOT IN (c1..cn) possibly holds unless x certainly
                # equals some ci; a null x possibly differs from all.
                escapes = self._expr_escape(pred.expr, scope)
                return ast.BoolOp("or", base, *escapes) if escapes else base
            escapes = self._expr_escape(pred.expr, scope)
            return ast.BoolOp("or", base, *escapes) if escapes else base
        # Subquery IN.
        assert pred.query is not None
        if not pred.negated and mode == CERTAIN:
            return ast.InPredicate(
                expr=pred.expr, query=self.subquery(pred.query, scope, CERTAIN)
            )
        # Remaining cases need the membership comparison inside the
        # subquery, where it can be strengthened/weakened uniformly.
        exists = self._in_to_exists(pred, scope)
        return self.condition(exists, scope, mode)

    def _expr_escape(self, expr: ast.SqlExpr, scope: Scope) -> List[ast.SqlCond]:
        columns = columns_in_expr(expr)
        if columns and any(scope.is_possibly_null(c) for c in columns):
            return [ast.IsNull(expr)]
        return []

    def _in_to_exists(self, pred: ast.InPredicate, scope: Scope) -> ast.Exists:
        """``x [NOT] IN (SELECT y FROM …)`` → ``[NOT] EXISTS (… AND x = y)``.

        Equivalent under the certain-answer (first-order) semantics the
        rewriting targets; the rewriter then applies the usual mode
        rules to the equality.
        """
        query = pred.query
        assert query is not None
        if query.ctes or not isinstance(query.body, ast.Select):
            raise RewriteError("IN subquery must be a plain SELECT block", node=pred)
        sub = query.body
        if len(sub.columns) != 1 or isinstance(sub.columns[0], ast.Star):
            raise RewriteError("IN subquery must select exactly one column", node=pred)
        out = sub.columns[0]
        assert isinstance(out, ast.OutputColumn)
        # Re-qualify outer columns so they cannot be captured by the
        # subquery's own bindings.
        sub_scope = Scope(sub.tables, self.catalog, parent=scope)
        outer_expr = self._requalify(pred.expr, scope, sub_scope)
        membership = ast.Comparison("=", outer_expr, out.expr)
        new_where = _and(list(_conjuncts(sub.where)) + [membership])
        return ast.Exists(
            ast.Query(
                ast.Select(columns=(ast.Star(),), tables=sub.tables, where=new_where)
            ),
            negated=pred.negated,
        )

    def _requalify(self, expr: ast.SqlExpr, scope: Scope, sub_scope: Scope) -> ast.SqlExpr:
        if isinstance(expr, ast.ColumnRef):
            resolved = scope.resolve(expr)
            if resolved.binding in sub_scope.bindings:
                raise RewriteError(
                    f"binding {resolved.binding!r} is shadowed inside the IN "
                    "subquery; alias one of the tables",
                    node=expr,
                )
            return ast.ColumnRef(name=resolved.column, qualifier=resolved.binding)
        if isinstance(expr, ast.Concat):
            return ast.Concat(
                tuple(self._requalify(p, scope, sub_scope) for p in expr.parts)
            )
        return expr

    def subquery(self, query: ast.Query, outer: Scope, mode: str) -> ast.Query:
        if query.ctes:
            raise RewriteError("WITH inside subqueries is not supported", node=query.body)
        if not isinstance(query.body, ast.Select):
            raise RewriteError(
                "set operations inside subqueries are not supported", node=query.body
            )
        return ast.Query(body=self.select(query.body, outer, mode))


def _flip(mode: str) -> str:
    return POSSIBLE if mode == CERTAIN else CERTAIN


# ---------------------------------------------------------------------------
# Passes 2 and 3: structural transformations on NOT EXISTS subqueries
# ---------------------------------------------------------------------------


class _StructuralPasses:
    def __init__(self, catalog: Catalog, options: RewriteOptions):
        self.catalog = catalog
        self.options = options
        self.new_ctes: List[Tuple[str, ast.Query]] = []
        self._taken_names: Set[str] = set()

    # ------------------------------------------------------------------
    def process_body(self, body, outer: Optional[Scope]):
        if isinstance(body, ast.SetOp):
            return ast.SetOp(
                op=body.op,
                left=ast.Query(self.process_body(body.left.body, outer)),
                right=ast.Query(self.process_body(body.right.body, outer)),
                all=body.all,
            )
        assert isinstance(body, ast.Select)
        return self.process_select(body, outer)

    def process_select(self, select: ast.Select, outer: Optional[Scope]) -> ast.Select:
        scope = Scope(select.tables, self.catalog, parent=outer)
        if select.where is None:
            return select
        where = self.process_condition(select.where, scope)
        return ast.Select(
            columns=select.columns,
            tables=select.tables,
            where=where,
            distinct=select.distinct,
        )

    def process_condition(self, cond: ast.SqlCond, scope: Scope) -> ast.SqlCond:
        if isinstance(cond, ast.BoolOp):
            return ast.BoolOp(
                cond.op, *[self.process_condition(item, scope) for item in cond.items]
            )
        if isinstance(cond, ast.NotOp):
            return ast.NotOp(self.process_condition(cond.item, scope))
        if isinstance(cond, ast.Exists):
            processed = self._process_subquery(cond.query, scope)
            pred = ast.Exists(processed, negated=cond.negated)
            if cond.negated:
                return self._transform_not_exists(pred, scope)
            return pred
        if isinstance(cond, ast.InPredicate) and cond.query is not None:
            return ast.InPredicate(
                expr=cond.expr,
                query=self._process_subquery(cond.query, scope),
                negated=cond.negated,
            )
        return cond

    def _process_subquery(self, query: ast.Query, outer: Scope) -> ast.Query:
        if query.ctes or not isinstance(query.body, ast.Select):
            return query
        return ast.Query(body=self.process_select(query.body, outer))

    # ------------------------------------------------------------------
    def _transform_not_exists(self, pred: ast.Exists, outer: Scope) -> ast.SqlCond:
        if self.options.fold_views != "never":
            pred = self._fold_dimension_views(pred, outer)
        if self.options.split != "never":
            return self._split_disjunctions(pred, outer)
        return pred

    # -- resolution helpers ---------------------------------------------
    def _cond_refs(self, cond: ast.SqlCond, scope: Scope):
        """(local bindings, has outer refs, is complex) for a condition."""
        bindings: Set[str] = set()
        outer_ref = False
        complex_cond = False

        def visit(c: ast.SqlCond):
            nonlocal outer_ref, complex_cond
            if isinstance(c, ast.BoolOp):
                for item in c.items:
                    visit(item)
            elif isinstance(c, ast.NotOp):
                visit(c.item)
            elif isinstance(c, ast.Comparison):
                visit_exprs(c.left, c.right)
            elif isinstance(c, ast.IsNull):
                visit_exprs(c.expr)
            elif isinstance(c, ast.InPredicate):
                visit_exprs(c.expr)
                if c.query is not None:
                    complex_cond = True
                else:
                    visit_exprs(*(c.values or ()))
            elif isinstance(c, ast.Exists):
                complex_cond = True

        def visit_exprs(*exprs: ast.SqlExpr):
            nonlocal outer_ref
            for expr in exprs:
                for column in columns_in_expr(expr):
                    resolved = scope.resolve(column)
                    if resolved.depth == 0:
                        bindings.add(resolved.binding)
                    else:
                        outer_ref = True

        visit(cond)
        return bindings, outer_ref, complex_cond

    # ------------------------------------------------------------------
    # Pass 2: dimension view folding
    # ------------------------------------------------------------------
    def _fold_dimension_views(self, pred: ast.Exists, outer: Scope) -> ast.Exists:
        query = pred.query
        if query.ctes or not isinstance(query.body, ast.Select):
            return pred
        select = query.body
        if select.where is None or len(select.tables) < 2:
            return pred
        scope = Scope(select.tables, self.catalog, parent=outer)
        conjuncts = list(_conjuncts(select.where))
        try:
            info = [self._cond_refs(c, scope) for c in conjuncts]
        except RewriteError:
            return pred
        if any(complex_cond for _, _, complex_cond in info):
            return pred

        anchors: Set[str] = set()
        for (bindings, outer_ref, _), _c in zip(info, conjuncts):
            if outer_ref:
                anchors |= bindings
        if not anchors:
            return pred
        others = [t.binding for t in select.tables if t.binding not in anchors]
        if not others:
            return pred

        clusters = self._connected_components(others, info)
        tables = list(select.tables)
        remaining = list(conjuncts)
        for cluster in clusters:
            folded = self._try_fold_cluster(
                cluster, tables, remaining, info, scope, anchors
            )
            if folded is None:
                continue
            tables, remaining = folded
            info = [self._cond_refs(c, scope) for c in remaining]

        if tables == list(select.tables):
            return pred
        new_select = ast.Select(
            columns=select.columns,
            tables=tuple(tables),
            where=_and(remaining),
            distinct=select.distinct,
        )
        return ast.Exists(ast.Query(body=new_select), negated=True)

    def _connected_components(self, bindings: List[str], info) -> List[Set[str]]:
        neighbours: Dict[str, Set[str]] = {b: set() for b in bindings}
        pool = set(bindings)
        for cond_bindings, outer_ref, _ in info:
            local = cond_bindings & pool
            if len(local) >= 2 and not outer_ref:
                for a in local:
                    neighbours[a] |= local - {a}
        components: List[Set[str]] = []
        seen: Set[str] = set()
        for b in bindings:
            if b in seen:
                continue
            stack, component = [b], set()
            while stack:
                current = stack.pop()
                if current in component:
                    continue
                component.add(current)
                stack.extend(neighbours[current] - component)
            seen |= component
            components.append(component)
        return components

    def _try_fold_cluster(
        self,
        cluster: Set[str],
        tables: List[ast.TableRef],
        conjuncts: List[ast.SqlCond],
        info,
        scope: Scope,
        anchors: Set[str],
    ) -> Optional[Tuple[List[ast.TableRef], List[ast.SqlCond]]]:
        bridges: List[int] = []
        internal: List[int] = []
        for i, (bindings, outer_ref, _) in enumerate(info):
            touches = bindings & cluster
            if not touches:
                continue
            if outer_ref:
                return None  # cluster condition correlated with outer scope
            if bindings <= cluster:
                internal.append(i)
            elif bindings - cluster <= anchors:
                bridges.append(i)
            else:
                return None  # tangled with another cluster
        if len(bridges) != 1:
            return None
        bridge = conjuncts[bridges[0]]
        parsed = self._parse_bridge(bridge, scope, cluster)
        if parsed is None:
            return None
        anchor_expr, cluster_col = parsed

        cluster_tables = [t for t in tables if t.binding in cluster]
        view_where = _and([conjuncts[i] for i in internal])
        view_name = self._fresh_view_name(cluster_col)
        resolved = scope.resolve(cluster_col)
        out_col = ast.ColumnRef(name=resolved.column, qualifier=cluster_col.qualifier)
        view_select = ast.Select(
            columns=(ast.OutputColumn(expr=out_col),),
            tables=tuple(cluster_tables),
            where=view_where,
        )
        view_query = (
            self._unionize(view_select)
            if self.options.union_views
            else ast.Query(body=view_select)
        )
        self.catalog.register_view(view_name, view_query)
        self.new_ctes.append((view_name, view_query))

        new_tables = [t for t in tables if t.binding not in cluster]
        new_tables.append(ast.TableRef(name=view_name))
        drop = set(bridges) | set(internal)
        new_conjuncts = [c for i, c in enumerate(conjuncts) if i not in drop]
        new_bridge = ast.BoolOp(
            "or",
            ast.Comparison("=", anchor_expr, ast.ColumnRef(name=resolved.column)),
            ast.IsNull(anchor_expr),
        )
        new_conjuncts.append(new_bridge)
        return new_tables, new_conjuncts

    def _parse_bridge(
        self, cond: ast.SqlCond, scope: Scope, cluster: Set[str]
    ) -> Optional[Tuple[ast.SqlExpr, ast.ColumnRef]]:
        """Match ``(x = k OR x IS NULL)`` with ``x`` outside and ``k``
        inside the cluster; return ``(x, k)``."""
        if not isinstance(cond, ast.BoolOp) or cond.op != "or" or len(cond.items) != 2:
            return None
        comparison = escape = None
        for item in cond.items:
            if isinstance(item, ast.Comparison) and item.op == "=":
                comparison = item
            elif isinstance(item, ast.IsNull) and not item.negated:
                escape = item
        if comparison is None or escape is None:
            return None
        sides = [comparison.left, comparison.right]
        if not all(isinstance(s, ast.ColumnRef) for s in sides):
            return None
        resolved = [scope.resolve(s) for s in sides]  # type: ignore[arg-type]
        in_cluster = [r.depth == 0 and r.binding in cluster for r in resolved]
        if in_cluster == [False, True]:
            anchor, cluster_col = sides
        elif in_cluster == [True, False]:
            cluster_col, anchor = sides
        else:
            return None
        if not isinstance(escape.expr, ast.ColumnRef):
            return None
        if scope.resolve(escape.expr).key != scope.resolve(anchor).key:  # type: ignore[arg-type]
            return None
        return anchor, cluster_col  # type: ignore[return-value]

    def _fresh_view_name(self, cluster_col: ast.ColumnRef) -> str:
        stem = cluster_col.name
        for prefix in ("p_", "s_", "c_", "o_", "l_", "n_", "r_", "ps_"):
            if stem.startswith(prefix):
                stem = stem[len(prefix):]
                break
        stem = stem.replace("key", "") or "dim"
        base = f"{stem}_view"
        name, i = base, 2
        while name in self._taken_names or self.catalog.has_table(name):
            name = f"{base}{i}"
            i += 1
        self._taken_names.add(name)
        return name

    # ------------------------------------------------------------------
    # Pass 3: disjunction splitting
    # ------------------------------------------------------------------
    def _split_disjunctions(self, pred: ast.Exists, outer: Scope) -> ast.SqlCond:
        query = pred.query
        if query.ctes or not isinstance(query.body, ast.Select):
            return pred
        select = query.body
        if select.where is None:
            return pred
        scope = Scope(select.tables, self.catalog, parent=outer)
        conjuncts = list(_conjuncts(select.where))
        try:
            info = [self._cond_refs(c, scope) for c in conjuncts]
        except RewriteError:
            return pred

        split_idx: List[int] = []
        for i, cond in enumerate(conjuncts):
            if not isinstance(cond, ast.BoolOp) or cond.op != "or":
                continue
            if self.options.split == "always" or self._worth_splitting(
                i, conjuncts, info, scope
            ):
                split_idx.append(i)
        if not split_idx:
            return pred

        combo_count = 1
        for i in split_idx:
            combo_count *= len(conjuncts[i].items)  # type: ignore[union-attr]
        if combo_count > _MAX_SPLIT_COMBOS:
            return pred

        kept = [c for i, c in enumerate(conjuncts) if i not in split_idx]
        choices = [conjuncts[i].items for i in split_idx]  # type: ignore[union-attr]
        blocks: List[ast.SqlCond] = []
        for combo in itertools.product(*choices):
            block_conds = list(kept)
            for chosen in combo:
                if isinstance(chosen, ast.BoolOp) and chosen.op == "and":
                    block_conds.extend(chosen.items)
                else:
                    block_conds.append(chosen)
            blocks.append(self._build_block(select, block_conds, scope))
        return blocks[0] if len(blocks) == 1 else ast.BoolOp("and", *blocks)

    def _worth_splitting(self, i: int, conjuncts, info, scope: Scope) -> bool:
        """The paper's two reasons to split: decorrelation and join ORs."""
        or_cond = conjuncts[i]
        assert isinstance(or_cond, ast.BoolOp)
        # (b) the OR blocks an equi-join between two subquery tables.
        for item in or_cond.items:
            if isinstance(item, ast.Comparison):
                bindings, _outer_ref, _ = self._cond_refs(item, scope)
                if len(bindings) >= 2:
                    return True
        # (a) some disjunct is uncorrelated while the block otherwise has
        # no mandatory correlation: splitting yields a decorrelated
        # NOT EXISTS the engine can evaluate once and short-circuit on.
        others_correlated = any(
            outer_ref for j, (_b, outer_ref, _c) in enumerate(info) if j != i
        )
        if others_correlated:
            return False
        _bindings, this_correlated, _ = info[i]
        if not this_correlated:
            return False
        for item in or_cond.items:
            _b, outer_ref, _c = self._cond_refs(item, scope)
            if not outer_ref:
                return True
        return False

    def _build_block(
        self, select: ast.Select, conds: List[ast.SqlCond], scope: Scope
    ) -> ast.Exists:
        referenced = self._referenced_bindings(conds, scope)
        if referenced is None:
            tables = list(select.tables)
            guards: List[ast.SqlCond] = []
        else:
            tables = [t for t in select.tables if t.binding in referenced]
            dropped = [t for t in select.tables if t.binding not in referenced]
            if not tables:
                tables = [select.tables[0]]
                dropped = [t for t in select.tables[1:]]
            guards = [
                ast.Exists(
                    ast.Query(
                        ast.Select(
                            columns=(ast.Star(),),
                            tables=(ast.TableRef(name=t.name, alias=t.alias),),
                        )
                    ),
                    negated=False,
                )
                for t in dropped
            ]
        return ast.Exists(
            ast.Query(
                ast.Select(
                    columns=(ast.Star(),),
                    tables=tuple(tables),
                    where=_and(conds + guards),
                )
            ),
            negated=True,
        )

    def _referenced_bindings(
        self, conds: List[ast.SqlCond], scope: Scope
    ) -> Optional[Set[str]]:
        referenced: Set[str] = set()
        for cond in conds:
            try:
                bindings, _outer, complex_cond = self._cond_refs(cond, scope)
            except RewriteError:
                return None
            if complex_cond:
                return None
            referenced |= bindings
        return referenced

    # ------------------------------------------------------------------
    # View bodies as UNIONs of null/match branches
    # ------------------------------------------------------------------
    def _unionize(self, select: ast.Select) -> ast.Query:
        scope = Scope(select.tables, self.catalog)
        body = self._unionize_body(select, scope)
        return ast.Query(body=body)

    def _unionize_body(self, select: ast.Select, scope: Scope):
        conjuncts = list(_conjuncts(select.where))
        for i, cond in enumerate(conjuncts):
            if isinstance(cond, ast.BoolOp) and cond.op == "or":
                branches = []
                for disjunct in cond.items:
                    rest = conjuncts[:i] + [disjunct] + conjuncts[i + 1 :]
                    branch = self._prune_select(
                        ast.Select(
                            columns=select.columns,
                            tables=select.tables,
                            where=_and(rest),
                        ),
                        scope,
                    )
                    branches.append(self._unionize_body(branch, scope))
                result = branches[0]
                for branch in branches[1:]:
                    result = ast.SetOp(
                        op="union",
                        left=ast.query_of(result),
                        right=ast.query_of(branch),
                    )
                return result
        return select

    def _prune_select(self, select: ast.Select, scope: Scope) -> ast.Select:
        """Drop FROM tables unreferenced by conditions *and* outputs,
        guarding each with EXISTS to preserve emptiness semantics."""
        conds = list(_conjuncts(select.where))
        referenced = self._referenced_bindings(conds, scope)
        if referenced is None:
            return select
        for col in select.columns:
            if isinstance(col, ast.Star):
                return select
            for ref in columns_in_expr(col.expr):
                resolved = scope.resolve(ref)
                if resolved.depth == 0:
                    referenced.add(resolved.binding)
        tables = [t for t in select.tables if t.binding in referenced]
        dropped = [t for t in select.tables if t.binding not in referenced]
        if not tables or not dropped:
            return select
        guards = [
            ast.Exists(
                ast.Query(
                    ast.Select(
                        columns=(ast.Star(),),
                        tables=(ast.TableRef(name=t.name, alias=t.alias),),
                    )
                ),
                negated=False,
            )
            for t in dropped
        ]
        return ast.Select(
            columns=select.columns,
            tables=tuple(tables),
            where=_and(conds + guards),
            distinct=select.distinct,
        )


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def rewrite_certain(
    query: TUnion[ast.Query, ast.Select, ast.SetOp],
    schema: DatabaseSchema,
    options: Optional[RewriteOptions] = None,
) -> ast.Query:
    """Rewrite *query* into its certain-answer version ``Q+`` (SQL level).

    The result, executed under standard SQL three-valued semantics,
    returns only certain answers of the original query (Theorem 1 with
    the Section 7 SQL adjustment); on databases without nulls it returns
    exactly the original answers.
    """
    options = options or RewriteOptions()
    query = ast.query_of(query)
    catalog = Catalog(schema)

    try:
        rewriter = _ModeRewriter(catalog)
        user_ctes: List[Tuple[str, ast.Query]] = []
        for name, sub in query.ctes:
            body = rewriter.body(sub.body, None, CERTAIN)
            rewritten_view = ast.Query(body=body)
            catalog.register_view(name, rewritten_view)
            user_ctes.append((name, rewritten_view))

        body = rewriter.body(query.body, None, CERTAIN)
    except RewriteError as err:
        raise _enrich_rewrite_error(err, query, schema)

    passes = _StructuralPasses(catalog, options)
    for name, _view in user_ctes:
        passes._taken_names.add(name)
    body = passes.process_body(body, None)

    return ast.Query(body=body, ctes=tuple(user_ctes + passes.new_ctes))


def _enrich_rewrite_error(
    err: RewriteError, query: ast.Query, schema: DatabaseSchema
) -> RewriteError:
    """Attach static-analyzer fragment diagnostics to a rewrite failure.

    The analyzer walks the whole query without bailing on the first
    problem, so the enriched error names *every* construct that left the
    rewritable fragment, each with its source span.  Imported lazily:
    :mod:`repro.analysis` sits above this module in the layering.
    """
    from repro.analysis.fragment import fragment_diagnostics

    try:
        err.diagnostics = fragment_diagnostics(query, schema)
    except Exception:  # pragma: no cover - analysis must never mask the error
        return err
    return err


def rewrite_possible(
    query: TUnion[ast.Query, ast.Select, ast.SetOp],
    schema: DatabaseSchema,
) -> ast.Query:
    """Rewrite *query* into its potential-answer version ``Q?``.

    Executed under standard SQL semantics, the result contains every
    tuple that could be an answer under *some* interpretation of the
    nulls (it represents potential answers in the sense of
    Definition 3).  Useful as the "maybe" companion of
    :func:`rewrite_certain`: ``Q?(D) ⊇ Q(D) ⊇ Q+(D)`` up to the usual
    SQL-null caveats.  ``WITH`` views are not supported here (they would
    need over-approximating view bodies).
    """
    query = ast.query_of(query)
    if query.ctes:
        raise RewriteError("WITH views are not supported by rewrite_possible")
    catalog = Catalog(schema)
    rewriter = _ModeRewriter(catalog)
    body = rewriter.body(query.body, None, POSSIBLE)
    return ast.Query(body=body)
