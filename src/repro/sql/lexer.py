"""Hand-written SQL lexer for the paper's query fragment."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

__all__ = ["Token", "tokenize", "SqlSyntaxError", "KEYWORDS", "line_col"]


def line_col(text: str, position: int) -> Tuple[int, int]:
    """1-based ``(line, column)`` of a character offset into *text*."""
    line = text.count("\n", 0, position) + 1
    col = position - (text.rfind("\n", 0, position) + 1) + 1
    return line, col


class SqlSyntaxError(ValueError):
    """Raised on malformed SQL input, with position information."""

    def __init__(self, message: str, position: int, text: str):
        line, col = line_col(text, position)
        super().__init__(f"{message} at line {line}, column {col}")
        self.position = position


KEYWORDS = frozenset(
    """
    select distinct from where and or not exists in is null like between
    as union intersect except all with avg sum count min max true false
    """.split()
)

#: Multi-character operators, longest first.
_OPERATORS = ("<>", "!=", "<=", ">=", "||", "=", "<", ">", "(", ")", ",", ".", "*", ";")


@dataclass(frozen=True)
class Token:
    kind: str  # 'keyword' | 'name' | 'number' | 'string' | 'op' | 'param' | 'eof'
    value: object
    position: int
    #: Offset one past the token's last character (``position`` when unset).
    end: Optional[int] = field(default=None, compare=False, repr=False)

    @property
    def stop(self) -> int:
        return self.position if self.end is None else self.end

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.value == word

    def __repr__(self) -> str:
        return f"{self.kind}:{self.value!r}"


def tokenize(text: str) -> List[Token]:
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[Token]:
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        # Comments.
        if text.startswith("--", i):
            nl = text.find("\n", i)
            i = n if nl == -1 else nl + 1
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end == -1:
                raise SqlSyntaxError("unterminated block comment", i, text)
            i = end + 2
            continue
        # Strings: single quotes, '' escapes a quote.
        if ch == "'":
            j = i + 1
            chunks = []
            while True:
                if j >= n:
                    raise SqlSyntaxError("unterminated string literal", i, text)
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":
                        chunks.append("'")
                        j += 2
                        continue
                    break
                chunks.append(text[j])
                j += 1
            yield Token("string", "".join(chunks), i, j + 1)
            i = j + 1
            continue
        # Numbers (integer or decimal).
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot not followed by a digit is a qualifier, not a decimal.
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            raw = text[i:j]
            value: object = float(raw) if "." in raw else int(raw)
            yield Token("number", value, i, j)
            i = j
            continue
        # Parameters: $name.
        if ch == "$":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            if j == i + 1:
                raise SqlSyntaxError("empty parameter name", i, text)
            yield Token("param", text[i + 1 : j], i, j)
            i = j
            continue
        # Identifiers and keywords.
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            lowered = word.lower()
            if lowered in KEYWORDS:
                yield Token("keyword", lowered, i, j)
            else:
                yield Token("name", word.lower(), i, j)
            i = j
            continue
        # Operators / punctuation.
        for op in _OPERATORS:
            if text.startswith(op, i):
                yield Token("op", "<>" if op == "!=" else op, i, i + len(op))
                i += len(op)
                break
        else:
            raise SqlSyntaxError(f"unexpected character {ch!r}", i, text)
    yield Token("eof", None, n, n)
