"""repro — certain-answer SQL evaluation over incomplete databases.

A complete reproduction of *Guagliardo & Libkin, "Making SQL Queries
Correct on Incomplete Databases: A Feasibility Study", PODS 2016*:

* an incomplete-database data model with marked/Codd nulls
  (:mod:`repro.data`);
* relational algebra with naive and SQL-3VL evaluation
  (:mod:`repro.algebra`);
* brute-force certain answers as ground truth (:mod:`repro.certain`);
* the Figure 2 translation ``Q → (Qt, Qf)`` and the paper's
  implementation-friendly Figure 3 translation ``Q → (Q+, Q?)``
  (:mod:`repro.translate`);
* a SQL front-end with a direct SQL→SQL certain-answer rewriter
  (:mod:`repro.sql`);
* an executable SQL engine standing in for PostgreSQL
  (:mod:`repro.engine`);
* the TPC-H substrate: schema, generators, null injection and queries
  Q1–Q4 with their appendix rewrites (:mod:`repro.tpch`);
* the Section 4 false-positive detectors (:mod:`repro.fp`);
* harnesses regenerating Figure 1, Figure 4, Table 1 and the Section
  5/7 findings (:mod:`repro.experiments`).

Quickstart::

    >>> from repro import Null, Relation, Database, execute_sql, certain_rewrite
    >>> from repro.data.schema import DatabaseSchema, make_schema
    >>> db = Database({"r": Relation(("a",), [(1,)]),
    ...                "s": Relation(("a",), [(Null(),)])})
    >>> bad = "SELECT a FROM r WHERE NOT EXISTS (SELECT * FROM s WHERE s.a = r.a)"
    >>> list(execute_sql(db, bad))         # SQL returns a false positive
    [(1,)]
    >>> schema = DatabaseSchema()
    >>> _ = schema.add(make_schema("r", [("a", "int")]))
    >>> _ = schema.add(make_schema("s", [("a", "int")]))
    >>> list(execute_sql(db, certain_rewrite(bad, schema)))
    []
"""

from repro.data import Database, Null, Relation, Valuation
from repro.data.schema import Attribute, DatabaseSchema, RelationSchema, make_schema
from repro.algebra import evaluate
from repro.certain import certain_answers, certain_answers_with_nulls
from repro.engine import execute_sql, explain_sql
from repro.sql import parse_sql, to_sql
from repro.sql.rewrite import RewriteOptions, rewrite_certain, rewrite_possible
from repro.translate import translate_improved, translate_libkin

__version__ = "1.0.0"


def certain_rewrite(sql, schema, options=None):
    """Parse SQL text (or take an AST) and return the ``Q+`` rewrite AST.

    Convenience wrapper around :func:`repro.sql.parse_sql` and
    :func:`repro.sql.rewrite.rewrite_certain`.
    """
    if isinstance(sql, str):
        sql = parse_sql(sql)
    return rewrite_certain(sql, schema, options)


__all__ = [
    "Database",
    "Null",
    "Relation",
    "Valuation",
    "Attribute",
    "DatabaseSchema",
    "RelationSchema",
    "make_schema",
    "evaluate",
    "certain_answers",
    "certain_answers_with_nulls",
    "execute_sql",
    "explain_sql",
    "parse_sql",
    "to_sql",
    "RewriteOptions",
    "rewrite_certain",
    "rewrite_possible",
    "certain_rewrite",
    "translate_improved",
    "translate_libkin",
    "__version__",
]
