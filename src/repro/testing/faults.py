"""Fault injection for robustness testing.

Two hook families, both off (zero overhead beyond one global load) in
production:

* **Scan faults** fire at the Nth row of any scan of a named table:
  they can raise, sleep (simulating a stall the deadline must catch),
  or kill the process (``exit_code``, simulating a crashed worker).
  Installed via :data:`repro.engine.blocks.SCAN_FAULT_HOOK`, which
  wraps relations handed out by ``ExecContext.relation``.
* **Task faults** fire when an experiment-harness worker starts the
  task with a matching key (:func:`check_task_fault` is called at the
  top of each worker body).  Same actions; ``times=`` bounds how often
  a fault fires, so "fail once then succeed" retry scenarios are
  expressible.

Registries are plain module state, so ``multiprocessing`` pool workers
on a ``fork`` start method (the Linux default, which the robustness
suite assumes) inherit faults installed in the parent — note that each
worker inherits its *own copy*, so ``times=`` counts down per process.
Use :func:`clear_faults` (or the context managers) to uninstall.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.engine import blocks

__all__ = [
    "InjectedFault",
    "Fault",
    "install_scan_fault",
    "install_task_fault",
    "check_task_fault",
    "clear_faults",
    "scan_fault",
    "task_fault",
]


class InjectedFault(RuntimeError):
    """Default error raised by a firing fault."""


class Fault:
    """One injected fault: what happens (delay/error/exit) and how often."""

    def __init__(
        self,
        *,
        error: Optional[BaseException] = None,
        delay: float = 0.0,
        exit_code: Optional[int] = None,
        times: Optional[int] = None,
        message: str = "injected fault",
    ):
        self.error = error
        self.delay = delay
        self.exit_code = exit_code
        self.times = times
        self.message = message
        self.fired = 0

    def fire(self) -> None:
        if self.times is not None and self.fired >= self.times:
            return
        self.fired += 1
        if self.delay:
            time.sleep(self.delay)
        if self.exit_code is not None:
            # A hard crash, as an OOM-killed or segfaulting worker would
            # produce: no exception propagation, no cleanup.
            os._exit(self.exit_code)
        if self.error is not None:
            raise self.error
        if self.delay == 0.0:
            raise InjectedFault(self.message)


class _FaultyRows(list):
    """A row list that fires a fault when iteration reaches row ``nth``."""

    def __init__(self, rows, nth: int, fault: Fault):
        super().__init__(rows)
        self._nth = nth
        self._fault = fault

    def __iter__(self):
        for i, row in enumerate(super().__iter__()):
            if i == self._nth:
                self._fault.fire()
            yield row


class _FaultyRelation:
    """Duck-typed stand-in for :class:`~repro.data.relation.Relation`
    exposing the two attributes the engine reads."""

    __slots__ = ("attributes", "rows")

    def __init__(self, relation, nth: int, fault: Fault):
        self.attributes = relation.attributes
        self.rows = _FaultyRows(relation.rows, nth, fault)


#: table name -> (nth row, fault)
_scan_faults: Dict[str, List] = {}
#: task key -> fault
_task_faults: Dict[str, Fault] = {}


def _scan_hook(name: str, relation):
    entry = _scan_faults.get(name)
    if entry is None:
        return relation
    nth, fault = entry
    return _FaultyRelation(relation, nth, fault)


def install_scan_fault(table: str, nth: int = 0, **fault_kwargs) -> Fault:
    """Fire a fault at the ``nth`` row of every scan of ``table``."""
    fault = Fault(message=f"injected scan fault on {table!r} row {nth}", **fault_kwargs)
    _scan_faults[table] = (nth, fault)
    blocks.SCAN_FAULT_HOOK = _scan_hook
    return fault


def install_task_fault(key: str, **fault_kwargs) -> Fault:
    """Fire a fault when a harness worker picks up task ``key``."""
    fault = Fault(message=f"injected task fault on {key!r}", **fault_kwargs)
    _task_faults[key] = fault
    return fault


def check_task_fault(key: str) -> None:
    """Called by harness worker bodies; fires any fault bound to ``key``."""
    fault = _task_faults.get(key)
    if fault is not None:
        fault.fire()


def clear_faults() -> None:
    """Uninstall every registered fault and detach the engine hook."""
    _scan_faults.clear()
    _task_faults.clear()
    blocks.SCAN_FAULT_HOOK = None


@contextmanager
def scan_fault(table: str, nth: int = 0, **fault_kwargs):
    fault = install_scan_fault(table, nth, **fault_kwargs)
    try:
        yield fault
    finally:
        clear_faults()


@contextmanager
def task_fault(key: str, **fault_kwargs):
    fault = install_task_fault(key, **fault_kwargs)
    try:
        yield fault
    finally:
        clear_faults()
