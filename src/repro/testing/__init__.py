"""Test-support utilities (fault injection for the robustness suite)."""
