"""Specialised false-positive detectors (Section 4, Algorithms 1 and 2).

Computing certain answers is coNP-hard, so the paper instead detects
*some* false positives with cheap query-specific checks, yielding a
lower bound on the false-positive rate.  Each detector takes the
parameter bindings, the database and one answer tuple, and returns
``True`` if the tuple is provably not a certain answer.

The common idea: find a null in a comparison relevant to the answer's
``NOT EXISTS`` — the unknown value could be chosen so that the excluded
witness exists, falsifying the answer.

All detectors are validated against brute-force certain answers on tiny
instances in ``tests/fp/test_detectors_sound.py``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Sequence, Tuple

from repro.algebra.conditions import like_match
from repro.data.database import Database
from repro.data.nulls import is_null

__all__ = [
    "detect_q1_false_positive",
    "detect_q2_false_positive",
    "detect_q3_false_positive",
    "detect_q4_false_positive",
    "detector_for",
    "count_false_positives",
    "ANALYZER_RULES",
]

#: Static-analyzer rules (see :mod:`repro.analysis.rules`) whose firing
#: predicts the false-positive shape each detector exploits: Q1–Q3 are
#: nullable comparisons under ``NOT EXISTS`` (SA101); Q4 additionally
#: hinges on ``p_name LIKE`` over a nullable column (SA103).
#: ``tests/analysis/test_tpch_queries.py`` pins this correspondence.
ANALYZER_RULES: Dict[str, Tuple[str, ...]] = {
    "Q1": ("SA101",),
    "Q2": ("SA101",),
    "Q3": ("SA101",),
    "Q4": ("SA101", "SA103"),
}

Row = Tuple[object, ...]


def detect_q1_false_positive(
    params: Dict[str, object], db: Database, answer: Row
) -> bool:
    """Algorithm 1.

    ``answer`` is ``(s_suppkey, o_orderkey)``.  Scan the order's
    lineitems: a *different* (or unknown) supplier whose delivery dates
    are late or unknown can be interpreted as a second late supplier,
    falsifying the ``NOT EXISTS``.
    """
    s_suppkey, o_orderkey = answer
    lineitem = db["lineitem"]
    i_okey = lineitem.index_of("l_orderkey")
    i_skey = lineitem.index_of("l_suppkey")
    i_commit = lineitem.index_of("l_commitdate")
    i_receipt = lineitem.index_of("l_receiptdate")
    for t in lineitem.hash_index("l_orderkey").get(o_orderkey, ()):
        assert t[i_okey] == o_orderkey
        x = t[i_skey]
        if not is_null(x) and x == s_suppkey:
            continue
        d1, d2 = t[i_commit], t[i_receipt]
        if is_null(d1) or is_null(d2) or d2 > d1:
            return True
    return False


def detect_q2_false_positive(
    params: Dict[str, object], db: Database, answer: Row
) -> bool:
    """Q2 check: an order with unknown customer could belong to anyone —
    including the answer customer — so *every* answer is falsifiable."""
    orders = db["orders"]
    i_cust = orders.index_of("o_custkey")
    return any(is_null(row[i_cust]) for row in orders.rows)


def detect_q3_false_positive(
    params: Dict[str, object], db: Database, answer: Row
) -> bool:
    """Q3 check: a lineitem of the order with unknown supplier may well
    be from a different supplier than ``$supp_key``."""
    (o_orderkey,) = answer
    lineitem = db["lineitem"]
    i_skey = lineitem.index_of("l_suppkey")
    return any(
        is_null(t[i_skey])
        for t in lineitem.hash_index("l_orderkey").get(o_orderkey, ())
    )


def detect_q4_false_positive(
    params: Dict[str, object], db: Database, answer: Row
) -> bool:
    """Algorithm 2.

    For each lineitem of the order, check whether some interpretation of
    the nulls produces a part with the colour (``P``) *and* a supplier
    from the nation (``S``); if both, the ``NOT EXISTS`` is falsifiable.
    """
    (o_orderkey,) = answer
    color = str(params["color"])
    nation_name = params["nation"]

    lineitem = db["lineitem"]
    part = db["part"]
    supplier = db["supplier"]
    nation = db["nation"]

    i_partkey = lineitem.index_of("l_partkey")
    i_suppkey = lineitem.index_of("l_suppkey")
    p_name = part.index_of("p_name")
    s_nat = supplier.index_of("s_nationkey")
    n_name = nation.index_of("n_name")

    def part_matches(partkey) -> bool:
        if is_null(partkey):
            candidates: Iterable[Row] = part.rows
        else:
            candidates = part.hash_index("p_partkey").get(partkey, ())
        for p in candidates:
            name = p[p_name]
            if is_null(name) or like_match(name, f"%{color}%"):
                return True
        return False

    def supplier_matches(suppkey) -> bool:
        if is_null(suppkey):
            candidates: Iterable[Row] = supplier.rows
        else:
            candidates = supplier.hash_index("s_suppkey").get(suppkey, ())
        for s in candidates:
            x = s[s_nat]
            if is_null(x):
                return True
            for n in nation.hash_index("n_nationkey").get(x, ()):
                if n[n_name] == nation_name:
                    return True
        return False

    for t in lineitem.hash_index("l_orderkey").get(o_orderkey, ()):
        if part_matches(t[i_partkey]) and supplier_matches(t[i_suppkey]):
            return True
    return False


_DETECTORS: Dict[str, Callable[[Dict[str, object], Database, Row], bool]] = {
    "Q1": detect_q1_false_positive,
    "Q2": detect_q2_false_positive,
    "Q3": detect_q3_false_positive,
    "Q4": detect_q4_false_positive,
}


def detector_for(query_id: str) -> Callable[[Dict[str, object], Database, Row], bool]:
    try:
        return _DETECTORS[query_id]
    except KeyError:
        raise KeyError(f"no detector for {query_id!r}; have {sorted(_DETECTORS)}") from None


def count_false_positives(
    query_id: str,
    params: Dict[str, object],
    db: Database,
    answers: Sequence[Row],
) -> int:
    """How many of *answers* are provably false positives (lower bound)."""
    detect = detector_for(query_id)
    return sum(1 for answer in answers if detect(params, db, answer))
