"""False-positive detectors for Q1–Q4 (Section 4)."""

from repro.fp.detectors import (
    detect_q1_false_positive,
    detect_q2_false_positive,
    detect_q3_false_positive,
    detect_q4_false_positive,
    detector_for,
    count_false_positives,
)

__all__ = [
    "detect_q1_false_positive",
    "detect_q2_false_positive",
    "detect_q3_false_positive",
    "detect_q4_false_positive",
    "detector_for",
    "count_false_positives",
]
