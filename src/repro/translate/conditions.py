"""Condition translations ``θ → θ*`` and ``θ → θ**``.

``θ*`` holds only when ``θ`` is *certainly* true (used in the positive
parts of the translations), ``θ** = ¬(¬θ)*`` holds whenever ``θ`` is
*possibly* true (used for potential answers).  Section 2/6 give the
rules for (dis)equality; Section 7 adds:

* the *SQL adjustment* — SQL nulls are coarser than Codd nulls, so
  ``(A = B)*`` must additionally assert ``const(A) ∧ const(B)`` and
  ``(A ≠ B)**`` must allow ``null(A) ∨ null(B)``;
* other comparison operators (``<``, ``>``, ``LIKE``, …): "there is
  nothing special about (dis)equality" — a comparison is certainly true
  only on constants satisfying it, and possibly true also when an
  operand is null.

Both maps are monotone w.r.t. the Boolean structure, which is what
Corollary 1 needs: replacing ``θ*`` by a stronger condition or ``θ**``
by a weaker one preserves the guarantees of Theorem 1.
"""

from __future__ import annotations

from typing import List

from repro.algebra.conditions import (
    And,
    Attr,
    Comparison,
    Condition,
    FalseCond,
    Not,
    NullTest,
    Or,
    TrueCond,
    negate,
)

__all__ = ["translate_certain", "translate_possible"]


def _const_guards(comparison: Comparison) -> List[Condition]:
    """``const(X)`` for every attribute operand of the comparison."""
    guards: List[Condition] = []
    for term in (comparison.left, comparison.right):
        if isinstance(term, Attr):
            guards.append(NullTest(term, is_null=False))
    return guards


def _null_escapes(comparison: Comparison) -> List[Condition]:
    """``null(X)`` for every attribute operand of the comparison."""
    escapes: List[Condition] = []
    for term in (comparison.left, comparison.right):
        if isinstance(term, Attr):
            escapes.append(NullTest(term, is_null=True))
    return escapes


def translate_certain(cond: Condition, sql_adjusted: bool = False) -> Condition:
    """``θ*``: true only where ``θ`` holds under *every* valuation.

    With ``sql_adjusted=False`` (marked-null semantics, Section 2):

    * ``(A = B)* = A = B``  — naive evaluation already equates only
      identical marked nulls, and an identical null is certainly equal
      to itself;
    * ``(A ≠ B)* = A ≠ B ∧ const(A) ∧ const(B)``.

    With ``sql_adjusted=True`` (Section 7), equality also requires its
    operands to be constants, because SQL cannot recognise a null as
    equal to itself.
    """
    if isinstance(cond, (TrueCond, FalseCond)):
        return cond
    if isinstance(cond, And):
        return And(*[translate_certain(c, sql_adjusted) for c in cond.items])
    if isinstance(cond, Or):
        return Or(*[translate_certain(c, sql_adjusted) for c in cond.items])
    if isinstance(cond, Not):
        return translate_certain(negate(cond.item), sql_adjusted)
    if isinstance(cond, NullTest):
        # Under the closed-world semantics every valuation removes all
        # nulls, so ``null(A)`` is certainly false and ``const(A)``
        # certainly true on every possible world.
        return FalseCond() if cond.is_null else TrueCond()
    if isinstance(cond, Comparison):
        if cond.op == "=" and not sql_adjusted:
            return cond
        guards = _const_guards(cond)
        if not guards:
            return cond
        return And(cond, *guards)
    raise TypeError(f"cannot translate condition {cond!r}")


def translate_possible(cond: Condition, sql_adjusted: bool = False) -> Condition:
    """``θ** = ¬(¬θ)*``: true wherever ``θ`` holds under *some* valuation.

    * ``(A = B)** = A = B ∨ null(A) ∨ null(B)``;
    * ``(A ≠ B)**`` is ``A ≠ B`` for marked nulls (naive evaluation of a
      disequality on distinct nulls is already true) and gains
      ``∨ null(A) ∨ null(B)`` under the SQL adjustment;
    * order and ``LIKE`` comparisons gain the null escapes in both
      modes, since their naive evaluation on nulls is false while some
      valuation may satisfy them.
    """
    if isinstance(cond, (TrueCond, FalseCond)):
        return cond
    if isinstance(cond, And):
        return And(*[translate_possible(c, sql_adjusted) for c in cond.items])
    if isinstance(cond, Or):
        return Or(*[translate_possible(c, sql_adjusted) for c in cond.items])
    if isinstance(cond, Not):
        return translate_possible(negate(cond.item), sql_adjusted)
    if isinstance(cond, NullTest):
        # No possible world retains a null: ``null(A)`` is unsatisfiable,
        # ``const(A)`` universally true.
        return FalseCond() if cond.is_null else TrueCond()
    if isinstance(cond, Comparison):
        if cond.op == "<>" and not sql_adjusted:
            return cond
        escapes = _null_escapes(cond)
        if not escapes:
            return cond
        return Or(cond, *escapes)
    raise TypeError(f"cannot translate condition {cond!r}")
