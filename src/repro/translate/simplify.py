"""Post-translation simplifications (Section 7).

Two families:

* **Boolean cleanup** — the condition translations introduce ``⊤``/``⊥``
  leaves (e.g. ``const(A)`` on a provably null-free operand) and
  duplicated null escapes; flattening and pruning them keeps the
  translated queries readable and executable.
* **The key rule** — if ``R`` has a (non-null) primary key and
  ``S ⊆ R``, then ``R ▷⇑ S = R − S``: two distinct tuples of ``R``
  cannot unify, as their keys would have to coincide.  This is exactly
  the observation the paper uses to turn the translated ``Q+3`` into a
  plain ``NOT EXISTS`` query.  Containment ``S ⊆ R`` is established by
  a conservative structural analysis (selections, intersections and
  differences preserve it; a projection of a product onto ``R``'s
  attributes yields tuples of ``R``; and so on).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.algebra.conditions import (
    And,
    Condition,
    FalseCond,
    Not,
    Or,
    TrueCond,
    negate,
)
from repro.algebra.expr import (
    AntiJoin,
    Difference,
    Division,
    Expr,
    Intersection,
    Join,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    SemiJoin,
    Union,
    UnifAntiJoin,
    UnifSemiJoin,
)
from repro.data.schema import DatabaseSchema

__all__ = ["simplify", "simplify_condition", "key_antijoin_to_difference"]


# ---------------------------------------------------------------------------
# Boolean cleanup
# ---------------------------------------------------------------------------


def simplify_condition(cond: Condition) -> Condition:
    """Flatten ∧/∨, drop neutral elements, deduplicate, fold constants."""
    if isinstance(cond, Not):
        return simplify_condition(negate(cond.item))
    if isinstance(cond, And):
        items = []
        for item in cond.items:
            item = simplify_condition(item)
            if isinstance(item, FalseCond):
                return FalseCond()
            if isinstance(item, TrueCond):
                continue
            if item not in items:
                items.append(item)
        if not items:
            return TrueCond()
        if len(items) == 1:
            return items[0]
        return And(*items)
    if isinstance(cond, Or):
        items = []
        for item in cond.items:
            item = simplify_condition(item)
            if isinstance(item, TrueCond):
                return TrueCond()
            if isinstance(item, FalseCond):
                continue
            if item not in items:
                items.append(item)
        if not items:
            return FalseCond()
        if len(items) == 1:
            return items[0]
        return Or(*items)
    return cond


# ---------------------------------------------------------------------------
# Structural containment for the key rule
# ---------------------------------------------------------------------------


def _is_base(expr: Expr, name: str) -> bool:
    return isinstance(expr, RelationRef) and expr.name == name


def _contained_in(expr: Expr, name: str, attrs: Tuple[str, ...]) -> bool:
    """Conservatively decide ``expr ⊆ R`` for base relation ``R = name``.

    ``attrs`` are ``R``'s attribute names; a projection counts only if
    it re-emits exactly those attributes in order.
    """
    if _is_base(expr, name):
        return True
    if isinstance(expr, Selection):
        return _contained_in(expr.child, name, attrs)
    if isinstance(expr, Difference):
        return _contained_in(expr.left, name, attrs)
    if isinstance(expr, Intersection):
        return _contained_in(expr.left, name, attrs) or _contained_in(
            expr.right, name, attrs
        )
    if isinstance(expr, Union):
        return _contained_in(expr.left, name, attrs) and _contained_in(
            expr.right, name, attrs
        )
    if isinstance(expr, (SemiJoin, AntiJoin, UnifSemiJoin, UnifAntiJoin)):
        return _contained_in(expr.left, name, attrs)
    if isinstance(expr, Projection):
        if expr.attributes != attrs:
            return False
        return _product_contains(expr.child, name, attrs)
    return False


def _product_contains(expr: Expr, name: str, attrs: Tuple[str, ...]) -> bool:
    """Does ``expr`` contain base ``R`` as a product/join factor, so that
    projecting onto ``R``'s attributes yields a subset of ``R``?"""
    if _is_base(expr, name):
        return True
    if isinstance(expr, Selection):
        return _product_contains(expr.child, name, attrs)
    if isinstance(expr, (Product, Join)):
        return _product_contains(expr.left, name, attrs) or _product_contains(
            expr.right, name, attrs
        )
    if isinstance(expr, (SemiJoin, AntiJoin, UnifSemiJoin, UnifAntiJoin)):
        return _product_contains(expr.left, name, attrs)
    if isinstance(expr, Projection):
        if set(attrs) <= set(expr.attributes):
            return _product_contains(expr.child, name, attrs)
        return False
    return False


def key_antijoin_to_difference(
    expr: Expr, schema: DatabaseSchema
) -> Optional[Difference]:
    """Apply ``R ▷⇑ S → R − S`` if the side conditions hold, else ``None``."""
    if not isinstance(expr, UnifAntiJoin):
        return None
    left = expr.left
    if not isinstance(left, RelationRef):
        return None
    rel_schema = schema.get(left.name)
    if rel_schema is None or not rel_schema.key:
        return None
    if _contained_in(expr.right, left.name, rel_schema.attribute_names):
        return Difference(expr.left, expr.right)
    return None


# ---------------------------------------------------------------------------
# Whole-expression simplification
# ---------------------------------------------------------------------------


def simplify(expr: Expr, schema: Optional[DatabaseSchema] = None) -> Expr:
    """Bottom-up simplification pass.

    Cleans conditions, removes no-op selections, and (when a schema with
    keys is provided) rewrites unification anti-semijoins into plain
    differences per the key rule.
    """
    expr = _map_children(expr, lambda child: simplify(child, schema))

    if isinstance(expr, Selection):
        cond = simplify_condition(expr.condition)
        if isinstance(cond, TrueCond):
            return expr.child
        return Selection(expr.child, cond)
    if isinstance(expr, Join):
        cond = simplify_condition(expr.condition)
        if isinstance(cond, TrueCond):
            return Product(expr.left, expr.right)
        return Join(expr.left, expr.right, cond)
    if isinstance(expr, SemiJoin):
        return SemiJoin(expr.left, expr.right, simplify_condition(expr.condition))
    if isinstance(expr, AntiJoin):
        return AntiJoin(expr.left, expr.right, simplify_condition(expr.condition))
    if isinstance(expr, UnifAntiJoin) and schema is not None:
        as_difference = key_antijoin_to_difference(expr, schema)
        if as_difference is not None:
            return as_difference
    return expr


def _map_children(expr: Expr, fn) -> Expr:
    """Rebuild *expr* with children replaced by ``fn(child)``."""
    if isinstance(expr, Selection):
        return Selection(fn(expr.child), expr.condition)
    if isinstance(expr, Projection):
        return Projection(fn(expr.child), expr.attributes)
    if isinstance(expr, Rename):
        return Rename(fn(expr.child), expr.mapping)
    if isinstance(expr, Product):
        return Product(fn(expr.left), fn(expr.right))
    if isinstance(expr, Join):
        return Join(fn(expr.left), fn(expr.right), expr.condition)
    if isinstance(expr, Union):
        return Union(fn(expr.left), fn(expr.right))
    if isinstance(expr, Intersection):
        return Intersection(fn(expr.left), fn(expr.right))
    if isinstance(expr, Difference):
        return Difference(fn(expr.left), fn(expr.right))
    if isinstance(expr, SemiJoin):
        return SemiJoin(fn(expr.left), fn(expr.right), expr.condition)
    if isinstance(expr, AntiJoin):
        return AntiJoin(fn(expr.left), fn(expr.right), expr.condition)
    if isinstance(expr, UnifSemiJoin):
        return UnifSemiJoin(fn(expr.left), fn(expr.right), codd=expr.codd)
    if isinstance(expr, UnifAntiJoin):
        return UnifAntiJoin(fn(expr.left), fn(expr.right), codd=expr.codd)
    if isinstance(expr, Division):
        return Division(fn(expr.left), fn(expr.right))
    return expr
