"""The paper's query translations with correctness guarantees.

* :mod:`repro.translate.conditions` — the condition translations
  ``θ → θ*`` (certainly true) and ``θ → θ**`` (possibly true), in both
  the theoretical (marked-null) form and the SQL-adjusted form of
  Section 7.
* :mod:`repro.translate.libkin` — the Figure 2 translation
  ``Q → (Qt, Qf)`` of [Libkin, TODS 2016], reproduced to demonstrate its
  Section 5 infeasibility.
* :mod:`repro.translate.improved` — the paper's contribution: the
  implementation-friendly Figure 3 translation ``Q → (Q+, Q?)``
  (Theorem 1).
* :mod:`repro.translate.simplify` — post-translation simplifications,
  notably the key-based rule ``R ▷⇑ S → R − S`` used to derive the
  appendix rewrites.
"""

from repro.translate.conditions import translate_certain, translate_possible
from repro.translate.libkin import translate_libkin
from repro.translate.improved import translate_improved, certain_query, possible_query
from repro.translate.simplify import simplify, key_antijoin_to_difference

__all__ = [
    "translate_certain",
    "translate_possible",
    "translate_libkin",
    "translate_improved",
    "certain_query",
    "possible_query",
    "simplify",
    "key_antijoin_to_difference",
]
