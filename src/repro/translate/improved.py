"""The implementation-friendly translation ``Q → (Q+, Q?)`` (Figure 3).

``Q+`` has correctness guarantees for ``Q`` (no false positives,
Lemma 1/Theorem 1) and ``Q?`` *represents potential answers* to ``Q``
(Definition 3, Lemma 2).  The crucial difference from Figure 2 is rule
(3.4): certain answers to ``Q1 − Q2`` are certain answers to ``Q1``
that do not *unify* with any potential answer to ``Q2`` —

.. code-block:: text

    (Q1 − Q2)+ = Q1+ ▷⇑ Q2?

which avoids active-domain products entirely.

Beyond the paper's grammar {σ, π, ×, ∪, −, ∩} we also translate:

* ``Join`` (as ``σθ(Q1 × Q2)``),
* ``Rename`` (homomorphically),
* condition semijoin/antijoin — the natural algebra of SQL's
  ``EXISTS`` / ``NOT EXISTS`` — with rules that mirror (3.4)/(4.4):

  .. code-block:: text

      (Q1 ⋉θ Q2)+ = Q1+ ⋉θ*  Q2+        (Q1 ⋉θ Q2)? = Q1? ⋉θ** Q2?
      (Q1 ▷θ Q2)+ = Q1+ ▷θ** Q2?        (Q1 ▷θ Q2)? = Q1? ▷θ*  Q2+

* ``Division`` on the ``+`` side: ``(Q1 ÷ Q2)+ = Q1+ ÷ Q2?`` (a tuple
  certainly passes the ∀ if it certainly pairs with every *possible*
  divisor tuple).

All extensions are sound by the same inductive arguments as Lemmas 1
and 2 (see tests/translate/test_improved.py for machine-checked
evidence against brute-force certain answers).
"""

from __future__ import annotations

from typing import Tuple

from repro.algebra.expr import (
    AdomPower,
    AntiJoin,
    Difference,
    Division,
    Expr,
    Intersection,
    Join,
    Literal,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    SemiJoin,
    Union,
    UnifAntiJoin,
    UnifSemiJoin,
)
from repro.translate.conditions import translate_certain, translate_possible

__all__ = ["translate_improved", "certain_query", "possible_query"]


def certain_query(q: Expr, sql_adjusted: bool = False, codd: bool = False) -> Expr:
    """The ``Q+`` side of Figure 3 (rules 3.1–3.7 plus extensions)."""
    if isinstance(q, (RelationRef, Literal, AdomPower)):
        return q  # (3.1)
    if isinstance(q, Union):  # (3.2)
        return Union(
            certain_query(q.left, sql_adjusted, codd),
            certain_query(q.right, sql_adjusted, codd),
        )
    if isinstance(q, Intersection):  # (3.3)
        return Intersection(
            certain_query(q.left, sql_adjusted, codd),
            certain_query(q.right, sql_adjusted, codd),
        )
    if isinstance(q, Difference):  # (3.4): Q1+ ▷⇑ Q2?
        return UnifAntiJoin(
            certain_query(q.left, sql_adjusted, codd),
            possible_query(q.right, sql_adjusted, codd),
            codd=codd,
        )
    if isinstance(q, Selection):  # (3.5)
        return Selection(
            certain_query(q.child, sql_adjusted, codd),
            translate_certain(q.condition, sql_adjusted),
        )
    if isinstance(q, Product):  # (3.6)
        return Product(
            certain_query(q.left, sql_adjusted, codd),
            certain_query(q.right, sql_adjusted, codd),
        )
    if isinstance(q, Projection):  # (3.7)
        return Projection(certain_query(q.child, sql_adjusted, codd), q.attributes)
    if isinstance(q, Rename):
        return Rename(certain_query(q.child, sql_adjusted, codd), q.mapping)
    if isinstance(q, Join):
        return Join(
            certain_query(q.left, sql_adjusted, codd),
            certain_query(q.right, sql_adjusted, codd),
            translate_certain(q.condition, sql_adjusted),
        )
    if isinstance(q, SemiJoin):
        return SemiJoin(
            certain_query(q.left, sql_adjusted, codd),
            certain_query(q.right, sql_adjusted, codd),
            translate_certain(q.condition, sql_adjusted),
        )
    if isinstance(q, AntiJoin):
        # Mirror of (3.4): drop a certain left tuple as soon as it
        # *possibly* matches a *possible* right tuple.
        return AntiJoin(
            certain_query(q.left, sql_adjusted, codd),
            possible_query(q.right, sql_adjusted, codd),
            translate_possible(q.condition, sql_adjusted),
        )
    if isinstance(q, Division):
        return Division(
            certain_query(q.left, sql_adjusted, codd),
            possible_query(q.right, sql_adjusted, codd),
        )
    raise TypeError(f"Figure 3 translation does not cover {type(q).__name__}")


def possible_query(q: Expr, sql_adjusted: bool = False, codd: bool = False) -> Expr:
    """The ``Q?`` side of Figure 3 (rules 4.1–4.7 plus extensions)."""
    if isinstance(q, (RelationRef, Literal, AdomPower)):
        return q  # (4.1)
    if isinstance(q, Union):  # (4.2)
        return Union(
            possible_query(q.left, sql_adjusted, codd),
            possible_query(q.right, sql_adjusted, codd),
        )
    if isinstance(q, Intersection):  # (4.3): Q1? ⋉⇑ Q2?
        return UnifSemiJoin(
            possible_query(q.left, sql_adjusted, codd),
            possible_query(q.right, sql_adjusted, codd),
            codd=codd,
        )
    if isinstance(q, Difference):  # (4.4): Q1? − Q2+
        return Difference(
            possible_query(q.left, sql_adjusted, codd),
            certain_query(q.right, sql_adjusted, codd),
        )
    if isinstance(q, Selection):  # (4.5)
        return Selection(
            possible_query(q.child, sql_adjusted, codd),
            translate_possible(q.condition, sql_adjusted),
        )
    if isinstance(q, Product):  # (4.6)
        return Product(
            possible_query(q.left, sql_adjusted, codd),
            possible_query(q.right, sql_adjusted, codd),
        )
    if isinstance(q, Projection):  # (4.7)
        return Projection(possible_query(q.child, sql_adjusted, codd), q.attributes)
    if isinstance(q, Rename):
        return Rename(possible_query(q.child, sql_adjusted, codd), q.mapping)
    if isinstance(q, Join):
        return Join(
            possible_query(q.left, sql_adjusted, codd),
            possible_query(q.right, sql_adjusted, codd),
            translate_possible(q.condition, sql_adjusted),
        )
    if isinstance(q, SemiJoin):
        return SemiJoin(
            possible_query(q.left, sql_adjusted, codd),
            possible_query(q.right, sql_adjusted, codd),
            translate_possible(q.condition, sql_adjusted),
        )
    if isinstance(q, AntiJoin):
        # Mirror of (4.4): a possible left tuple survives unless it
        # *certainly* matches a *certain* right tuple.
        return AntiJoin(
            possible_query(q.left, sql_adjusted, codd),
            certain_query(q.right, sql_adjusted, codd),
            translate_certain(q.condition, sql_adjusted),
        )
    if isinstance(q, Division):
        raise TypeError(
            "the potential-answer translation of division is not defined; "
            "rewrite division via difference before translating"
        )
    raise TypeError(f"Figure 3 translation does not cover {type(q).__name__}")


def translate_improved(
    query: Expr, sql_adjusted: bool = False, codd: bool = False
) -> Tuple[Expr, Expr]:
    """Return ``(Q+, Q?)`` per Figure 3 (Theorem 1).

    Parameters
    ----------
    sql_adjusted:
        Apply the Section 7 adjustment so that the translated queries
        remain correct when conditions are evaluated under SQL's 3VL
        (needed when the output is executed by a standard SQL engine).
    codd:
        Use the position-wise unifiability test in the unification
        semijoins (exact for Codd nulls, a sound approximation for
        marked nulls — Corollary 1).
    """
    return (
        certain_query(query, sql_adjusted, codd),
        possible_query(query, sql_adjusted, codd),
    )
