"""The Figure 2 translation ``Q → (Qt, Qf)`` of [Libkin, TODS 2016].

``Qt`` under-approximates certain answers to ``Q`` and ``Qf``
under-approximates certain answers to its complement.  The rules are
reproduced verbatim from Figure 2 of the paper:

.. code-block:: text

    Rt              = R
    (Q1 ∪ Q2)t      = Qt1 ∪ Qt2
    (Q1 ∩ Q2)t      = Qt1 ∩ Qt2
    (Q1 − Q2)t      = Qt1 ∩ Qf2
    (σθ(Q))t        = σθ*(Qt)
    (Q1 × Q2)t      = Qt1 × Qt2
    (πα(Q))t        = πα(Qt)

    Rf              = {s̄ ∈ adom^ar(R) | ¬∃ r̄ ∈ R : r̄ ⇑ s̄}
    (Q1 ∪ Q2)f      = Qf1 ∩ Qf2
    (Q1 ∩ Q2)f      = Qf1 ∪ Qf2
    (Q1 − Q2)f      = Qf1 ∪ Qt2
    (σθ(Q))f        = Qf ∪ σ(¬θ)*(adom^ar(Q))
    (Q1 × Q2)f      = Qf1 × adom^ar(Q2) ∪ adom^ar(Q1) × Qf2
    (πα(Q))f        = πα(Qf) − πα(adom^ar(Q) − Qf)

This module exists to *demonstrate Section 5*: the pervasive
``adom^k`` factors make ``Qf`` (and hence ``Qt`` for queries with
difference) explode combinatorially.  The benchmarks run it with a row
budget and show it failing on instances of a few hundred tuples, while
the Figure 3 translation of :mod:`repro.translate.improved` stays fast.
"""

from __future__ import annotations

from typing import Tuple

from repro.algebra.conditions import negate
from repro.algebra.expr import (
    AdomPower,
    Difference,
    Expr,
    Intersection,
    Join,
    Literal,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    Union,
    UnifAntiJoin,
)
from repro.algebra.infer import attribute_lookup, output_attributes
from repro.translate.conditions import translate_certain

__all__ = ["translate_libkin", "LibkinTranslation"]


class LibkinTranslation:
    """Carrier for the mutually recursive ``t``/``f`` rules."""

    def __init__(self, schema_source, sql_adjusted: bool = False):
        self._lookup = attribute_lookup(schema_source) if not callable(
            schema_source
        ) else schema_source
        self.sql_adjusted = sql_adjusted

    # ------------------------------------------------------------------
    def _attrs(self, expr: Expr) -> Tuple[str, ...]:
        return output_attributes(expr, self._lookup)

    def _adom(self, attrs: Tuple[str, ...]) -> AdomPower:
        return AdomPower(tuple(attrs))

    # ------------------------------------------------------------------
    def certainly_true(self, q: Expr) -> Expr:
        """The ``Qt`` side."""
        if isinstance(q, (RelationRef, Literal, AdomPower)):
            return q
        if isinstance(q, Union):
            return Union(self.certainly_true(q.left), self.certainly_true(q.right))
        if isinstance(q, Intersection):
            return Intersection(
                self.certainly_true(q.left), self.certainly_true(q.right)
            )
        if isinstance(q, Difference):
            return Intersection(
                self.certainly_true(q.left), self.certainly_false(q.right)
            )
        if isinstance(q, Selection):
            return Selection(
                self.certainly_true(q.child),
                translate_certain(q.condition, self.sql_adjusted),
            )
        if isinstance(q, Product):
            return Product(self.certainly_true(q.left), self.certainly_true(q.right))
        if isinstance(q, Join):
            # σθ(Q1 × Q2) in one node.
            return Join(
                self.certainly_true(q.left),
                self.certainly_true(q.right),
                translate_certain(q.condition, self.sql_adjusted),
            )
        if isinstance(q, Projection):
            return Projection(self.certainly_true(q.child), q.attributes)
        if isinstance(q, Rename):
            return Rename(self.certainly_true(q.child), q.mapping)
        raise TypeError(
            f"Figure 2 translation does not cover {type(q).__name__}; "
            "normalise the query to {σ, π, ×, ∪, −, ∩} first"
        )

    # ------------------------------------------------------------------
    def certainly_false(self, q: Expr) -> Expr:
        """The ``Qf`` side (certain answers to the complement)."""
        if isinstance(q, (RelationRef, Literal)):
            attrs = self._attrs(q)
            return UnifAntiJoin(self._adom(attrs), q)
        if isinstance(q, Union):
            return Intersection(
                self.certainly_false(q.left), self.certainly_false(q.right)
            )
        if isinstance(q, Intersection):
            return Union(self.certainly_false(q.left), self.certainly_false(q.right))
        if isinstance(q, Difference):
            return Union(self.certainly_false(q.left), self.certainly_true(q.right))
        if isinstance(q, Selection):
            attrs = self._attrs(q.child)
            return Union(
                self.certainly_false(q.child),
                Selection(
                    self._adom(attrs),
                    translate_certain(negate(q.condition), self.sql_adjusted),
                ),
            )
        if isinstance(q, Join):
            return self.certainly_false(
                Selection(Product(q.left, q.right), q.condition)
            )
        if isinstance(q, Product):
            left_pad = self._adom(self._attrs(q.right))
            right_pad = self._adom(self._attrs(q.left))
            return Union(
                Product(self.certainly_false(q.left), left_pad),
                Product(right_pad, self.certainly_false(q.right)),
            )
        if isinstance(q, Projection):
            qf = self.certainly_false(q.child)
            attrs = self._attrs(q.child)
            return Difference(
                Projection(qf, q.attributes),
                Projection(Difference(self._adom(attrs), qf), q.attributes),
            )
        if isinstance(q, Rename):
            return Rename(self.certainly_false(q.child), q.mapping)
        raise TypeError(
            f"Figure 2 translation does not cover {type(q).__name__}; "
            "normalise the query to {σ, π, ×, ∪, −, ∩} first"
        )


def translate_libkin(
    query: Expr, schema_source, sql_adjusted: bool = False
) -> Tuple[Expr, Expr]:
    """Return ``(Qt, Qf)`` per Figure 2.

    ``schema_source`` supplies base-relation attribute names (a
    :class:`~repro.data.database.Database`, a
    :class:`~repro.data.schema.DatabaseSchema` or a dict).
    """
    translator = LibkinTranslation(schema_source, sql_adjusted=sql_adjusted)
    return translator.certainly_true(query), translator.certainly_false(query)
