"""Brute-force certain answers — the ground truth everything is tested against.

``cert(Q, D)`` (certain answers *with nulls*, Section 2) is the set of
tuples ``ā`` over ``adom(D)`` such that ``v(ā) ∈ Q(v(D))`` for every
valuation ``v``.  Computing it is coNP-hard in general, so this module
simply enumerates valuations over a sufficient finite domain — viable
only for the small databases used in tests and in the Section 4/7
ground-truth comparisons, which is precisely its role.

The classical null-free certain answers are the null-free tuples of
``cert(Q, D)`` (also Section 2), exposed as :func:`certain_answers`.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Set, Tuple

from repro.algebra.evaluate import evaluate
from repro.algebra.expr import Expr
from repro.data.database import Database
from repro.data.nulls import is_null
from repro.data.relation import Relation
from repro.data.valuation import Valuation, enumerate_valuations

__all__ = [
    "certain_answers_with_nulls",
    "certain_answers",
    "possible_answer_union",
    "represents_potential_answers",
    "false_positives",
    "false_negatives",
]

Row = Tuple[object, ...]


def _candidate_tuples(db: Database, arity: int, extra: Iterable[Row] = ()) -> Set[Row]:
    """Candidate answers: all tuples over ``adom(D)`` of the given arity.

    Exponential in the arity — fine for the unit-test scale this module
    targets.  ``extra`` lets callers seed known candidates (e.g. tuples
    already returned by some evaluation) without paying for a larger
    domain.
    """
    domain = sorted(db.active_domain(), key=repr)
    candidates = set(itertools.product(domain, repeat=arity))
    candidates.update(tuple(row) for row in extra)
    return candidates


def certain_answers_with_nulls(
    query: Expr,
    db: Database,
    attributes: Optional[Tuple[str, ...]] = None,
    extra_constants: Optional[int] = None,
) -> Relation:
    """``cert(Q, D)`` by explicit valuation enumeration.

    For every candidate tuple ``ā`` over ``adom(D)`` and every valuation
    ``v`` into ``Const(D)`` plus fresh constants, check
    ``v(ā) ∈ Q(v(D))``.  The default number of fresh constants (one per
    null) is sufficient for first-order queries by genericity.
    """
    valuations = list(enumerate_valuations(db, extra_constants=extra_constants))
    # Evaluate the query on every possible world once.
    worlds: List[Tuple[Valuation, Set[Row]]] = []
    result_attrs: Optional[Tuple[str, ...]] = attributes
    for v in valuations:
        complete = v.apply_database(db)
        answer = evaluate(query, complete, semantics="naive")
        if result_attrs is None:
            result_attrs = answer.attributes
        worlds.append((v, set(answer.rows)))
    if result_attrs is None:  # pragma: no cover - no valuations is impossible
        raise RuntimeError("no valuations produced")
    arity = len(result_attrs)
    certain = [
        candidate
        for candidate in sorted(_candidate_tuples(db, arity), key=repr)
        if all(v.apply_row(candidate) in rows for v, rows in worlds)
    ]
    return Relation(result_attrs, certain)


def certain_answers(query: Expr, db: Database, **kwargs) -> Relation:
    """Classical certain answers: the null-free tuples of ``cert(Q, D)``."""
    with_nulls = certain_answers_with_nulls(query, db, **kwargs)
    rows = [row for row in with_nulls.rows if not any(is_null(v) for v in row)]
    return Relation(with_nulls.attributes, rows)


def possible_answer_union(
    query: Expr, db: Database, extra_constants: Optional[int] = None
) -> Set[Row]:
    """``⋃_v Q(v(D))`` over the enumerated valuations (maybe-answers)."""
    everything: Set[Row] = set()
    for v in enumerate_valuations(db, extra_constants=extra_constants):
        complete = v.apply_database(db)
        everything |= set(evaluate(query, complete, semantics="naive").rows)
    return everything


def represents_potential_answers(
    candidate: Relation,
    query: Expr,
    db: Database,
    extra_constants: Optional[int] = None,
) -> bool:
    """Check Definition 3: ``Q(v(D)) ⊆ v(A)`` for every valuation ``v``.

    Used to validate the ``Q?`` side of the improved translation
    (Lemma 2) on small instances.
    """
    for v in enumerate_valuations(db, extra_constants=extra_constants):
        complete = v.apply_database(db)
        answers = set(evaluate(query, complete, semantics="naive").rows)
        image = {v.apply_row(row) for row in candidate.rows}
        if not answers <= image:
            return False
    return True


def false_positives(returned: Relation, certain: Relation) -> List[Row]:
    """Tuples returned by an evaluation that are not certain answers."""
    certain_set = set(certain.rows)
    return [row for row in returned.rows if row not in certain_set]


def false_negatives(returned: Relation, certain: Relation) -> List[Row]:
    """Certain answers missed by an evaluation."""
    returned_set = set(returned.rows)
    return [row for row in certain.rows if row not in returned_set]
