"""Brute-force certain answers — the ground truth everything is tested against.

``cert(Q, D)`` (certain answers *with nulls*, Section 2) is the set of
tuples ``ā`` over ``adom(D)`` such that ``v(ā) ∈ Q(v(D))`` for every
valuation ``v``.  Computing it is coNP-hard in general, so this module
simply enumerates valuations over a sufficient finite domain — viable
only for the small databases used in tests and in the Section 4/7
ground-truth comparisons, which is precisely its role.

Because that role includes serving as an *anytime* oracle under harness
deadlines, the search is **best-first**: each candidate is probed
against a small sample of worlds, and since any rejecting world is a
proof of non-certainty, sample survivors stream straight into
verification while refuted candidates are dropped with a certificate
(huge pools fall back to value-frequency ordering via
:mod:`repro.engine.stats`); rejecting worlds are promoted by their
observed kill rate so doomed survivors die at their first check.
A tuple is only ever emitted after surviving every world, so a
deadline- or cancellation-cut result is always a sound subset of
``cert(Q, D)`` — and a *richer* subset than the eager enumeration
order yields in the same time.
``order="eager"`` restores the legacy exploration order for A/B runs;
``progress=`` streams confirmed tuples as they are found; ``cancel=``
accepts a :class:`~repro.engine.limits.CancelToken` another thread may
fire.

The classical null-free certain answers are the null-free tuples of
``cert(Q, D)`` (also Section 2), exposed as :func:`certain_answers`.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.algebra.evaluate import evaluate
from repro.algebra.expr import Expr
from repro.data.database import Database
from repro.data.nulls import is_null
from repro.data.relation import Relation
from repro.data.valuation import Valuation, enumerate_valuations
from repro.engine.limits import CancelToken
from repro.engine.stats import SourceStats

__all__ = [
    "certain_answers_with_nulls",
    "certain_answers",
    "possible_answer_union",
    "represents_potential_answers",
    "false_positives",
    "false_negatives",
    "SearchStats",
    "LAST_SEARCH",  # noqa: F822 — thread-local, served by module __getattr__
]

Row = Tuple[object, ...]

#: Worlds sampled (evenly spaced) to score candidate plausibility.
SCORE_SAMPLE_WORLDS = 8

#: Cap on the total scoring membership tests one search may spend.  The
#: per-candidate sample shrinks as the candidate pool grows (down to
#: frequency-only ordering, then to plain seeding order for huge pools),
#: keeping the worst-case ordering overhead a small multiple of one
#: verification sweep.  Scoring is streamed per candidate and early-exits
#: at the first rejecting sample, so in practice only plausibly-certain
#: candidates spend their full allowance.
SCORE_PROBE_BUDGET = 1 << 18

#: Candidates examined between wall-clock reads in the scoring and
#: verification loops (the first candidate always reads the clock).
#: Same amortisation idea as ``repro.engine.limits.CHECK_INTERVAL``: a
#: deadline may overshoot by at most this many candidates' worth of
#: work, and cancellation latency stays within one interval.
_CLOCK_EVERY = 32


@dataclass
class SearchStats:
    """Instrumentation of the last :func:`certain_answers_with_nulls` call.

    ``exhaustive_candidates`` is what the unpruned enumeration would have
    considered (``|adom|**arity``); ``candidates_considered`` is what the
    search actually examined; ``world_checks`` counts candidate-vs-world
    membership tests in the verification loop (each candidate
    short-circuits at its first rejecting world).  ``complete`` is
    ``False`` when a ``deadline=`` or a fired ``cancel=`` token cut the
    search short (the result is then a sound subset of ``cert(Q, D)``);
    ``cancelled`` distinguishes the token case.  ``elapsed`` is the
    wall-clock time of the call.

    Best-first ordering counters: ``strategy`` names the exploration
    order (``"best-first"`` or ``"eager"``); ``sampled_worlds`` is how
    many worlds the plausibility filter probed; ``score_probes`` counts
    those scoring membership tests (kept out of ``world_checks`` so the
    pruning invariants stay comparable across orders);
    ``sample_refuted`` counts candidates a sampled world rejected — each
    such probe is a sound refutation certificate, so those candidates
    skip the verification loop entirely; ``world_reorders`` counts
    promotions of a killing world to the front of the rejecting-world
    queue.  ``emitted`` is the number of confirmed
    tuples streamed (equals the result size).  ``world_elapsed`` is the
    time spent evaluating the query on every possible world — a fixed
    preamble both exploration orders pay identically before any tuple
    *can* be confirmed (no emission without all worlds), so anytime
    benchmarks budget against ``elapsed - world_elapsed``.
    """

    arity: int = 0
    pruned: bool = True
    exhaustive_candidates: int = 0
    candidates_considered: int = 0
    world_checks: int = 0
    complete: bool = True
    elapsed: float = 0.0
    world_elapsed: float = 0.0
    strategy: str = "best-first"
    sampled_worlds: int = 0
    score_probes: int = 0
    sample_refuted: int = 0
    world_reorders: int = 0
    cancelled: bool = False
    emitted: int = 0

    def summary(self) -> Dict[str, object]:
        """JSON-serialisable counter dump (checkpoint/bench payloads)."""
        return {
            "strategy": self.strategy,
            "arity": self.arity,
            "pruned": self.pruned,
            "exhaustive_candidates": self.exhaustive_candidates,
            "candidates_considered": self.candidates_considered,
            "world_checks": self.world_checks,
            "score_probes": self.score_probes,
            "sample_refuted": self.sample_refuted,
            "sampled_worlds": self.sampled_worlds,
            "world_reorders": self.world_reorders,
            "complete": self.complete,
            "cancelled": self.cancelled,
            "emitted": self.emitted,
            "elapsed": self.elapsed,
            "world_elapsed": self.world_elapsed,
        }


class _SearchLog(threading.local):
    """Per-thread publication slot for the last search's stats.

    Concurrent harness workers each search in their own thread; a
    module-global would let one worker's stats clobber another's between
    the search and the read.  Thread-locality keeps the familiar
    ``bruteforce.LAST_SEARCH`` read (served via module ``__getattr__``)
    race-free without a lock on the hot path.
    """

    def __init__(self) -> None:
        self.stats = SearchStats()


_SEARCH_LOG = _SearchLog()


def __getattr__(name: str):
    # PEP 562: ``bruteforce.LAST_SEARCH`` reads this thread's slot, so
    # parallel searches never observe each other's stats.
    if name == "LAST_SEARCH":
        return _SEARCH_LOG.stats
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _candidate_tuples(db: Database, arity: int, extra: Iterable[Row] = ()) -> Set[Row]:
    """Candidate answers: all tuples over ``adom(D)`` of the given arity.

    Exponential in the arity — fine for the unit-test scale this module
    targets.  ``extra`` lets callers seed known candidates (e.g. tuples
    already returned by some evaluation) without paying for a larger
    domain.
    """
    domain = sorted(db.active_domain(), key=repr)
    candidates = set(itertools.product(domain, repeat=arity))
    candidates.update(tuple(row) for row in extra)
    return candidates


def _seed_candidates(
    db: Database, first_world: Tuple[Valuation, Set[Row]]
) -> List[Row]:
    """Candidates over ``adom(D)`` whose image lies in the first world's
    answers — the only tuples that can possibly be certain.

    For the first valuation ``v`` the certain answers satisfy
    ``v(ā) ∈ Q(v(D))``, so instead of enumerating ``adom^arity`` we take
    the preimage of the first world's answer set under ``v``: at each
    position of an answer row the candidate may hold any domain element
    mapping to that constant (the constant itself if it is in the
    domain, plus every null ``v`` sends there).

    The returned list is deduplicated in a deterministic generation
    order — answer rows in canonical sorted order, pool positions in
    sorted active-domain order — which doubles as the ``"eager"``
    exploration order.  (Generation order beats a global ``repr`` sort,
    whose string building dominated seeding on pool-heavy instances.)
    """
    v, rows = first_world
    preimage: Dict[object, List[object]] = {}
    for x in sorted(db.active_domain(), key=repr):
        preimage.setdefault(v(x), []).append(x)
    candidates: Dict[Row, None] = {}
    for row in sorted(rows, key=repr):
        pools = [preimage.get(value) for value in row]
        if any(pool is None for pool in pools):
            continue  # some output constant is outside adom's image
        # dict.fromkeys + update runs the dedup at C speed; new keys keep
        # product order, repeats keep their first position — exactly the
        # setdefault semantics, several times faster on big pools.
        candidates.update(dict.fromkeys(itertools.product(*pools)))
    return list(candidates)


def _world_layout(
    db: Database,
) -> List[Tuple[str, Tuple[str, ...], List[Tuple[Row, List[int]]]]]:
    """Per-relation rows paired with their null positions, computed once.

    Building a possible world is then a few dict probes per incomplete
    row (complete rows are reused as-is) instead of a generic
    ``Valuation.apply_database`` traversal — the world-evaluation phase
    runs once per valuation, so this is the other hot loop of the
    search.
    """
    return [
        (
            name,
            rel.attributes,
            [
                (tuple(row), [i for i, value in enumerate(row) if is_null(value)])
                for row in rel.rows
            ],
        )
        for name, rel in db.relations.items()
    ]


def _apply_world(
    db: Database,
    layout: List[Tuple[str, Tuple[str, ...], List[Tuple[Row, List[int]]]]],
    v: Valuation,
) -> Database:
    """``v(D)`` via the precomputed :func:`_world_layout`."""
    mapping = v.mapping
    relations: Dict[str, Relation] = {}
    for name, attrs, rows in layout:
        patched: List[Row] = []
        for row, null_pos in rows:
            if null_pos:
                image = list(row)
                for i in null_pos:
                    image[i] = mapping[row[i]]
                patched.append(tuple(image))
            else:
                patched.append(row)
        relations[name] = Relation(attrs, patched)
    return Database(relations, schema=db.schema)


def _best_first_stream(
    candidates: List[Row],
    worlds: List[Tuple[Valuation, Set[Row]]],
    stats: "SearchStats",
    cutoff: Optional[float],
    cancel: Optional[CancelToken],
) -> Iterable[Tuple[Row, List[int]]]:
    """Yield plausible ``(candidate, null_positions)`` pairs, best first.

    Each candidate is probed against an evenly spaced sample of *worlds*
    until its first rejection.  A candidate admitted by every sampled
    world — the plausibly-certain kind — is yielded *immediately*, so
    confirmation starts streaming after microseconds instead of waiting
    behind a global ordering pass (whose up-front cost would eat exactly
    the tight-deadline budget the ordering exists to serve).  A
    candidate a sampled world rejects needs no further attention at all:
    the probe *is* a world membership test, so the rejecting world is a
    certificate that the candidate is not certain.  It is counted in
    ``stats.sample_refuted`` and dropped — the expensive verification
    loop only ever sees sample survivors.

    The sample shrinks as the candidate pool grows so total probes stay
    under :data:`SCORE_PROBE_BUDGET` (early exit keeps the spend far
    lower in practice).  When even one probe per candidate is over
    budget, no refutation certificates are affordable; every candidate
    must be verified, and a frequency signal over the first world's
    answer columns orders them instead (via
    :class:`~repro.engine.stats.SourceStats` — values that NDV says
    recur across many answers are more likely to survive than one-off
    combinations), null-free candidates first within equal frequency (a
    null-free candidate needs only its fixed image in every world, while
    a null-bearing one survives only if the database *forces* its nulls
    — much rarer), ties keeping seeding order for determinism (candidate
    tuples, which may mix nulls and constants, are never compared to
    each other).

    Either way no candidate is ever dropped *unexamined*, so soundness
    and completeness are untouched.  After a deadline or cancellation
    hit the remainder streams unscored in seeding order — the
    verification loop is about to stop at its own check anyway.
    """
    n = len(candidates)
    if not worlds or n <= 1:
        for candidate in candidates:
            yield candidate, [
                i for i, value in enumerate(candidate) if is_null(value)
            ]
        return
    sample_size = min(
        SCORE_SAMPLE_WORLDS,
        len(worlds),
        SCORE_PROBE_BUDGET // n,
    )
    out_of_budget = False
    position = 0
    ticks = _CLOCK_EVERY  # first candidate reads the clock
    if sample_size <= 0:
        # Frequency-ordered fallback for huge pools: a global scoring
        # pass at a dict probe per position, no world probes.
        arity = stats.arity
        first_rows = SourceStats(list(worlds[0][1]))
        frequency: List[Dict[object, int]] = []
        ndv_weight: List[int] = []
        for pos in range(arity):
            counts: Dict[object, int] = {}
            if len(first_rows):
                for value in first_rows.column(pos):
                    counts[value] = counts.get(value, 0) + 1
            frequency.append(counts)
            # Recurring values in a high-NDV (discriminating) column say
            # more about survival odds than ones everybody shares.
            ndv_weight.append(first_rows.ndv(pos) if len(first_rows) else 1)
        v0_map = worlds[0][0].mapping
        scored: List[Tuple[Tuple[int, int], Row, List[int]]] = []
        for position, candidate in enumerate(candidates):
            if cancel is not None and cancel.cancelled:
                out_of_budget = True
            elif cutoff is not None:
                ticks += 1
                if ticks >= _CLOCK_EVERY:
                    ticks = 0
                    if time.monotonic() > cutoff:
                        out_of_budget = True
            if out_of_budget:
                break
            null_pos = [
                i for i, value in enumerate(candidate) if is_null(value)
            ]
            freq = sum(
                frequency[i].get(v0_map.get(candidate[i], candidate[i]), 0)
                * ndv_weight[i]
                for i in range(arity)
            )
            scored.append(((len(null_pos), -freq), candidate, null_pos))
        # Stable sort on the score alone: ties deterministically keep
        # the seeding order the candidates arrived in.
        scored.sort(key=lambda entry: entry[0])
        for _score, candidate, null_pos in scored:
            yield candidate, null_pos
        if out_of_budget:
            for candidate in candidates[position:]:
                yield candidate, [
                    i for i, value in enumerate(candidate) if is_null(value)
                ]
        return
    step = max(1, len(worlds) // sample_size)
    sample = worlds[::step][:sample_size]
    stats.sampled_worlds = full = len(sample)
    for position, candidate in enumerate(candidates):
        if cancel is not None and cancel.cancelled:
            out_of_budget = True
        elif cutoff is not None:
            ticks += 1
            if ticks >= _CLOCK_EVERY:
                ticks = 0
                if time.monotonic() > cutoff:
                    out_of_budget = True
        if out_of_budget:
            break
        null_pos = [i for i, value in enumerate(candidate) if is_null(value)]
        hits = 0
        if null_pos:
            image = list(candidate)
            for v, rows in sample:
                stats.score_probes += 1
                mapping = v.mapping
                for i in null_pos:
                    image[i] = mapping[candidate[i]]
                if tuple(image) not in rows:
                    break
                hits += 1
        else:
            for _v, rows in sample:
                stats.score_probes += 1
                if candidate not in rows:
                    break
                hits += 1
        if hits == full:
            yield candidate, null_pos
        else:
            stats.sample_refuted += 1
    if out_of_budget:
        for candidate in candidates[position:]:
            yield candidate, [
                i for i, value in enumerate(candidate) if is_null(value)
            ]


def certain_answers_with_nulls(
    query: Expr,
    db: Database,
    attributes: Optional[Tuple[str, ...]] = None,
    extra_constants: Optional[int] = None,
    prune: bool = True,
    deadline: Optional[float] = None,
    deadline_scope: str = "call",
    order: str = "best-first",
    progress: Optional[Callable[[Row, "SearchStats"], None]] = None,
    cancel: Optional[CancelToken] = None,
) -> Relation:
    """``cert(Q, D)`` by explicit valuation enumeration.

    For every candidate tuple ``ā`` over ``adom(D)`` and every valuation
    ``v`` into ``Const(D)`` plus fresh constants, check
    ``v(ā) ∈ Q(v(D))``.  The default number of fresh constants (one per
    null) is sufficient for first-order queries by genericity.

    With ``prune=True`` (the default) the candidate set is seeded from
    the first world's answers instead of all of ``adom^arity``, and each
    candidate is abandoned at the first world that rejects it; the
    result is provably identical to the exhaustive search
    (``prune=False``), which is kept for cross-checking.  Search effort
    is reported in :data:`LAST_SEARCH`.

    ``order`` picks the exploration order.  ``"best-first"`` (default)
    verifies plausible candidates first — scored by survival in a small
    world sample plus answer-frequency signals — and promotes rejecting
    worlds by kill rate; ``"eager"`` keeps the deterministic seeding
    order (answer-row-major, pool-minor).
    The *returned* relation lists confirmed tuples in the canonical
    sorted order either way, so complete searches are row-identical
    across orders; the exploration order only decides *which* sound
    subset survives a cut.

    ``deadline`` (seconds) makes the search *anytime*: when the budget
    runs out, the sound subset of certain answers confirmed so far is
    returned — a tuple is only ever emitted after surviving **every**
    world, so partial results contain no false positives (they may miss
    certain answers).  ``deadline_scope`` says what the budget covers:
    ``"call"`` (default) counts from call entry, ``"search"`` starts the
    clock after the world-evaluation preamble — a fixed cost both
    exploration orders pay identically before any tuple *can* be
    confirmed, whose run-to-run jitter would otherwise drown tight
    budgets (anytime benchmarks compare orders this way).  ``cancel``
    accepts a
    :class:`~repro.engine.limits.CancelToken`; a token fired from
    another thread stops the search at its next candidate or world
    check, with the same sound-subset result and
    ``LAST_SEARCH.cancelled = True``.  ``LAST_SEARCH.complete`` records
    whether the search finished; ``LAST_SEARCH.elapsed`` the time it
    took.

    ``progress`` is called as ``progress(row, stats)`` the moment each
    tuple is *confirmed* certain (in exploration order, not the final
    sorted order), so callers see an ever-growing sound subset instead
    of one terminal dump.
    """
    if order not in ("best-first", "eager"):
        raise ValueError(f"unknown search order {order!r}")
    if deadline_scope not in ("call", "search"):
        raise ValueError(f"unknown deadline scope {deadline_scope!r}")
    start = time.monotonic()
    search_scoped = deadline_scope == "search"
    # A search-scoped budget leaves the world preamble unmetered; its
    # cutoff is fixed only once the preamble's actual cost is known.
    cutoff = None if deadline is None or search_scoped else start + deadline
    valuations = list(enumerate_valuations(db, extra_constants=extra_constants))
    layout = _world_layout(db)
    # Evaluate the query on every possible world once.
    worlds: List[Tuple[Valuation, Set[Row]]] = []
    result_attrs: Optional[Tuple[str, ...]] = attributes
    cancelled = False
    timed_out = False
    for v in valuations:
        if cancel is not None and cancel.cancelled:
            cancelled = True
            if worlds:
                break
        if cutoff is not None and worlds and time.monotonic() > cutoff:
            # Without every world no candidate can be *confirmed*
            # certain; the sound subset at this point is empty.  (The
            # first world is always evaluated so the result relation
            # keeps its attributes.)
            timed_out = True
            break
        complete = _apply_world(db, layout, v)
        answer = evaluate(query, complete, semantics="naive")
        if result_attrs is None:
            result_attrs = answer.attributes
        worlds.append((v, set(answer.rows)))
        if cancelled:
            break
    if result_attrs is None:  # pragma: no cover - no valuations is impossible
        raise RuntimeError("no valuations produced")
    world_elapsed = time.monotonic() - start
    if deadline is not None and search_scoped:
        cutoff = start + world_elapsed + deadline
    arity = len(result_attrs)
    stats = SearchStats(
        arity=arity,
        pruned=prune,
        exhaustive_candidates=len(db.active_domain()) ** arity,
        strategy=order,
        world_elapsed=world_elapsed,
    )
    if timed_out or cancelled:
        stats.complete = False
        stats.cancelled = cancelled
        stats.elapsed = time.monotonic() - start
        _SEARCH_LOG.stats = stats
        return Relation(result_attrs, [])
    if prune:
        # Seeding already enforces membership in the first world.
        candidates = _seed_candidates(db, worlds[0])
        remaining = worlds[1:]
    else:
        candidates = sorted(_candidate_tuples(db, arity), key=repr)
        remaining = worlds
    stats.candidates_considered = len(candidates)
    best_first = order == "best-first"
    if best_first:
        candidate_iter: Iterable[Tuple[Row, List[int]]] = _best_first_stream(
            candidates, remaining, stats, cutoff, cancel
        )
    else:
        candidate_iter = (
            (c, [i for i, value in enumerate(c) if is_null(value)])
            for c in candidates
        )
    # Mutable [kills, valuation, rows] entries so the rejecting-world
    # queue can be promoted as worlds prove their kill power.
    queue: List[List[object]] = [[0, v, rows] for v, rows in remaining]
    certain: List[Row] = []
    ticks = _CLOCK_EVERY  # first candidate reads the clock
    for candidate, null_pos in candidate_iter:
        if cancel is not None and cancel.cancelled:
            stats.complete = False
            stats.cancelled = True
            break
        if cutoff is not None:
            ticks += 1
            if ticks >= _CLOCK_EVERY:
                ticks = 0
                if time.monotonic() > cutoff:
                    # Every tuple already in ``certain`` survived all
                    # worlds, so returning early stays sound.
                    stats.complete = False
                    break
        # Valuations are applied inline — ground candidates are a raw
        # set lookup per world, null-bearing ones patch precomputed null
        # positions through the valuation mapping — because this loop is
        # the coNP-hard part and generic ``Valuation.apply_row`` costs
        # several times a dict probe.
        image = list(candidate)
        accepted = True
        checks = 0
        for index, entry in enumerate(queue):
            if cancel is not None and cancel.cancelled:
                stats.complete = False
                stats.cancelled = True
                accepted = False
                break
            checks += 1
            if null_pos:
                mapping = entry[1].mapping  # type: ignore[union-attr]
                for i in null_pos:
                    image[i] = mapping[candidate[i]]
                hit = tuple(image) in entry[2]  # type: ignore[operator]
            else:
                hit = candidate in entry[2]  # type: ignore[operator]
            if not hit:
                entry[0] += 1  # type: ignore[operator]
                accepted = False
                if best_first and index:
                    # Self-organising kill-rate order: move the killer to
                    # the front so similar doomed candidates die at their
                    # first check.  O(index) per promotion, and repeat
                    # killers sit at index 0 where promotion is free.
                    del queue[index]
                    queue.insert(0, entry)
                    stats.world_reorders += 1
                break
        stats.world_checks += checks
        if stats.cancelled:
            break
        if accepted:
            certain.append(candidate)
            stats.emitted += 1
            if progress is not None:
                progress(candidate, stats)
    stats.elapsed = time.monotonic() - start
    _SEARCH_LOG.stats = stats
    # Canonical order regardless of exploration order: complete searches
    # are row-identical across strategies, partial ones deterministic.
    return Relation(result_attrs, sorted(certain, key=repr))


def certain_answers(query: Expr, db: Database, **kwargs) -> Relation:
    """Classical certain answers: the null-free tuples of ``cert(Q, D)``."""
    with_nulls = certain_answers_with_nulls(query, db, **kwargs)
    rows = [row for row in with_nulls.rows if not any(is_null(v) for v in row)]
    return Relation(with_nulls.attributes, rows)


def possible_answer_union(
    query: Expr, db: Database, extra_constants: Optional[int] = None
) -> Set[Row]:
    """``⋃_v Q(v(D))`` over the enumerated valuations (maybe-answers)."""
    everything: Set[Row] = set()
    for v in enumerate_valuations(db, extra_constants=extra_constants):
        complete = v.apply_database(db)
        everything |= set(evaluate(query, complete, semantics="naive").rows)
    return everything


def represents_potential_answers(
    candidate: Relation,
    query: Expr,
    db: Database,
    extra_constants: Optional[int] = None,
) -> bool:
    """Check Definition 3: ``Q(v(D)) ⊆ v(A)`` for every valuation ``v``.

    Used to validate the ``Q?`` side of the improved translation
    (Lemma 2) on small instances.
    """
    for v in enumerate_valuations(db, extra_constants=extra_constants):
        complete = v.apply_database(db)
        answers = set(evaluate(query, complete, semantics="naive").rows)
        image = {v.apply_row(row) for row in candidate.rows}
        if not answers <= image:
            return False
    return True


def false_positives(returned: Relation, certain: Relation) -> List[Row]:
    """Tuples returned by an evaluation that are not certain answers."""
    certain_set = set(certain.rows)
    return [row for row in returned.rows if row not in certain_set]


def false_negatives(returned: Relation, certain: Relation) -> List[Row]:
    """Certain answers missed by an evaluation."""
    returned_set = set(returned.rows)
    return [row for row in certain.rows if row not in returned_set]
