"""Brute-force certain answers — the ground truth everything is tested against.

``cert(Q, D)`` (certain answers *with nulls*, Section 2) is the set of
tuples ``ā`` over ``adom(D)`` such that ``v(ā) ∈ Q(v(D))`` for every
valuation ``v``.  Computing it is coNP-hard in general, so this module
simply enumerates valuations over a sufficient finite domain — viable
only for the small databases used in tests and in the Section 4/7
ground-truth comparisons, which is precisely its role.

The classical null-free certain answers are the null-free tuples of
``cert(Q, D)`` (also Section 2), exposed as :func:`certain_answers`.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.algebra.evaluate import evaluate
from repro.algebra.expr import Expr
from repro.data.database import Database
from repro.data.nulls import is_null
from repro.data.relation import Relation
from repro.data.valuation import Valuation, enumerate_valuations

__all__ = [
    "certain_answers_with_nulls",
    "certain_answers",
    "possible_answer_union",
    "represents_potential_answers",
    "false_positives",
    "false_negatives",
    "SearchStats",
    "LAST_SEARCH",
]

Row = Tuple[object, ...]


@dataclass
class SearchStats:
    """Instrumentation of the last :func:`certain_answers_with_nulls` call.

    ``exhaustive_candidates`` is what the unpruned enumeration would have
    considered (``|adom|**arity``); ``candidates_considered`` is what the
    search actually examined; ``world_checks`` counts candidate-vs-world
    membership tests (each candidate short-circuits at its first
    rejecting world).  ``complete`` is ``False`` when a ``deadline=``
    cut the search short (the result is then a sound subset of
    ``cert(Q, D)``); ``elapsed`` is the wall-clock time of the call.
    """

    arity: int = 0
    pruned: bool = True
    exhaustive_candidates: int = 0
    candidates_considered: int = 0
    world_checks: int = 0
    complete: bool = True
    elapsed: float = 0.0


#: Stats of the most recent search (rebound, not mutated, per call).
LAST_SEARCH = SearchStats()


def _candidate_tuples(db: Database, arity: int, extra: Iterable[Row] = ()) -> Set[Row]:
    """Candidate answers: all tuples over ``adom(D)`` of the given arity.

    Exponential in the arity — fine for the unit-test scale this module
    targets.  ``extra`` lets callers seed known candidates (e.g. tuples
    already returned by some evaluation) without paying for a larger
    domain.
    """
    domain = sorted(db.active_domain(), key=repr)
    candidates = set(itertools.product(domain, repeat=arity))
    candidates.update(tuple(row) for row in extra)
    return candidates


def _seed_candidates(
    db: Database, first_world: Tuple[Valuation, Set[Row]]
) -> Set[Row]:
    """Candidates over ``adom(D)`` whose image lies in the first world's
    answers — the only tuples that can possibly be certain.

    For the first valuation ``v`` the certain answers satisfy
    ``v(ā) ∈ Q(v(D))``, so instead of enumerating ``adom^arity`` we take
    the preimage of the first world's answer set under ``v``: at each
    position of an answer row the candidate may hold any domain element
    mapping to that constant (the constant itself if it is in the
    domain, plus every null ``v`` sends there).
    """
    v, rows = first_world
    preimage: Dict[object, List[object]] = {}
    for x in sorted(db.active_domain(), key=repr):
        preimage.setdefault(v(x), []).append(x)
    candidates: Set[Row] = set()
    for row in rows:
        pools = [preimage.get(value) for value in row]
        if any(pool is None for pool in pools):
            continue  # some output constant is outside adom's image
        candidates.update(itertools.product(*pools))
    return candidates


def certain_answers_with_nulls(
    query: Expr,
    db: Database,
    attributes: Optional[Tuple[str, ...]] = None,
    extra_constants: Optional[int] = None,
    prune: bool = True,
    deadline: Optional[float] = None,
) -> Relation:
    """``cert(Q, D)`` by explicit valuation enumeration.

    For every candidate tuple ``ā`` over ``adom(D)`` and every valuation
    ``v`` into ``Const(D)`` plus fresh constants, check
    ``v(ā) ∈ Q(v(D))``.  The default number of fresh constants (one per
    null) is sufficient for first-order queries by genericity.

    With ``prune=True`` (the default) the candidate set is seeded from
    the first world's answers instead of all of ``adom^arity``, and each
    candidate is abandoned at the first world that rejects it; the
    result is provably identical to the exhaustive search
    (``prune=False``), which is kept for cross-checking.  Search effort
    is reported in :data:`LAST_SEARCH`.

    ``deadline`` (seconds) makes the search *anytime*: when the budget
    runs out, the sound subset of certain answers confirmed so far is
    returned — a tuple is only ever emitted after surviving **every**
    world, so partial results contain no false positives (they may miss
    certain answers).  ``LAST_SEARCH.complete`` records whether the
    search finished; ``LAST_SEARCH.elapsed`` the time it took.
    """
    global LAST_SEARCH
    start = time.monotonic()
    cutoff = None if deadline is None else start + deadline
    valuations = list(enumerate_valuations(db, extra_constants=extra_constants))
    # Evaluate the query on every possible world once.
    worlds: List[Tuple[Valuation, Set[Row]]] = []
    result_attrs: Optional[Tuple[str, ...]] = attributes
    timed_out = False
    for v in valuations:
        if cutoff is not None and worlds and time.monotonic() > cutoff:
            # Without every world no candidate can be *confirmed*
            # certain; the sound subset at this point is empty.  (The
            # first world is always evaluated so the result relation
            # keeps its attributes.)
            timed_out = True
            break
        complete = v.apply_database(db)
        answer = evaluate(query, complete, semantics="naive")
        if result_attrs is None:
            result_attrs = answer.attributes
        worlds.append((v, set(answer.rows)))
    if result_attrs is None:  # pragma: no cover - no valuations is impossible
        raise RuntimeError("no valuations produced")
    arity = len(result_attrs)
    stats = SearchStats(
        arity=arity,
        pruned=prune,
        exhaustive_candidates=len(db.active_domain()) ** arity,
    )
    if timed_out:
        stats.complete = False
        stats.elapsed = time.monotonic() - start
        LAST_SEARCH = stats
        return Relation(result_attrs, [])
    if prune:
        # Seeding already enforces membership in the first world.
        candidates = sorted(_seed_candidates(db, worlds[0]), key=repr)
        remaining = worlds[1:]
    else:
        candidates = sorted(_candidate_tuples(db, arity), key=repr)
        remaining = worlds
    stats.candidates_considered = len(candidates)
    certain = []
    for candidate in candidates:
        if cutoff is not None and time.monotonic() > cutoff:
            # Every tuple already in ``certain`` survived all worlds, so
            # returning early stays sound.
            stats.complete = False
            break
        accepted = True
        for v, rows in remaining:
            stats.world_checks += 1
            if v.apply_row(candidate) not in rows:
                accepted = False
                break
        if accepted:
            certain.append(candidate)
    stats.elapsed = time.monotonic() - start
    LAST_SEARCH = stats
    return Relation(result_attrs, certain)


def certain_answers(query: Expr, db: Database, **kwargs) -> Relation:
    """Classical certain answers: the null-free tuples of ``cert(Q, D)``."""
    with_nulls = certain_answers_with_nulls(query, db, **kwargs)
    rows = [row for row in with_nulls.rows if not any(is_null(v) for v in row)]
    return Relation(with_nulls.attributes, rows)


def possible_answer_union(
    query: Expr, db: Database, extra_constants: Optional[int] = None
) -> Set[Row]:
    """``⋃_v Q(v(D))`` over the enumerated valuations (maybe-answers)."""
    everything: Set[Row] = set()
    for v in enumerate_valuations(db, extra_constants=extra_constants):
        complete = v.apply_database(db)
        everything |= set(evaluate(query, complete, semantics="naive").rows)
    return everything


def represents_potential_answers(
    candidate: Relation,
    query: Expr,
    db: Database,
    extra_constants: Optional[int] = None,
) -> bool:
    """Check Definition 3: ``Q(v(D)) ⊆ v(A)`` for every valuation ``v``.

    Used to validate the ``Q?`` side of the improved translation
    (Lemma 2) on small instances.
    """
    for v in enumerate_valuations(db, extra_constants=extra_constants):
        complete = v.apply_database(db)
        answers = set(evaluate(query, complete, semantics="naive").rows)
        image = {v.apply_row(row) for row in candidate.rows}
        if not answers <= image:
            return False
    return True


def false_positives(returned: Relation, certain: Relation) -> List[Row]:
    """Tuples returned by an evaluation that are not certain answers."""
    certain_set = set(certain.rows)
    return [row for row in returned.rows if row not in certain_set]


def false_negatives(returned: Relation, certain: Relation) -> List[Row]:
    """Certain answers missed by an evaluation."""
    returned_set = set(returned.rows)
    return [row for row in certain.rows if row not in returned_set]
