"""Ground-truth certain answers and evaluation-quality metrics."""

from repro.certain.bruteforce import (
    SearchStats,
    certain_answers_with_nulls,
    certain_answers,
    possible_answer_union,
    represents_potential_answers,
    false_positives,
    false_negatives,
)
from repro.certain.metrics import (
    precision,
    recall,
    anytime_recall,
    search_summary,
    AnswerComparison,
    compare_answers,
)

__all__ = [
    "certain_answers_with_nulls",
    "certain_answers",
    "possible_answer_union",
    "represents_potential_answers",
    "false_positives",
    "false_negatives",
    "precision",
    "recall",
    "anytime_recall",
    "search_summary",
    "AnswerComparison",
    "compare_answers",
    "SearchStats",
]
