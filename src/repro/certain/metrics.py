"""Precision/recall bookkeeping for evaluation strategies (Section 7).

*Precision* is the fraction of returned tuples that are certain answers;
the paper's translations have precision 100% by construction (Theorem 1)
while plain SQL can drop close to zero (Q2).  *Recall*, in the paper's
scenario, is measured against the certain answers that standard SQL
evaluation returns — it stood at 100% in all their experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Set, Tuple

from repro.certain.bruteforce import SearchStats

__all__ = [
    "precision",
    "recall",
    "anytime_recall",
    "search_summary",
    "AnswerComparison",
    "compare_answers",
]

Row = Tuple[object, ...]


def precision(returned: Iterable[Row], certain: Iterable[Row]) -> float:
    """|returned ∩ certain| / |returned| (1.0 for an empty return set)."""
    returned_set = set(returned)
    if not returned_set:
        return 1.0
    certain_set = set(certain)
    return len(returned_set & certain_set) / len(returned_set)


def recall(returned: Iterable[Row], relevant: Iterable[Row]) -> float:
    """|returned ∩ relevant| / |relevant| (1.0 for an empty relevant set)."""
    relevant_set = set(relevant)
    if not relevant_set:
        return 1.0
    returned_set = set(returned)
    return len(returned_set & relevant_set) / len(relevant_set)


def anytime_recall(partial: Iterable[Row], full_certain: Iterable[Row]) -> float:
    """Fraction of ``cert(Q, D)`` a deadline- or cancellation-cut search kept.

    An anytime :func:`~repro.certain.certain_answers_with_nulls` run has
    precision 1.0 by construction (a tuple is only emitted after
    surviving every world), so its quality is summarised by recall
    against the full search alone.
    """
    return recall(partial, full_certain)


def search_summary(stats: SearchStats) -> Dict[str, object]:
    """Checkpoint/report payload for one brute-force search.

    The raw :meth:`~repro.certain.SearchStats.summary` counters plus the
    derived rates harness reports plot: what fraction of candidates the
    sampling filter refuted outright (``sample_refutation_rate``), how
    many verification checks each confirmed tuple cost on average
    (``checks_per_emit``), and the search-phase seconds net of the
    world-evaluation preamble (``search_elapsed``) that anytime budgets
    are measured against.
    """
    payload = stats.summary()
    considered = stats.candidates_considered
    payload["sample_refutation_rate"] = (
        stats.sample_refuted / considered if considered else 0.0
    )
    payload["checks_per_emit"] = (
        stats.world_checks / stats.emitted if stats.emitted else float(stats.world_checks)
    )
    payload["search_elapsed"] = max(stats.elapsed - stats.world_elapsed, 0.0)
    return payload


@dataclass(frozen=True)
class AnswerComparison:
    """Side-by-side quality report of two evaluations of the same query."""

    sql_returned: int
    sql_false_positives: int
    rewritten_returned: int
    missed_certain: int

    @property
    def sql_precision(self) -> float:
        if self.sql_returned == 0:
            return 1.0
        return 1.0 - self.sql_false_positives / self.sql_returned

    @property
    def rewritten_recall(self) -> float:
        """Recall wrt the certain answers SQL returned (paper's measure)."""
        relevant = self.sql_returned - self.sql_false_positives
        if relevant == 0:
            return 1.0
        return (relevant - self.missed_certain) / relevant


def compare_answers(
    sql_rows: Iterable[Row],
    rewritten_rows: Iterable[Row],
    false_positive_rows: Iterable[Row],
) -> AnswerComparison:
    """Build an :class:`AnswerComparison` from raw answer sets.

    ``false_positive_rows`` are the SQL answers flagged by the
    Section 4 detectors (a *lower bound* on the true false positives).
    """
    sql_set: Set[Row] = set(sql_rows)
    rewritten_set: Set[Row] = set(rewritten_rows)
    fp_set: Set[Row] = set(false_positive_rows) & sql_set
    certain_in_sql = sql_set - fp_set
    return AnswerComparison(
        sql_returned=len(sql_set),
        sql_false_positives=len(fp_set),
        rewritten_returned=len(rewritten_set),
        missed_certain=len(certain_in_sql - rewritten_set),
    )
