"""Command-line interface: ``python -m repro <command>``.

Commands regenerate the paper's artefacts or apply the rewriter to
ad-hoc SQL against the TPC-H schema:

* ``figure1``  — false-positive percentages (Section 4, Figure 1)
* ``figure4``  — price of correctness (Section 7, Figure 4)
* ``table1``   — relative performance across sizes (Table 1)
* ``section5`` — Figure 2 vs Figure 3 feasibility
* ``recall``   — precision/recall of the rewritten queries
* ``rewrite``  — print the certain-answer rewriting ``Q+`` of a query
* ``explain``  — cost-annotated plan of a query on a generated instance
* ``lint``     — static soundness analysis of queries (see
  ``docs/analyzer.md``); exits 1 when any query is unsound, 2 on
  syntax/rewrite errors

Each experiment accepts ``--paper-scale`` for settings closer to the
paper's (slower) and a ``--seed``.

``figure4`` and ``table1`` additionally take fault-tolerance flags,
handled by :mod:`repro.experiments.runner`:

* ``--workers N``      — fan instances out over a process pool;
* ``--task-timeout S`` — per-instance deadline in seconds (also the
  crash detector: a worker that dies never delivers its result);
* ``--retries K``      — re-submit a failed/timed-out instance up to K
  times with jittered backoff before recording it as failed;
* ``--checkpoint F``   — JSON file updated after every completed
  instance; re-running with the same file resumes, skipping completed
  instances;
* ``--time-budget S``  — whole-run wall-clock budget: a timer thread
  fires a :class:`~repro.engine.limits.CancelToken` after S seconds and
  the harness stops at the next instance boundary, printing the partial
  series (pair with ``--checkpoint`` to resume the remainder later).

Failed instances are reported per point instead of crashing the run.
"""

from __future__ import annotations

import argparse
import sys


def _armed_budget_token(args):
    """``(CancelToken, Timer)`` for ``--time-budget``, or ``(None, None)``.

    The timer thread fires the token; the harness notices at its next
    task boundary.  Caller must cancel the timer when the run finishes
    first.
    """
    if getattr(args, "time_budget", None) is None:
        return None, None
    import threading

    from repro.engine.limits import CancelToken

    token = CancelToken()
    timer = threading.Timer(
        args.time_budget,
        token.cancel,
        kwargs={"reason": f"--time-budget {args.time_budget:g}s expired"},
    )
    timer.daemon = True
    timer.start()
    return token, timer


def _cmd_figure1(args) -> int:
    from repro.experiments import falsepos

    falsepos.main(paper_scale=args.paper_scale)
    return 0


def _cmd_figure4(args) -> int:
    from repro.experiments import performance

    token, timer = _armed_budget_token(args)
    try:
        performance.main(
            workers=args.workers,
            task_timeout=args.task_timeout,
            retries=args.retries,
            checkpoint=args.checkpoint,
            cancel=token,
        )
    finally:
        if timer is not None:
            timer.cancel()
    return 0


def _cmd_table1(args) -> int:
    from repro.experiments import scaling

    token, timer = _armed_budget_token(args)
    try:
        scaling.main(
            workers=args.workers,
            task_timeout=args.task_timeout,
            retries=args.retries,
            checkpoint=args.checkpoint,
            cancel=token,
        )
    finally:
        if timer is not None:
            timer.cancel()
    return 0


def _cmd_section5(args) -> int:
    from repro.experiments import infeasible

    infeasible.main()
    return 0


def _cmd_recall(args) -> int:
    from repro.experiments import recall

    recall.main()
    return 0


def _cmd_rewrite(args) -> int:
    from repro.sql.parser import parse_sql
    from repro.sql.printer import to_sql
    from repro.sql.rewrite import RewriteOptions, rewrite_certain
    from repro.tpch.schema import tpch_schema

    sql = args.sql or sys.stdin.read()
    options = RewriteOptions(
        split=args.split, fold_views=args.fold_views, union_views=not args.no_union_views
    )
    rewritten = rewrite_certain(parse_sql(sql), tpch_schema(), options)
    print(to_sql(rewritten))
    return 0


def _cmd_explain(args) -> int:
    import random

    from repro.engine import explain_sql
    from repro.tpch.dbgen import generate_instance
    from repro.tpch.nullify import inject_nulls
    from repro.tpch.queries import QUERIES, sample_parameters

    db = inject_nulls(
        generate_instance(scale=args.scale, seed=args.seed),
        args.null_rate,
        seed=args.seed + 1,
    )
    if args.sql in QUERIES:
        sql = QUERIES[args.sql][0]
        params = sample_parameters(args.sql, db, rng=random.Random(args.seed))
    else:
        sql = args.sql or sys.stdin.read()
        params = {}
    print(explain_sql(db, sql, params))
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import UNSOUND, analyze_sql, render_json, render_pretty
    from repro.tpch.queries import QUERIES
    from repro.tpch.schema import tpch_schema

    schema = tpch_schema()
    named = []
    for item in args.queries or [None]:
        if item is not None and item.rstrip("+") in QUERIES:
            base = item.rstrip("+")
            sql = QUERIES[base][1 if item.endswith("+") else 0]
            named.append((item, sql))
        else:
            named.append(("<stdin>" if item is None else "<sql>", item or sys.stdin.read()))

    reports = [(name, analyze_sql(sql, schema)) for name, sql in named]
    if args.format == "json":
        if len(reports) == 1:
            print(render_json(reports[0][1], name=reports[0][0]))
        else:
            import json

            payload = []
            for name, report in reports:
                entry = report.to_dict()
                entry["query"] = name
                payload.append(entry)
            print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for i, (name, report) in enumerate(reports):
            if i:
                print()
            print(render_pretty(report, name=name))
    return 1 if any(report.verdict == UNSOUND for _, report in reports) else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Guagliardo & Libkin, PODS 2016",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, handler, doc in [
        ("figure1", _cmd_figure1, "false-positive rates (Figure 1)"),
        ("figure4", _cmd_figure4, "price of correctness (Figure 4)"),
        ("table1", _cmd_table1, "scaling of the ratio (Table 1)"),
        ("section5", _cmd_section5, "Figure 2 infeasibility (Section 5)"),
        ("recall", _cmd_recall, "precision/recall (Section 7)"),
    ]:
        p = sub.add_parser(name, help=doc)
        p.add_argument(
            "--paper-scale",
            action="store_true",
            help="use settings close to the paper's (much slower)",
        )
        if name in ("figure4", "table1"):
            p.add_argument(
                "--workers",
                type=int,
                default=None,
                help="parallelise instances over a process pool "
                "(default: serial, deterministic)",
            )
            p.add_argument(
                "--task-timeout",
                type=float,
                default=None,
                help="per-instance timeout in seconds; a crashed or hung "
                "worker is detected, retried, and finally recorded as a "
                "failed instance instead of sinking the run",
            )
            p.add_argument(
                "--retries",
                type=int,
                default=1,
                help="re-submissions per failed instance (jittered backoff)",
            )
            p.add_argument(
                "--checkpoint",
                metavar="FILE",
                default=None,
                help="JSON file updated after each completed instance; "
                "re-running with the same file resumes, skipping "
                "instances already measured",
            )
            p.add_argument(
                "--time-budget",
                type=float,
                default=None,
                metavar="S",
                help="whole-run wall-clock budget in seconds: a timer "
                "fires a CancelToken and the harness stops at the next "
                "instance boundary with partial results (combine with "
                "--checkpoint to resume later)",
            )
        p.set_defaults(handler=handler)

    p = sub.add_parser("rewrite", help="rewrite SQL into its certain-answer Q+")
    p.add_argument("sql", nargs="?", help="SQL text (stdin if omitted)")
    p.add_argument("--split", default="auto", choices=["never", "auto", "always"])
    p.add_argument("--fold-views", default="auto", choices=["never", "auto"])
    p.add_argument("--no-union-views", action="store_true")
    p.set_defaults(handler=_cmd_rewrite)

    p = sub.add_parser(
        "lint",
        help="static soundness analysis: certified / suspect / unsound",
        description=(
            "Analyze queries against the TPC-H schema with the static "
            "soundness analyzer (repro.analysis).  Arguments are query "
            "names (Q1..Q4, or Q1+..Q4+ for the rewritten versions) or "
            "literal SQL; with no argument, SQL is read from stdin.  "
            "Exit status: 0 when no query is unsound, 1 otherwise, 2 on "
            "syntax or rewrite errors."
        ),
    )
    p.add_argument("queries", nargs="*", help="query names (Q1..Q4, Q1+..Q4+) or SQL")
    p.add_argument("--format", default="pretty", choices=["pretty", "json"])
    p.set_defaults(handler=_cmd_lint)

    p = sub.add_parser("explain", help="EXPLAIN a query on a generated instance")
    p.add_argument("sql", nargs="?", help="SQL text, or Q1..Q4 (stdin if omitted)")
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--null-rate", type=float, default=0.03)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(handler=_cmd_explain)

    return parser


def main(argv=None) -> int:
    from repro.sql.lexer import SqlSyntaxError
    from repro.sql.nullability import RewriteError

    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except SqlSyntaxError as err:
        print(f"syntax error: {err}", file=sys.stderr)
        return 2
    except RewriteError as err:
        print(f"rewrite error: {err}", file=sys.stderr)
        for diag in err.diagnostics:
            print(f"  [{diag.rule}] {diag.message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
