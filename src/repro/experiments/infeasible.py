"""Experiment E4 — Section 5: the Figure 2 translation is infeasible.

The paper reports that the theoretically elegant ``Q → (Qt, Qf)``
translation "starts running out of memory already on instances with
fewer than 10³ tuples" because of its active-domain products.  We
reproduce the comparison on the paper's own Section 6 example

    Q  =  R − (π_α(T) − σ_θ(S))

whose ``Qt`` requires ``adom²`` twice, against the Figure 3 ``Q+``:

    Q+ =  R ▷⇑ (π_α(T) − σ_θ*(S))

For growing instance sizes we evaluate both under a row budget and
record time and the number of intermediate rows materialised; ``Qt``
explodes quadratically and trips the budget while ``Q+`` stays linear.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional

from repro.algebra.conditions import eq
from repro.algebra.evaluate import EvaluationBudgetExceeded, Evaluator
from repro.algebra.expr import Difference, Projection, RelationRef, Selection
from repro.data.database import Database
from repro.data.nulls import Null
from repro.data.relation import Relation
from repro.translate.improved import certain_query
from repro.translate.libkin import translate_libkin
from repro.experiments.report import render_table

__all__ = ["run_infeasibility_experiment", "section6_example_query", "make_rst_database", "main"]


def section6_example_query():
    """``Q = R − (π_{A,B}(T) − σ_{C=1}(S))`` over R(A,B), S(A,B,C), T(A,B,C)."""
    return Difference(
        RelationRef("R"),
        Difference(
            Projection(RelationRef("T"), ("A", "B")),
            Projection(Selection(RelationRef("S"), eq("C", 1)), ("A", "B")),
        ),
    )


def make_rst_database(n: int, null_rate: float = 0.1, seed: int = 0) -> Database:
    """Random R/S/T instance with ``3n`` tuples over a small domain."""
    rng = random.Random(seed)

    def cell():
        if rng.random() < null_rate:
            return Null()
        return rng.randint(1, max(3, n // 2))

    def rows(width, count):
        return [tuple(cell() for _ in range(width)) for _ in range(count)]

    return Database(
        {
            "R": Relation(("A", "B"), rows(2, n)),
            "S": Relation(("A", "B", "C"), rows(3, n)),
            "T": Relation(("A", "B", "C"), rows(3, n)),
        }
    )


def run_infeasibility_experiment(
    sizes=(10, 25, 50, 100, 200),
    budget: int = 2_000_000,
    null_rate: float = 0.1,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """For each size, time ``Q+`` and ``Qt`` (with a row budget).

    Returns a list of dicts with keys ``size``, ``plus_time``,
    ``plus_rows``, ``libkin_time``, ``libkin_rows``, ``libkin_failed``.
    """
    query = section6_example_query()
    results = []
    for n in sizes:
        db = make_rst_database(n, null_rate=null_rate, seed=seed + n)
        q_plus = certain_query(query)
        qt, _qf = translate_libkin(query, db)

        evaluator = Evaluator(db, semantics="naive")
        start = time.perf_counter()
        evaluator.evaluate(q_plus)
        plus_time = time.perf_counter() - start
        plus_rows = evaluator.rows_produced

        evaluator = Evaluator(db, semantics="naive", max_rows=budget)
        start = time.perf_counter()
        failed: Optional[str] = None
        try:
            evaluator.evaluate(qt)
        except EvaluationBudgetExceeded as exc:
            failed = str(exc)
        libkin_time = time.perf_counter() - start
        results.append(
            {
                "size": n,
                "plus_time": plus_time,
                "plus_rows": plus_rows,
                "libkin_time": libkin_time,
                "libkin_rows": evaluator.rows_produced,
                "libkin_failed": failed,
            }
        )
    return results


def main() -> str:
    results = run_infeasibility_experiment()
    rows = []
    for r in results:
        rows.append(
            [
                str(r["size"]),
                f"{r['plus_time'] * 1000:.1f}",
                str(r["plus_rows"]),
                f"{r['libkin_time'] * 1000:.1f}",
                str(r["libkin_rows"]),
                "BUDGET EXCEEDED" if r["libkin_failed"] else "ok",
            ]
        )
    text = render_table(
        "Section 5 — Figure 2 translation (Qt) vs Figure 3 (Q+), Section 6 example",
        ["|R|=|S|=|T|", "Q+ ms", "Q+ rows", "Qt ms", "Qt rows", "Qt status"],
        rows,
    )
    print(text)
    return text


if __name__ == "__main__":
    main()
