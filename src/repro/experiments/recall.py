"""Experiment E5 — Section 7's precision and recall measurements.

Precision of the rewritten queries is 100% by Theorem 1; recall is
measured, as in the paper, against the certain answers that standard
SQL evaluation returns: run ``Q_i`` and ``Q+_i`` on DataFiller-style
instances, flag ``Q_i``'s false positives with the Section 4 detectors,
and check that ``Q+_i`` returned every remaining (certain) answer and
no flagged one.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List

from repro.certain.metrics import AnswerComparison, compare_answers
from repro.engine import execute_sql
from repro.fp.detectors import detector_for
from repro.sql.parser import parse_sql
from repro.sql.rewrite import rewrite_certain
from repro.tpch.datafiller import generate_small_instance
from repro.tpch.nullify import inject_nulls
from repro.tpch.queries import QUERIES, sample_parameters
from repro.tpch.schema import tpch_schema
from repro.experiments.report import render_table

__all__ = ["run_recall_experiment", "main"]


def run_recall_experiment(
    null_rates: Iterable[float] = (0.01, 0.03, 0.05),
    instances: int = 3,
    param_draws: int = 3,
    scale: float = 0.05,
    seed: int = 0,
    query_ids=("Q1", "Q2", "Q3", "Q4"),
) -> Dict[str, List[AnswerComparison]]:
    """Return per-query :class:`AnswerComparison` lists over all runs."""
    rng = random.Random(seed)
    schema = tpch_schema()
    queries = {
        qid: (parse_sql(QUERIES[qid][0]), rewrite_certain(parse_sql(QUERIES[qid][0]), schema))
        for qid in query_ids
    }
    out: Dict[str, List[AnswerComparison]] = {qid: [] for qid in query_ids}

    for rate in null_rates:
        for _ in range(instances):
            base = generate_small_instance(scale=scale, seed=rng.randrange(2**31))
            db = inject_nulls(base, rate, seed=rng.randrange(2**31))
            for qid in query_ids:
                original, plus = queries[qid]
                detect = detector_for(qid)
                for _ in range(param_draws):
                    params = sample_parameters(qid, db, rng=rng)
                    sql_rows = execute_sql(db, original, params).rows
                    plus_rows = execute_sql(db, plus, params).rows
                    flagged = [r for r in sql_rows if detect(params, db, r)]
                    out[qid].append(compare_answers(sql_rows, plus_rows, flagged))
    return out


def main() -> str:
    results = run_recall_experiment()
    rows = []
    for qid in sorted(results):
        comparisons = results[qid]
        total_sql = sum(c.sql_returned for c in comparisons)
        total_fp = sum(c.sql_false_positives for c in comparisons)
        total_missed = sum(c.missed_certain for c in comparisons)
        recalls = [c.rewritten_recall for c in comparisons]
        rows.append(
            [
                qid,
                str(total_sql),
                str(total_fp),
                f"{100.0 * (1 - total_fp / total_sql) if total_sql else 100.0:.1f}%",
                str(total_missed),
                f"{100.0 * min(recalls):.1f}%" if recalls else "—",
            ]
        )
    text = render_table(
        "Section 7 — precision/recall: Q+ vs certain answers returned by SQL",
        ["Query", "SQL answers", "detected FPs", "SQL precision ≤", "missed certain", "Q+ recall ≥"],
        rows,
    )
    print(text)
    return text


if __name__ == "__main__":
    main()
