"""Experiment harnesses regenerating the paper's figures and tables.

Each module exposes a ``run_*`` function returning plain data
structures plus a ``main`` that prints the corresponding figure/table;
the ``benchmarks/`` directory wires them into pytest-benchmark.

================  ======================================  =====================
Experiment        Paper artefact                          Module
================  ======================================  =====================
False positives   Figure 1                                ``falsepos``
Price of          Figure 4                                ``performance``
correctness
Scaling           Table 1                                 ``scaling``
Fig. 2 blow-up    Section 5 (prose)                       ``infeasible``
Precision/recall  Section 7 (prose)                       ``recall``
================  ======================================  =====================
"""

from repro.experiments.falsepos import run_false_positive_experiment
from repro.experiments.performance import run_price_of_correctness, time_query
from repro.experiments.scaling import run_scaling_experiment
from repro.experiments.infeasible import run_infeasibility_experiment
from repro.experiments.recall import run_recall_experiment

__all__ = [
    "run_false_positive_experiment",
    "run_price_of_correctness",
    "time_query",
    "run_scaling_experiment",
    "run_infeasibility_experiment",
    "run_recall_experiment",
]
