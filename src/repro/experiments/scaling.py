"""Experiment E3 — Table 1: relative performance across instance sizes.

The paper's hypothesis is that ``t+/t`` barely depends on instance size
(confirmed for Q1–Q3; Q4 degrades with size because its rewriting has
three extra lineitem-joining subqueries).  We reproduce the table with
scale units 1×/3×/6×/10× standing in for 1/3/6/10 GB.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Tuple

from repro.engine.limits import CancelToken
from repro.experiments.performance import rewritten_queries, time_query
from repro.experiments.report import format_ratio, render_table
from repro.experiments.runner import RunReport, run_tasks
from repro.testing.faults import check_task_fault
from repro.tpch.dbgen import generate_instance
from repro.tpch.nullify import inject_nulls
from repro.tpch.queries import sample_parameters

__all__ = ["run_scaling_experiment", "main", "LAST_RUN"]

#: Fault-tolerance report of the most recent harness run (rebound, not
#: mutated, per call — the ``LAST_SEARCH`` idiom).
LAST_RUN = RunReport()


def _scale_rate_averages(task: tuple) -> Dict[str, object]:
    """Per-(scale, rate) average ratios (pool worker body).

    Returns JSON-serialisable ``{"averages": {qid: avg}, "discarded": n}``
    so results survive checkpoint round-trips.
    """
    (
        key, scale, rate, instance_seed, null_seed, param_seed,
        query_ids, param_draws, repeats, base_scale,
    ) = task
    check_task_fault(key)
    queries = rewritten_queries(query_ids)
    base = generate_instance(scale=scale * base_scale, seed=instance_seed)
    db = inject_nulls(base, rate, seed=null_seed)
    rng = random.Random(param_seed)
    averages: Dict[str, float] = {}
    discarded = 0
    for qid in query_ids:
        original, plus = queries[qid]
        ratios = []
        for _ in range(param_draws):
            params = sample_parameters(qid, db, rng=rng)
            t_orig, _ = time_query(db, original, params, repeats)
            t_plus, _ = time_query(db, plus, params, repeats)
            if t_orig > 0:
                ratios.append(t_plus / t_orig)
            else:
                discarded += 1
        if ratios:
            averages[qid] = sum(ratios) / len(ratios)
    return {"averages": averages, "discarded": discarded}


def run_scaling_experiment(
    scales: Iterable[float] = (1.0, 3.0, 6.0, 10.0),
    null_rates: Iterable[float] = (0.01, 0.03, 0.05),
    param_draws: int = 2,
    repeats: int = 1,
    seed: int = 0,
    query_ids=("Q1", "Q2", "Q3", "Q4"),
    base_scale: float = 0.5,
    workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
    retries: int = 1,
    backoff: float = 0.1,
    checkpoint: Optional[str] = None,
    cancel: Optional[CancelToken] = None,
) -> Dict[str, Dict[float, Tuple[float, float]]]:
    """Return ``{query: {scale: (min avg ratio, max avg ratio)}}``.

    For each scale, the ratio is averaged per null rate and the reported
    range is over null rates — exactly how Table 1 summarises Figure 4's
    data at larger sizes.  ``base_scale`` maps "1 GB" onto a generator
    scale unit.  ``workers`` parallelises over (scale, null rate) cells
    through the fault-tolerant task runner, with the same
    ``task_timeout``/``retries``/``backoff``/``checkpoint`` semantics as
    :func:`~repro.experiments.performance.run_price_of_correctness`
    (failures land in ``LAST_RUN.failed_instances`` keyed
    ``"<scale>:<rate>"``).  The default stays serial and bit-reproduces
    the historical parameter stream unless a ``checkpoint`` routes it
    through the task runner.  ``cancel`` stops the harness at the next
    (scale, rate) cell boundary with completed measurements intact, as
    in :func:`~repro.experiments.performance.run_price_of_correctness`.
    """
    global LAST_RUN
    scales = tuple(scales)
    null_rates = tuple(null_rates)
    query_ids = tuple(query_ids)
    rng = random.Random(seed)
    table: Dict[str, Dict[float, Tuple[float, float]]] = {q: {} for q in query_ids}

    if (workers is not None and workers > 1) or checkpoint is not None:
        tasks: Dict[str, tuple] = {}
        for scale in scales:
            for rate in null_rates:
                key = f"{scale:g}:{rate:g}"
                tasks[key] = (
                    key, scale, rate, rng.randrange(2**31), rng.randrange(2**31),
                    rng.randrange(2**31), query_ids, param_draws, repeats,
                    base_scale,
                )
        results, report = run_tasks(
            _scale_rate_averages,
            tasks,
            workers=workers,
            task_timeout=task_timeout,
            retries=retries,
            backoff=backoff,
            checkpoint=checkpoint,
            rng=random.Random(rng.randrange(2**31)),
            cancel=cancel,
        )
        for scale in scales:
            cells = [
                results[f"{scale:g}:{rate:g}"]
                for rate in null_rates
                if f"{scale:g}:{rate:g}" in results
            ]
            report.discarded_samples += sum(cell["discarded"] for cell in cells)
            for qid in query_ids:
                values = [
                    cell["averages"][qid] for cell in cells if qid in cell["averages"]
                ]
                if values:
                    table[qid][scale] = (min(values), max(values))
        LAST_RUN = report
        return table

    report = RunReport(total=len(scales) * len(null_rates))
    queries = rewritten_queries(query_ids)
    for scale in scales:
        per_rate: Dict[str, List[float]] = {q: [] for q in query_ids}
        for rate in null_rates:
            if cancel is not None and cancel.cancelled:
                report.cancelled = True
                break
            base = generate_instance(
                scale=scale * base_scale, seed=rng.randrange(2**31)
            )
            db = inject_nulls(base, rate, seed=rng.randrange(2**31))
            for qid in query_ids:
                original, plus = queries[qid]
                ratios = []
                for _ in range(param_draws):
                    params = sample_parameters(qid, db, rng=rng)
                    t_orig, _ = time_query(db, original, params, repeats)
                    t_plus, _ = time_query(db, plus, params, repeats)
                    if t_orig > 0:
                        ratios.append(t_plus / t_orig)
                    else:
                        report.discarded_samples += 1
                if ratios:
                    per_rate[qid].append(sum(ratios) / len(ratios))
            report.completed += 1
        for qid in query_ids:
            values = per_rate[qid]
            if values:
                table[qid][scale] = (min(values), max(values))
    LAST_RUN = report
    return table


def main(
    workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
    retries: int = 1,
    checkpoint: Optional[str] = None,
    cancel: Optional[CancelToken] = None,
) -> str:
    results = run_scaling_experiment(
        workers=workers,
        task_timeout=task_timeout,
        retries=retries,
        checkpoint=checkpoint,
        cancel=cancel,
    )
    scales = sorted({s for per in results.values() for s in per})
    header = ["Query"] + [f"{s:g}x" for s in scales]
    rows = []
    for qid in sorted(results):
        row = [qid]
        for s in scales:
            lo_hi = results[qid].get(s)
            row.append(
                "—" if lo_hi is None else f"{format_ratio(lo_hi[0])} – {format_ratio(lo_hi[1])}"
            )
        rows.append(row)
    text = render_table(
        "Table 1 — ranges of average relative performance (Q+ vs Q) per size",
        header,
        rows,
    )
    if LAST_RUN.cancelled:
        text += (
            f"\ncancelled after {LAST_RUN.completed + LAST_RUN.resumed}"
            f"/{LAST_RUN.total} cells"
            + (f" ({cancel.reason})" if cancel is not None and cancel.reason else "")
        )
    if LAST_RUN.failed_instances:
        failures = ", ".join(
            f"{f.key} ({f.error})" for f in LAST_RUN.failed_instances
        )
        text += f"\nfailed instances: {failures}"
    print(text)
    return text


if __name__ == "__main__":
    main()
