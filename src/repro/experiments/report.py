"""Plain-text rendering of experiment results (figures become tables)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["render_series", "render_table", "format_ratio"]


def format_ratio(value: float) -> str:
    """Compact ratio formatting across the paper's 1e-4 … 4 range."""
    if value < 0.01:
        return f"{value:.4f}"
    if value < 0.1:
        return f"{value:.3f}"
    return f"{value:.2f}"


def render_series(
    title: str,
    x_label: str,
    series: Dict[str, List[Tuple[float, float]]],
    y_format=lambda v: f"{v:.1f}",
) -> str:
    """Render ``{name: [(x, y), …]}`` as one table with a column per name."""
    xs = sorted({x for points in series.values() for x, _y in points})
    names = sorted(series)
    lookup = {name: dict(points) for name, points in series.items()}
    header = [x_label] + names
    rows = []
    for x in xs:
        row = [f"{x:g}"]
        for name in names:
            y = lookup[name].get(x)
            row.append("—" if y is None else y_format(y))
        rows.append(row)
    return render_table(title, header, rows)


def render_table(title: str, header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def line(cells):
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))

    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    parts = [title, sep, line(header), sep]
    parts += [line(row) for row in rows]
    parts.append(sep)
    return "\n".join(parts)
