"""Fault-tolerant task execution for the experiment harnesses.

The figure4/table1 harnesses used to fan instances out with a bare
``pool.map``: one crashed or hung worker sank the whole run, and an
interrupted run lost every measurement.  :func:`run_tasks` replaces
that with per-task submission, adding:

* a **per-task timeout** (``task_timeout``) — a crashed pool worker
  surfaces as a lost task that never delivers its result, so the
  timeout is also the crash detector;
* up to ``retries`` **re-submissions** with exponential, jittered
  backoff, so transient failures don't count as losses;
* a per-task **failure record** (:class:`RunReport.failed_instances`)
  instead of a crashed run — the surviving tasks' measurements are
  kept;
* incremental **JSON checkpointing**: after every completed task the
  result map is atomically rewritten to ``checkpoint``, and a later
  run with the same checkpoint file skips completed tasks (their
  results are loaded instead of re-measured);
* cooperative **cancellation** (``cancel``) — a
  :class:`~repro.engine.limits.CancelToken` fired from another thread
  stops the run at the next task boundary with the completed results
  (and their checkpoint) intact, ``RunReport.cancelled = True``.

Tasks are an ordered ``{key: payload}`` mapping; the worker callable
must be picklable and return JSON-serialisable results (they round-trip
through the checkpoint file).  ``workers > 1`` uses a
``multiprocessing`` pool; otherwise tasks run inline (retries and
checkpointing still apply, but a hard worker crash or hang cannot be
contained in-process — use the pool for that).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine.limits import CancelToken

__all__ = ["TaskFailure", "RunReport", "run_tasks", "load_checkpoint"]


@dataclass
class TaskFailure:
    """One task that exhausted its retries."""

    key: str
    error: str
    attempts: int


@dataclass
class RunReport:
    """What happened to a fault-tolerant harness run.

    Rebound (not mutated) into the harness modules' ``LAST_RUN`` after
    each run, following the ``certain.bruteforce.LAST_SEARCH`` idiom.
    """

    total: int = 0
    completed: int = 0
    #: tasks skipped because the checkpoint already held their result
    resumed: int = 0
    retries: int = 0
    failed_instances: List[TaskFailure] = field(default_factory=list)
    #: harness-level samples dropped by quality guards (``t_orig > 0``)
    discarded_samples: int = 0
    #: a ``cancel`` token fired mid-run; completed results (and their
    #: checkpoint) were kept, remaining tasks were never attempted
    cancelled: bool = False

    @property
    def failed(self) -> int:
        return len(self.failed_instances)


def load_checkpoint(path: Optional[str]) -> Dict[str, object]:
    """Completed-task results from ``path``; ``{}`` if absent/unset."""
    if path is None or not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    return dict(data.get("results", {}))


def _write_checkpoint(path: str, results: Dict[str, object]) -> None:
    """Atomic rewrite so an interrupt never leaves a torn file."""
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump({"results": results}, handle)
    os.replace(tmp, path)


def run_tasks(
    worker: Callable[[tuple], object],
    tasks: Dict[str, tuple],
    workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
    retries: int = 1,
    backoff: float = 0.1,
    checkpoint: Optional[str] = None,
    rng: Optional[random.Random] = None,
    cancel: Optional[CancelToken] = None,
) -> Tuple[Dict[str, object], RunReport]:
    """Run ``worker`` over ``tasks``; return ``(results, report)``.

    ``results`` maps each *successful* task key to its result (including
    results loaded from the checkpoint); tasks that exhausted their
    ``retries`` appear in ``report.failed_instances`` instead.  The
    timeout clock for a task starts when the collector begins waiting on
    it, which overcounts queueing time behind a saturated pool — set it
    generously relative to a single task's cost.  Without a timeout a
    crashed worker's task waits forever; always pair crash tolerance
    with ``task_timeout``.

    ``cancel`` is consulted at every task boundary (before each serial
    task, before each pool collection wait): once fired, no further
    tasks are attempted, in-flight pool work is discarded, and the
    already-completed results are returned with
    ``report.cancelled = True``.  Because the checkpoint is rewritten
    after every completion, a cancelled run with a ``checkpoint`` can be
    resumed later from exactly where it stopped.
    """
    report = RunReport(total=len(tasks))
    rng = rng or random.Random(0)
    results: Dict[str, object] = {}
    done = load_checkpoint(checkpoint)
    for key in tasks:
        if key in done:
            results[key] = done[key]
            report.resumed += 1
    pending = [key for key in tasks if key not in results]

    def record_success(key: str, result: object) -> None:
        results[key] = result
        report.completed += 1
        if checkpoint is not None:
            _write_checkpoint(checkpoint, results)

    def sleep_backoff(attempt: int) -> None:
        if backoff > 0:
            time.sleep(backoff * (2 ** (attempt - 1)) * (0.5 + rng.random()))

    if workers is not None and workers > 1:
        attempts = {key: 1 for key in pending}
        with multiprocessing.Pool(workers) as pool:
            inflight = {
                key: pool.apply_async(worker, (tasks[key],)) for key in pending
            }
            queue = deque(pending)
            while queue:
                if cancel is not None and cancel.cancelled:
                    # Pool.__exit__ terminates the workers; completed
                    # results (and their checkpoint) are already safe.
                    report.cancelled = True
                    break
                key = queue.popleft()
                try:
                    result = inflight[key].get(timeout=task_timeout)
                except multiprocessing.TimeoutError:
                    error = (
                        f"no result within {task_timeout:g}s "
                        "(worker hung, crashed, or pool saturated)"
                    )
                except Exception as exc:  # worker raised
                    error = f"{type(exc).__name__}: {exc}"
                else:
                    record_success(key, result)
                    continue
                if attempts[key] <= retries:
                    report.retries += 1
                    sleep_backoff(attempts[key])
                    attempts[key] += 1
                    inflight[key] = pool.apply_async(worker, (tasks[key],))
                    queue.append(key)
                else:
                    report.failed_instances.append(
                        TaskFailure(key, error, attempts[key])
                    )
        return results, report

    for key in pending:
        if cancel is not None and cancel.cancelled:
            report.cancelled = True
            break
        for attempt in range(1, retries + 2):
            try:
                result = worker(tasks[key])
            except Exception as exc:
                if attempt <= retries:
                    report.retries += 1
                    sleep_backoff(attempt)
                    continue
                report.failed_instances.append(
                    TaskFailure(key, f"{type(exc).__name__}: {exc}", attempt)
                )
            else:
                record_success(key, result)
            break
    return results, report
