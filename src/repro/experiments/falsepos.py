"""Experiment E1 — Figure 1: how many false positives?

For each null rate, generate DataFiller-style instances, run Q1–Q4 with
random parameters, and measure the percentage of returned answers that
the Section 4 detectors prove to be false positives (a lower bound, as
in the paper).  Q2's detector applies to the whole answer set at once:
if any ``o_custkey`` is null, every answer is false.

Paper-scale settings (100 instances per rate, 5 parameter draws each)
are reproduced by passing larger ``instances``/``executions``; defaults
are sized for a laptop bench run.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.engine import execute_sql
from repro.fp.detectors import count_false_positives
from repro.sql.parser import parse_sql
from repro.tpch.datafiller import generate_small_instance
from repro.tpch.nullify import inject_nulls
from repro.tpch.queries import QUERIES, sample_parameters
from repro.experiments.report import render_series

__all__ = ["run_false_positive_experiment", "PAPER_NULL_RATES", "main"]

#: The paper's x axis: 0.5%–6% in steps of 0.5%, then 7%–10% in steps of 1%.
PAPER_NULL_RATES: Tuple[float, ...] = tuple(
    round(0.005 * i, 4) for i in range(1, 13)
) + (0.07, 0.08, 0.09, 0.10)


def run_false_positive_experiment(
    null_rates: Iterable[float] = (0.005, 0.02, 0.04, 0.06, 0.08, 0.10),
    instances: int = 5,
    executions: int = 3,
    scale: float = 0.05,
    seed: int = 0,
    query_ids: Sequence[str] = ("Q1", "Q2", "Q3", "Q4"),
) -> Dict[str, List[Tuple[float, float]]]:
    """Return ``{query: [(null rate, avg %% false positives), …]}``.

    The average is over instances × parameter draws, counting executions
    that returned at least one row (as a percentage of answers must).
    """
    rng = random.Random(seed)
    parsed = {qid: parse_sql(QUERIES[qid][0]) for qid in query_ids}
    series: Dict[str, List[Tuple[float, float]]] = {qid: [] for qid in query_ids}

    for rate in null_rates:
        percentages: Dict[str, List[float]] = {qid: [] for qid in query_ids}
        for instance_no in range(instances):
            base = generate_small_instance(
                scale=scale, seed=rng.randrange(2**31)
            )
            db = inject_nulls(base, rate, seed=rng.randrange(2**31))
            for qid in query_ids:
                for _ in range(executions):
                    params = sample_parameters(qid, db, rng=rng)
                    answers = execute_sql(db, parsed[qid], params)
                    if not answers.rows:
                        continue
                    fp = count_false_positives(qid, params, db, answers.rows)
                    percentages[qid].append(100.0 * fp / len(answers.rows))
        for qid in query_ids:
            values = percentages[qid]
            avg = sum(values) / len(values) if values else 0.0
            series[qid].append((round(rate * 100, 2), avg))
    return series


def main(paper_scale: bool = False) -> str:
    if paper_scale:
        series = run_false_positive_experiment(
            null_rates=PAPER_NULL_RATES, instances=100, executions=5, scale=1.0
        )
    else:
        series = run_false_positive_experiment()
    text = render_series(
        "Figure 1 — average % of false positives per null rate",
        "null rate %",
        series,
        y_format=lambda v: f"{v:.1f}",
    )
    print(text)
    return text


if __name__ == "__main__":
    main()
