"""Experiment E2 — Figure 4: the price of correctness.

For each null rate, generate DBGen-style instances and measure the
ratio ``t+/t`` of the run time of the rewritten query ``Q+_i`` to the
original ``Q_i`` on the same engine (relative performance, as in the
paper).  A ratio near 1 means correctness is (almost) free; below 1 the
correct query is *faster* (Q2's short-circuit); above 1 it is slower
(Q4's extra correlated subqueries).
"""

from __future__ import annotations

import random
import time
from typing import Dict, Iterable, List, Optional, Tuple, Union as TUnion

from repro.data.database import Database
from repro.engine import Executor
from repro.engine.executor import PLAN_CACHE
from repro.engine.limits import CancelToken
from repro.sql import ast
from repro.sql.parser import parse_sql
from repro.sql.rewrite import RewriteOptions, rewrite_certain
from repro.testing.faults import check_task_fault
from repro.tpch.dbgen import generate_instance
from repro.tpch.nullify import inject_nulls
from repro.tpch.queries import QUERIES, sample_parameters
from repro.tpch.schema import tpch_schema
from repro.experiments.report import format_ratio, render_series
from repro.experiments.runner import RunReport, run_tasks

__all__ = [
    "run_price_of_correctness",
    "time_query",
    "rewritten_queries",
    "main",
    "LAST_RUN",
]

#: Fault-tolerance report of the most recent harness run (rebound, not
#: mutated, per call — the ``LAST_SEARCH`` idiom).
LAST_RUN = RunReport()


def time_query(
    db: Database,
    query: TUnion[str, ast.Query, ast.Select, ast.SetOp],
    params: Dict[str, object],
    repeats: int = 3,
) -> Tuple[float, int]:
    """Best-of-*repeats* wall-clock execution time and result size.

    ``query`` may be SQL text or an already-parsed statement.  The
    statement is prepared once (through the plan cache when given as
    text) and re-run ``repeats`` times, so the repeats measure evaluation
    rather than parsing and recompilation.
    """
    if isinstance(query, str):
        query = PLAN_CACHE.get_or_parse(query, False)
    prepared = Executor(db, params).prepare(ast.query_of(query))
    best = float("inf")
    size = 0
    for _ in range(repeats):
        start = time.perf_counter()
        result = prepared.run()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        size = len(result)
    return best, size


def rewritten_queries(
    query_ids=("Q1", "Q2", "Q3", "Q4"),
    use_appendix: bool = False,
    options: Optional[RewriteOptions] = None,
) -> Dict[str, Tuple[ast.Query, ast.Query]]:
    """``{qid: (original AST, rewritten AST)}``.

    ``use_appendix=True`` takes the paper's hand rewrites verbatim;
    otherwise the automatic rewriter derives them (the default — tests
    assert both produce identical answers).
    """
    schema = tpch_schema()
    out: Dict[str, Tuple[ast.Query, ast.Query]] = {}
    for qid in query_ids:
        original_sql, appendix_sql, _params = QUERIES[qid]
        original = parse_sql(original_sql)
        if use_appendix:
            plus = parse_sql(appendix_sql)
        else:
            plus = rewrite_certain(original, schema, options)
        out[qid] = (original, plus)
    return out


def _instance_ratios(task: tuple) -> Dict[str, object]:
    """One instance's worth of Figure 4 measurements (pool worker body).

    Returns a JSON-serialisable ``{"ratios": {qid: [t+/t, …]},
    "discarded": n}`` so results survive checkpoint round-trips;
    ``discarded`` counts samples dropped by the ``t_orig > 0`` guard.
    """
    (
        key, rate, scale, instance_seed, null_seed, param_seed,
        query_ids, param_draws, repeats, use_appendix, options,
    ) = task
    check_task_fault(key)
    queries = rewritten_queries(query_ids, use_appendix=use_appendix, options=options)
    base = generate_instance(scale=scale, seed=instance_seed)
    db = inject_nulls(base, rate, seed=null_seed)
    rng = random.Random(param_seed)
    ratios: Dict[str, List[float]] = {qid: [] for qid in query_ids}
    discarded = 0
    for qid in query_ids:
        original, plus = queries[qid]
        for _ in range(param_draws):
            params = sample_parameters(qid, db, rng=rng)
            t_orig, _n = time_query(db, original, params, repeats)
            t_plus, _n = time_query(db, plus, params, repeats)
            if t_orig > 0:
                ratios[qid].append(t_plus / t_orig)
            else:
                discarded += 1
    return {"ratios": ratios, "discarded": discarded}


def run_price_of_correctness(
    null_rates: Iterable[float] = (0.01, 0.02, 0.03, 0.04, 0.05),
    scale: float = 1.0,
    instances: int = 2,
    param_draws: int = 2,
    repeats: int = 2,
    seed: int = 0,
    query_ids=("Q1", "Q2", "Q3", "Q4"),
    use_appendix: bool = False,
    options: Optional[RewriteOptions] = None,
    workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
    retries: int = 1,
    backoff: float = 0.1,
    checkpoint: Optional[str] = None,
    cancel: Optional[CancelToken] = None,
) -> Dict[str, List[Tuple[float, float]]]:
    """Return ``{query: [(null rate %, avg t+/t), …]}`` (Figure 4).

    The paper uses 10 instances × 5 parameter draws × 3 runs per point
    on ≥1 GB databases; the defaults keep a bench run in seconds while
    preserving the relative-performance shape.

    ``workers`` fans the per-instance measurements out over a
    fault-tolerant task runner (:mod:`repro.experiments.runner`): each
    instance is its own task with a ``task_timeout``, up to ``retries``
    re-submissions with jittered ``backoff``, and failures are recorded
    in ``LAST_RUN.failed_instances`` (keyed ``"<rate>:<instance>"``)
    instead of sinking the run.  ``checkpoint`` names a JSON file
    updated after every completed instance; re-running with the same
    file skips instances already measured.  A checkpoint also routes a
    serial run (``workers in (None, 0, 1)``) through the task runner;
    otherwise the serial path bit-reproduces the historical parameter
    stream.  Parallel/task runs draw each instance's parameters from an
    independent seeded stream, so results are deterministic per seed but
    differ from the serial stream.

    ``cancel`` accepts a :class:`~repro.engine.limits.CancelToken`
    another thread may fire (the CLI's ``--time-budget`` arms one on a
    timer): the harness stops at the next instance boundary, keeps the
    measurements (and checkpoint) completed so far, and reports
    ``LAST_RUN.cancelled = True``.
    """
    global LAST_RUN
    null_rates = tuple(null_rates)
    query_ids = tuple(query_ids)
    rng = random.Random(seed)
    series: Dict[str, List[Tuple[float, float]]] = {qid: [] for qid in query_ids}

    if (workers is not None and workers > 1) or checkpoint is not None:
        tasks: Dict[str, tuple] = {}
        for rate in null_rates:
            for i in range(instances):
                key = f"{rate:g}:{i}"
                tasks[key] = (
                    key, rate, scale, rng.randrange(2**31), rng.randrange(2**31),
                    rng.randrange(2**31), query_ids, param_draws, repeats,
                    use_appendix, options,
                )
        results, report = run_tasks(
            _instance_ratios,
            tasks,
            workers=workers,
            task_timeout=task_timeout,
            retries=retries,
            backoff=backoff,
            checkpoint=checkpoint,
            rng=random.Random(rng.randrange(2**31)),
            cancel=cancel,
        )
        for rate in null_rates:
            per_instance = [
                results[f"{rate:g}:{i}"]
                for i in range(instances)
                if f"{rate:g}:{i}" in results
            ]
            report.discarded_samples += sum(res["discarded"] for res in per_instance)
            for qid in query_ids:
                values = [r for res in per_instance for r in res["ratios"][qid]]
                avg = sum(values) / len(values) if values else float("nan")
                series[qid].append((round(rate * 100, 2), avg))
        LAST_RUN = report
        return series

    report = RunReport(total=len(null_rates) * instances)
    queries = rewritten_queries(query_ids, use_appendix=use_appendix, options=options)
    for rate in null_rates:
        ratios: Dict[str, List[float]] = {qid: [] for qid in query_ids}
        for _ in range(instances):
            if cancel is not None and cancel.cancelled:
                report.cancelled = True
                break
            base = generate_instance(scale=scale, seed=rng.randrange(2**31))
            db = inject_nulls(base, rate, seed=rng.randrange(2**31))
            for qid in query_ids:
                original, plus = queries[qid]
                for _ in range(param_draws):
                    params = sample_parameters(qid, db, rng=rng)
                    t_orig, _n = time_query(db, original, params, repeats)
                    t_plus, _n = time_query(db, plus, params, repeats)
                    if t_orig > 0:
                        ratios[qid].append(t_plus / t_orig)
                    else:
                        report.discarded_samples += 1
            report.completed += 1
        for qid in query_ids:
            values = ratios[qid]
            avg = sum(values) / len(values) if values else float("nan")
            series[qid].append((round(rate * 100, 2), avg))
    LAST_RUN = report
    return series


def main(
    workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
    retries: int = 1,
    checkpoint: Optional[str] = None,
    cancel: Optional[CancelToken] = None,
) -> str:
    series = run_price_of_correctness(
        workers=workers,
        task_timeout=task_timeout,
        retries=retries,
        checkpoint=checkpoint,
        cancel=cancel,
    )
    text = render_series(
        "Figure 4 — average relative performance t(Q+)/t(Q) per null rate",
        "null rate %",
        series,
        y_format=format_ratio,
    )
    if LAST_RUN.cancelled:
        text += (
            f"\ncancelled after {LAST_RUN.completed + LAST_RUN.resumed}"
            f"/{LAST_RUN.total} instances"
            + (f" ({cancel.reason})" if cancel is not None and cancel.reason else "")
        )
    if LAST_RUN.failed_instances:
        failures = ", ".join(
            f"{f.key} ({f.error})" for f in LAST_RUN.failed_instances
        )
        text += f"\nfailed instances: {failures}"
    print(text)
    return text


if __name__ == "__main__":
    main()
