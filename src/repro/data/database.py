"""Incomplete databases: named relations plus optional schema metadata."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.data.nulls import is_null
from repro.data.relation import Relation
from repro.data.schema import DatabaseSchema

__all__ = ["Database"]


class Database:
    """A map from relation names to :class:`Relation` instances.

    The optional :class:`~repro.data.schema.DatabaseSchema` records keys
    and nullability; the translation and rewriting layers consult it
    when present but never require it.
    """

    def __init__(
        self,
        relations: Optional[Dict[str, Relation]] = None,
        schema: Optional[DatabaseSchema] = None,
    ):
        self.relations: Dict[str, Relation] = dict(relations or {})
        self.schema = schema

    # ------------------------------------------------------------------
    # Mapping protocol
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> Relation:
        try:
            return self.relations[name]
        except KeyError:
            raise KeyError(
                f"unknown relation {name!r}; have {sorted(self.relations)}"
            ) from None

    def __setitem__(self, name: str, relation: Relation) -> None:
        self.relations[name] = relation

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __iter__(self) -> Iterator[str]:
        return iter(self.relations)

    def items(self):
        return self.relations.items()

    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self.relations)

    # ------------------------------------------------------------------
    # Incompleteness
    # ------------------------------------------------------------------
    def nulls(self) -> set:
        """``Null(D)``: all distinct nulls occurring in the database."""
        found = set()
        for rel in self.relations.values():
            found |= rel.nulls()
        return found

    def constants(self) -> set:
        """``Const(D)``: all constants occurring in the database."""
        found = set()
        for rel in self.relations.values():
            found |= rel.constants()
        return found

    def active_domain(self) -> set:
        """``adom(D) = Const(D) ∪ Null(D)``."""
        return self.constants() | self.nulls()

    def is_complete(self) -> bool:
        return all(rel.is_complete() for rel in self.relations.values())

    def total_rows(self) -> int:
        return sum(len(rel) for rel in self.relations.values())

    # ------------------------------------------------------------------
    # Copies
    # ------------------------------------------------------------------
    def map_rows(self, fn) -> "Database":
        """A new database with every row passed through *fn*."""
        return Database(
            {
                name: Relation(rel.attributes, (fn(row) for row in rel.rows))
                for name, rel in self.relations.items()
            },
            schema=self.schema,
        )

    def copy(self) -> "Database":
        return self.map_rows(lambda row: row)

    def describe(self) -> str:
        lines = []
        for name, rel in sorted(self.relations.items()):
            null_count = sum(
                1 for row in rel.rows for v in row if is_null(v)
            )
            lines.append(
                f"{name}: {len(rel)} rows, arity {rel.arity}, {null_count} null cells"
            )
        return "\n".join(lines)


def database_from_dict(
    data: Dict[str, Tuple[Iterable[str], Iterable[Tuple[object, ...]]]],
    schema: Optional[DatabaseSchema] = None,
) -> Database:
    """Build a database from ``{name: (attributes, rows)}`` literals."""
    return Database(
        {name: Relation(attrs, rows) for name, (attrs, rows) in data.items()},
        schema=schema,
    )
