"""Valuations of nulls: maps ``Null(D) → Const`` and their enumeration.

Under the closed-world, missing-value interpretation the semantics of an
incomplete database ``D`` is ``{v(D) | v a valuation}``.  Certain
answers quantify over *all* valuations — an infinite set — but for
first-order queries genericity lets us restrict attention to valuations
into ``Const(D)`` extended with one fresh constant per null: any two
valuations with the same equality pattern on that domain produce the
same (isomorphic) complete database, and FO queries cannot distinguish
isomorphic databases beyond the constants they mention.  The brute-force
layer in :mod:`repro.certain` relies on this.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.data.database import Database
from repro.data.nulls import Null, is_null
from repro.data.relation import Relation

__all__ = [
    "Valuation",
    "enumerate_valuations",
    "sample_valuations",
    "fresh_constants",
]


class Valuation:
    """A total map from a set of nulls to constants."""

    __slots__ = ("mapping",)

    def __init__(self, mapping: Dict[Null, object]):
        for null, value in mapping.items():
            if not is_null(null):
                raise TypeError(f"valuation key {null!r} is not a null")
            if is_null(value):
                raise TypeError(f"valuation value {value!r} is not a constant")
        self.mapping = dict(mapping)

    def __call__(self, value: object) -> object:
        """Apply to a single value: nulls map through, constants fixed."""
        if is_null(value):
            try:
                return self.mapping[value]
            except KeyError:
                raise KeyError(f"valuation is not defined on {value!r}") from None
        return value

    def apply_row(self, row: Sequence[object]) -> Tuple[object, ...]:
        return tuple(self(v) for v in row)

    def apply_relation(self, relation: Relation) -> Relation:
        return Relation(
            relation.attributes, (self.apply_row(row) for row in relation.rows)
        )

    def apply_database(self, db: Database) -> Database:
        return db.map_rows(self.apply_row)

    def __repr__(self) -> str:
        pairs = ", ".join(f"{k!r}→{v!r}" for k, v in self.mapping.items())
        return f"Valuation({pairs})"


class _Fresh:
    """A constant guaranteed not to collide with database constants."""

    __slots__ = ("tag", "_hash")

    def __init__(self, tag: int):
        self.tag = tag
        self._hash = hash(("fresh", tag))  # cached: hot in world answer sets

    def __eq__(self, other):
        return isinstance(other, _Fresh) and self.tag == other.tag

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return f"c•{self.tag}"


def fresh_constants(count: int) -> List[object]:
    """*count* pairwise-distinct constants outside any database domain."""
    return [_Fresh(i) for i in range(count)]


def enumerate_valuations(
    db: Database,
    extra_constants: Optional[int] = None,
    domain: Optional[Iterable[object]] = None,
) -> Iterator[Valuation]:
    """All valuations of ``Null(D)`` into a finite, sufficient domain.

    The domain defaults to ``Const(D)`` plus ``extra_constants`` fresh
    values (default: one per null, the generic sufficiency bound).  The
    number of valuations is ``|domain| ** |Null(D)|`` — intended for the
    small instances used as ground truth in tests and experiments.
    """
    nulls = sorted(db.nulls(), key=lambda n: repr(n.label))
    if not nulls:
        yield Valuation({})
        return
    if domain is None:
        if extra_constants is None:
            extra_constants = len(nulls)
        domain_list = sorted(db.constants(), key=repr)
        domain_list += fresh_constants(extra_constants)
    else:
        domain_list = list(domain)
    if not domain_list:
        domain_list = fresh_constants(1)
    for combo in itertools.product(domain_list, repeat=len(nulls)):
        yield Valuation(dict(zip(nulls, combo)))


def sample_valuations(
    db: Database,
    count: int,
    rng: Optional[random.Random] = None,
    extra_constants: int = 2,
) -> Iterator[Valuation]:
    """Random valuations (for probabilistic property tests)."""
    rng = rng or random.Random(0)
    nulls = sorted(db.nulls(), key=lambda n: repr(n.label))
    domain = sorted(db.constants(), key=repr) + fresh_constants(extra_constants)
    if not domain:
        domain = fresh_constants(1)
    for _ in range(count):
        yield Valuation({n: rng.choice(domain) for n in nulls})
