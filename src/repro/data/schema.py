"""Relational schemas: attributes, keys, nullability, foreign keys.

Schemas carry exactly the metadata the paper's machinery needs:

* *nullability* — which attributes may hold nulls (drives null
  injection in :mod:`repro.tpch.nullify` and the nullability analysis of
  the direct SQL rewriter);
* *primary keys* — enable the Section 7 simplification
  ``R ▷⇑ S → R − S`` when ``S ⊆ R`` and ``R`` has a key;
* *foreign keys* — used by the data generators to produce consistent
  instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

__all__ = ["Attribute", "RelationSchema", "ForeignKey", "DatabaseSchema"]

#: Logical attribute types understood by the data generators.
ATTRIBUTE_TYPES = ("int", "float", "str", "date")


@dataclass(frozen=True)
class Attribute:
    """A named, typed attribute with a nullability flag."""

    name: str
    type: str = "str"
    nullable: bool = True

    def __post_init__(self):
        if self.type not in ATTRIBUTE_TYPES:
            raise ValueError(f"unknown attribute type {self.type!r}")


@dataclass(frozen=True)
class ForeignKey:
    """``table.columns`` references ``ref_table.ref_columns``."""

    table: str
    columns: Tuple[str, ...]
    ref_table: str
    ref_columns: Tuple[str, ...]


@dataclass(frozen=True)
class RelationSchema:
    """Schema of one relation: ordered attributes plus an optional key."""

    name: str
    attributes: Tuple[Attribute, ...]
    key: Tuple[str, ...] = ()

    def __post_init__(self):
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attribute names in {self.name}: {names}")
        for k in self.key:
            if k not in names:
                raise ValueError(f"key attribute {k!r} not in relation {self.name}")
        # Key attributes can never be null.
        for attr in self.attributes:
            if attr.name in self.key and attr.nullable:
                raise ValueError(
                    f"key attribute {attr.name!r} of {self.name} must not be nullable"
                )

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def attribute(self, name: str) -> Attribute:
        for a in self.attributes:
            if a.name == name:
                return a
        raise KeyError(f"no attribute {name!r} in relation {self.name}")

    def is_nullable(self, name: str) -> bool:
        return self.attribute(name).nullable

    def nullable_attributes(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.attributes if a.nullable)

    def index_of(self, name: str) -> int:
        for i, a in enumerate(self.attributes):
            if a.name == name:
                return i
        raise KeyError(f"no attribute {name!r} in relation {self.name}")


@dataclass
class DatabaseSchema:
    """A set of relation schemas plus foreign keys."""

    relations: Dict[str, RelationSchema] = field(default_factory=dict)
    foreign_keys: Tuple[ForeignKey, ...] = ()

    def add(self, schema: RelationSchema) -> "DatabaseSchema":
        self.relations[schema.name] = schema
        return self

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __getitem__(self, name: str) -> RelationSchema:
        return self.relations[name]

    def get(self, name: str) -> Optional[RelationSchema]:
        return self.relations.get(name)

    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self.relations)


def make_schema(
    name: str,
    columns: Iterable[Tuple[str, str]],
    key: Iterable[str] = (),
    not_null: Iterable[str] = (),
) -> RelationSchema:
    """Convenience constructor used by the TPC-H schema definition.

    ``columns`` is an iterable of ``(name, type)``; attributes listed in
    ``key`` or ``not_null`` are non-nullable, everything else is
    nullable (the paper's split into nullable / non-nullable columns).
    """
    key = tuple(key)
    forced = set(key) | set(not_null)
    attrs = tuple(
        Attribute(col, typ, nullable=col not in forced) for col, typ in columns
    )
    return RelationSchema(name=name, attributes=attrs, key=key)
