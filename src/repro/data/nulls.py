"""Marked (labelled) nulls, with Codd nulls as the non-repeating case.

The paper's data model populates databases with elements of
``Const ∪ Null``.  Nulls are *marked*: two null occurrences denote the
same unknown value iff they carry the same label.  Codd nulls — the
usual model of SQL's ``NULL`` — are marked nulls that never repeat, so
every occurrence is generated fresh.

``Null`` objects compare equal by label.  This equality is the *data
level* identity of the null (needed, e.g., to deduplicate tuples under
set semantics); it is **not** the query-level comparison semantics,
which lives in :mod:`repro.algebra.evaluate` (naive evaluation treats
``⊥ = ⊥`` as true for the same label, SQL's 3VL treats any comparison
with a null as *unknown*).
"""

from __future__ import annotations

import itertools
from typing import Iterator

__all__ = ["Null", "fresh_null", "is_null", "codd_null_factory", "reset_null_counter"]

_counter = itertools.count(1)


class Null:
    """A marked null ``⊥_label``.

    Parameters
    ----------
    label:
        Identity of the null.  Nulls with equal labels are the same
        unknown value.  When omitted, a globally fresh label is drawn,
        which is exactly how Codd nulls are produced.
    """

    __slots__ = ("label", "_hash")

    def __init__(self, label: object = None):
        if label is None:
            label = next(_counter)
        self.label = label
        # Cached: null hashes dominate world construction and candidate
        # set probes in the brute-force certain-answer search.
        self._hash = hash(("⊥", label))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Null) and self.label == other.label

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"⊥{self.label}"

    # Nulls are incomparable with constants under ``<`` etc.; any code
    # path ordering raw database values must go through a semantics
    # module.  Raising here catches such bugs early.
    def __lt__(self, other: object):  # pragma: no cover - defensive
        raise TypeError("marked nulls are not ordered; use a query semantics")

    __le__ = __gt__ = __ge__ = __lt__


def fresh_null() -> Null:
    """Return a null with a globally fresh label (a Codd null)."""
    return Null()


def is_null(value: object) -> bool:
    """Return ``True`` iff *value* is a (marked) null."""
    return isinstance(value, Null)


def codd_null_factory() -> Iterator[Null]:
    """Infinite iterator of fresh, pairwise-distinct nulls."""
    while True:
        yield Null()


def reset_null_counter() -> None:
    """Reset the fresh-label counter (test isolation only)."""
    global _counter
    _counter = itertools.count(1)
