"""Data substrate: nulls, relations, schemas, databases and valuations.

This package models incomplete databases in the style of the
incomplete-information literature (Imielinski & Lipski 1984) and of the
PODS'16 paper reproduced here: database entries are drawn from
``Const ∪ Null``, where nulls are *marked* (labelled) and Codd nulls are
the special case in which no label repeats.
"""

from repro.data.nulls import Null, fresh_null, is_null, codd_null_factory
from repro.data.relation import Relation
from repro.data.schema import Attribute, RelationSchema, DatabaseSchema, ForeignKey
from repro.data.database import Database
from repro.data.valuation import Valuation, enumerate_valuations, sample_valuations

__all__ = [
    "Null",
    "fresh_null",
    "is_null",
    "codd_null_factory",
    "Relation",
    "Attribute",
    "RelationSchema",
    "DatabaseSchema",
    "ForeignKey",
    "Database",
    "Valuation",
    "enumerate_valuations",
    "sample_valuations",
]
