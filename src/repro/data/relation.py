"""Relations: named-attribute tables over ``Const ∪ Null``.

A :class:`Relation` stores tuples positionally and exposes attribute
names for condition evaluation.  The paper works under set semantics
(relational algebra); the engine layer keeps bags and deduplicates where
set semantics is required.  Here deduplication is explicit via
:meth:`Relation.distinct`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.data.nulls import is_null

__all__ = ["Relation"]

Row = Tuple[object, ...]


class Relation:
    """An ordered collection of equal-width tuples with named columns."""

    __slots__ = ("attributes", "rows", "_index_cache")

    def __init__(self, attributes: Sequence[str], rows: Iterable[Sequence[object]] = ()):
        self.attributes: Tuple[str, ...] = tuple(attributes)
        if len(set(self.attributes)) != len(self.attributes):
            raise ValueError(f"duplicate attribute names: {self.attributes}")
        self.rows: List[Row] = []
        self._index_cache: Dict[str, Dict[object, List[Row]]] = {}
        width = len(self.attributes)
        for row in rows:
            row = tuple(row)
            if len(row) != width:
                raise ValueError(
                    f"row width {len(row)} does not match arity {width}: {row!r}"
                )
            self.rows.append(row)

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        return len(self.attributes)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __contains__(self, row: Sequence[object]) -> bool:
        return tuple(row) in set(self.rows)

    def __eq__(self, other: object) -> bool:
        """Set-semantics equality: same attributes, same set of rows."""
        if not isinstance(other, Relation):
            return NotImplemented
        return self.attributes == other.attributes and set(self.rows) == set(other.rows)

    def __repr__(self) -> str:
        head = ", ".join(self.attributes)
        return f"Relation({head}; {len(self.rows)} rows)"

    # ------------------------------------------------------------------
    # Access helpers
    # ------------------------------------------------------------------
    def index_of(self, attribute: str) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise KeyError(
                f"no attribute {attribute!r} in relation with {self.attributes}"
            ) from None

    def column(self, attribute: str) -> List[object]:
        i = self.index_of(attribute)
        return [row[i] for row in self.rows]

    def row_dicts(self) -> Iterator[Dict[str, object]]:
        for row in self.rows:
            yield dict(zip(self.attributes, row))

    # ------------------------------------------------------------------
    # Mutation (used by data generators; algebra never mutates)
    # ------------------------------------------------------------------
    def add(self, row: Sequence[object]) -> None:
        row = tuple(row)
        if len(row) != self.arity:
            raise ValueError(f"row width {len(row)} != arity {self.arity}")
        self.rows.append(row)
        self._index_cache.clear()

    def extend(self, rows: Iterable[Sequence[object]]) -> None:
        for row in rows:
            self.add(row)

    # ------------------------------------------------------------------
    # Derived relations
    # ------------------------------------------------------------------
    def distinct(self) -> "Relation":
        """Set-semantics copy (stable order, duplicates removed)."""
        return Relation(self.attributes, dict.fromkeys(self.rows))

    def rename(self, mapping: Dict[str, str]) -> "Relation":
        attrs = tuple(mapping.get(a, a) for a in self.attributes)
        return Relation(attrs, self.rows)

    def prefixed(self, prefix: str) -> "Relation":
        """Qualify every attribute as ``prefix.attr`` (FROM-alias style)."""
        return Relation(tuple(f"{prefix}.{a}" for a in self.attributes), self.rows)

    # ------------------------------------------------------------------
    # Incompleteness helpers
    # ------------------------------------------------------------------
    def nulls(self) -> set:
        """The set of distinct nulls occurring in this relation."""
        found = set()
        for row in self.rows:
            for value in row:
                if is_null(value):
                    found.add(value)
        return found

    def constants(self) -> set:
        found = set()
        for row in self.rows:
            for value in row:
                if not is_null(value):
                    found.add(value)
        return found

    def is_complete(self) -> bool:
        return not self.nulls()

    # ------------------------------------------------------------------
    # Hash index over one column (engine uses richer indexes; this one
    # supports the brute-force layers and FP detectors).
    # ------------------------------------------------------------------
    def hash_index(self, attribute: str) -> Dict[object, List[Row]]:
        """Rows grouped by the value of *attribute* (nulls under ``Null``)."""
        if attribute not in self._index_cache:
            i = self.index_of(attribute)
            index: Dict[object, List[Row]] = {}
            for row in self.rows:
                index.setdefault(row[i], []).append(row)
            self._index_cache[attribute] = index
        return self._index_cache[attribute]

    def pretty(self, limit: int = 20) -> str:
        """Small ASCII rendering for examples and docs."""
        header = " | ".join(self.attributes)
        sep = "-" * len(header)
        body = [
            " | ".join("NULL" if is_null(v) else str(v) for v in row)
            for row in self.rows[:limit]
        ]
        if len(self.rows) > limit:
            body.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join([header, sep, *body])
