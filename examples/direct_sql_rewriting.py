"""Direct SQL-to-SQL rewriting on the paper's four queries.

Shows each pass of the rewriter (Section 6 translation + the Section 7
tuning) on Q1–Q4 and compares the automatic output with the paper's
appendix rewrites on a generated instance: the SQL differs only
cosmetically and the answers are identical.

Run:  python examples/direct_sql_rewriting.py [Q1|Q2|Q3|Q4]
"""

import random
import sys

from repro import RewriteOptions, certain_rewrite, execute_sql, parse_sql, to_sql
from repro.tpch import (
    QUERIES,
    generate_small_instance,
    inject_nulls,
    sample_parameters,
    tpch_schema,
)


def show(qid: str) -> None:
    schema = tpch_schema()
    original_sql, appendix_sql, _names = QUERIES[qid]
    original = parse_sql(original_sql)

    print(f"======== {qid}: original ========")
    print(to_sql(original))

    weakened = certain_rewrite(
        original, schema, RewriteOptions(split="never", fold_views="never")
    )
    print(f"\n-------- pass 1 only: θ**-weakened NOT EXISTS --------")
    print(to_sql(weakened))

    full = certain_rewrite(original, schema)
    print(f"\n-------- all passes (view folding + splitting) --------")
    print(to_sql(full))

    # Compare with the paper's appendix rewrite on data.
    rng = random.Random(1)
    db = inject_nulls(generate_small_instance(scale=0.1, seed=3), 0.05, seed=4)
    params = sample_parameters(qid, db, rng=rng)
    auto_rows = set(execute_sql(db, full, params).rows)
    hand_rows = set(execute_sql(db, parse_sql(appendix_sql), params).rows)
    print(
        f"\nanswers on a 5%-null instance: automatic={len(auto_rows)}, "
        f"appendix={len(hand_rows)}, equal={auto_rows == hand_rows}"
    )
    print()


if __name__ == "__main__":
    targets = sys.argv[1:] or ["Q1", "Q2", "Q3", "Q4"]
    for qid in targets:
        show(qid.upper())
