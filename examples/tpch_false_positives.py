"""TPC-H: counting wrong answers in realistic decision-support queries.

Generates a DataFiller-style TPC-H instance, injects nulls at a chosen
rate (Section 3), runs the paper's queries Q1–Q4, and uses the Section 4
detectors to flag answers that are provably not certain.  Then shows
that the certain-answer rewriting returns exactly the remaining answers
(recall = 100%, the Section 7 finding).

Run:  python examples/tpch_false_positives.py [null_rate]
"""

import random
import sys

from repro import certain_rewrite, execute_sql
from repro.fp.detectors import detector_for
from repro.tpch import (
    QUERIES,
    generate_small_instance,
    inject_nulls,
    sample_parameters,
    tpch_schema,
)


def main(null_rate: float = 0.05) -> None:
    rng = random.Random(2016)
    schema = tpch_schema()

    base = generate_small_instance(scale=0.1, seed=1)
    db = inject_nulls(base, null_rate, seed=2)
    print(f"TPC-H instance at null rate {null_rate:.1%}:")
    print(db.describe())
    print()

    for qid in ("Q1", "Q2", "Q3", "Q4"):
        original_sql, _appendix, _params = QUERIES[qid]
        params = sample_parameters(qid, db, rng=rng)
        detect = detector_for(qid)

        answers = execute_sql(db, original_sql, params)
        flagged = [row for row in answers.rows if detect(params, db, row)]
        plus = execute_sql(db, certain_rewrite(original_sql, schema), params)

        pct = 100.0 * len(flagged) / len(answers) if len(answers) else 0.0
        print(f"{qid}  params={params}")
        print(
            f"  SQL returned {len(answers):4d} answers; "
            f"{len(flagged):4d} provably wrong ({pct:.1f}%)"
        )
        print(f"  certain rewriting returned {len(plus):4d} answers")

        certain_from_sql = set(answers.rows) - set(flagged)
        missed = certain_from_sql - set(plus.rows)
        wrongly_kept = set(plus.rows) & set(flagged)
        print(f"  recall vs SQL-returned certain answers: "
              f"{'100%' if not missed else f'missed {len(missed)}'}")
        assert not wrongly_kept, "rewriting returned a detected false positive!"
        print()


if __name__ == "__main__":
    rate = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    main(rate)
