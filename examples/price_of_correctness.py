"""The price of correctness: timing original vs rewritten queries.

A condensed version of the Section 7 experiment: run Q1–Q4 and their
certain-answer rewritings on a DBGen-style instance and report the
relative performance ``t(Q+)/t(Q)``.  Also demonstrates the optimizer
story with EXPLAIN: the unsplit ``Q+4`` plan carries nested loops and an
astronomical cost estimate, which disjunction splitting + views repair.

Run:  python examples/price_of_correctness.py
"""

import random

from repro import RewriteOptions, certain_rewrite, explain_sql, parse_sql
from repro.experiments.performance import time_query
from repro.tpch import (
    QUERIES,
    generate_instance,
    inject_nulls,
    sample_parameters,
    tpch_schema,
)


def main() -> None:
    rng = random.Random(42)
    schema = tpch_schema()
    db = inject_nulls(generate_instance(scale=1.0, seed=7), 0.03, seed=8)

    print("Relative performance t(Q+)/t(Q) at null rate 3% (scale unit 1):\n")
    for qid in ("Q1", "Q2", "Q3", "Q4"):
        original_sql, _appendix, _names = QUERIES[qid]
        original = parse_sql(original_sql)
        plus = certain_rewrite(original, schema)
        params = sample_parameters(qid, db, rng=rng)
        t_orig, n_orig = time_query(db, original, params, repeats=3)
        t_plus, n_plus = time_query(db, plus, params, repeats=3)
        ratio = t_plus / t_orig if t_orig else float("nan")
        print(
            f"  {qid}: t={t_orig * 1000:7.1f} ms ({n_orig} rows)   "
            f"t+={t_plus * 1000:7.1f} ms ({n_plus} rows)   ratio={ratio:.3f}"
        )

    print("\n--- the optimizer story (Section 7, Q4) ---\n")
    params = sample_parameters("Q4", db, rng=rng)
    q4 = parse_sql(QUERIES["Q4"][0])
    unsplit = certain_rewrite(q4, schema, RewriteOptions(split="never", fold_views="never"))
    split = certain_rewrite(q4, schema)

    print("EXPLAIN for the naive (unsplit) Q+4 — note the nested loops:\n")
    print(explain_sql(db, unsplit, params))
    print("\nEXPLAIN for the split Q+4 with views — hash probes restored:\n")
    print(explain_sql(db, split, params))

    t_unsplit, _ = time_query(db, unsplit, params, repeats=1)
    t_split, _ = time_query(db, split, params, repeats=1)
    print(
        f"\nmeasured: unsplit Q+4 = {t_unsplit * 1000:.1f} ms, "
        f"split Q+4 = {t_split * 1000:.1f} ms "
        f"({t_unsplit / max(t_split, 1e-9):.1f}x slower without the tuning)"
    )


if __name__ == "__main__":
    main()
