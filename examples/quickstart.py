"""Quickstart: SQL's wrong answers on nulls, and how to fix them.

Reproduces the paper's introductory example: the difference ``R − S``
with ``R = {1}`` and ``S = {NULL}``.  SQL returns ``{1}`` — a *false
positive*, since interpreting the null as 1 makes the difference empty —
while the certain-answer rewriting returns nothing, and brute-force
certain answers confirm it.

Run:  python examples/quickstart.py
"""

from repro import (
    Database,
    DatabaseSchema,
    Null,
    Relation,
    certain_answers_with_nulls,
    certain_rewrite,
    execute_sql,
    make_schema,
    parse_sql,
    to_sql,
)
from repro.algebra import Difference, RelationRef, evaluate


def main() -> None:
    # An incomplete database: R = {1}, S = {NULL}.
    db = Database(
        {
            "r": Relation(("a",), [(1,)]),
            "s": Relation(("a",), [(Null(),)]),
        }
    )
    schema = DatabaseSchema()
    schema.add(make_schema("r", [("a", "int")]))
    schema.add(make_schema("s", [("a", "int")]))

    query = """
        SELECT a FROM r
        WHERE NOT EXISTS (SELECT * FROM s WHERE s.a = r.a)
    """

    print("Database:")
    print("  R =", list(db["r"]))
    print("  S =", list(db["s"]))
    print()

    # 1. Standard SQL evaluation (three-valued logic): a wrong answer.
    sql_answers = execute_sql(db, query)
    print("SQL evaluation of R − S:", list(sql_answers))
    print("  → (1,) is a FALSE POSITIVE: if the null is 1, R − S is empty.")
    print()

    # 2. Ground truth: certain answers by brute force over valuations.
    algebra = Difference(RelationRef("r"), RelationRef("s"))
    certain = certain_answers_with_nulls(algebra, db)
    print("Certain answers (brute force):", list(certain))
    print()

    # 3. The paper's fix: rewrite the query, keep the same engine.
    rewritten = certain_rewrite(query, schema)
    print("Rewritten query Q+:")
    print(to_sql(rewritten))
    print()
    print("Evaluation of Q+:", list(execute_sql(db, rewritten)))
    print()

    # 4. On complete databases the rewriting changes nothing.
    complete = Database(
        {
            "r": Relation(("a",), [(1,), (2,)]),
            "s": Relation(("a",), [(2,)]),
        }
    )
    original = execute_sql(complete, query)
    plus = execute_sql(complete, rewritten)
    print("On a complete database: Q =", list(original), " Q+ =", list(plus))
    assert set(original.rows) == set(plus.rows)

    # 5. The naive-evaluation contrast (Fact 1): positive queries are
    # already correct without rewriting.
    positive = "SELECT r.a FROM r, s WHERE r.a = s.a"
    print("Positive query under SQL evaluation:", list(execute_sql(db, positive)))
    print("  → no false positives are possible for positive queries (Fact 2).")


if __name__ == "__main__":
    main()
