"""Statically lint the paper's Q1-Q4 and their certain-answer rewritings.

The analyzer decides, without touching any data, whether naive SQL
evaluation of a query can return tuples that are not certain answers.
The originals all can (that is the paper's point); the rewritings
either come back clean-but-incomplete or stay conservatively flagged.

Run:  python examples/lint_queries.py
"""

from repro.analysis import analyze_sql, render_pretty
from repro.tpch.queries import QUERIES
from repro.tpch.schema import tpch_schema


def main() -> None:
    schema = tpch_schema()
    for name in sorted(QUERIES):
        original, rewritten = QUERIES[name][0], QUERIES[name][1]
        for label, sql in ((name, original), (name + "+", rewritten)):
            report = analyze_sql(sql, schema)
            print(render_pretty(report, name=label))
            print()

    print("Reading the verdicts:")
    print(" * Q1-Q4 are 'unsound': a NOT EXISTS over a nullable column")
    print("   misses its witness when the comparison is UNKNOWN, so naive")
    print("   evaluation returns answers some valuation falsifies.")
    print(" * Q1+/Q3+ carry their OR ... IS NULL escapes inline; the")
    print("   analyzer recognises them and downgrades to 'suspect'")
    print("   (sound, but certain answers may be missed).")
    print(" * Q2+/Q4+ compensate across blocks, which the per-comparison")
    print("   escape recognition deliberately does not model - they stay")
    print("   flagged rather than trusted on faith.")


if __name__ == "__main__":
    main()
