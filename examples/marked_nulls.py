"""Marked nulls vs SQL nulls (Sections 2, 6 and 7).

Demonstrates the subtleties the paper discusses:

* tuple unification (Definition 2) with repeated (marked) nulls;
* SQL nulls are weaker than Codd nulls: a self-join on a null column
  loses tuples under SQL evaluation but not under naive evaluation
  (the Section 7 example);
* the two Section 6 examples showing ``Q+`` and SQL evaluation are
  incomparable;
* certain answers *with nulls* versus the classical null-free notion.

Run:  python examples/marked_nulls.py
"""

from repro import Database, Null, Relation, certain_answers_with_nulls, evaluate
from repro.algebra import (
    Difference,
    Intersection,
    RelationRef,
    Selection,
    eq,
)
from repro.algebra.unify import unifiable, unify_rows
from repro.translate import translate_improved


def unification_demo() -> None:
    print("=== Tuple unification (Definition 2) ===")
    x, y = Null("x"), Null("y")
    pairs = [
        ((1, x), (1, 2)),
        ((x, x), (1, 2)),   # repeated null cannot be both 1 and 2
        ((x, y), (1, 2)),
        ((1, x), (2, x)),   # constants clash
    ]
    for r, s in pairs:
        print(f"  {r} ⇑ {s} ?  {unifiable(r, s)}   unifier: {unify_rows(r, s)}")
    print()


def selfjoin_demo() -> None:
    print("=== SQL nulls are weaker than Codd nulls (Section 7) ===")
    bottom = Null("b")
    db = Database({"r": Relation(("a",), [(bottom,)])})
    # σ_{A=A'}(R × ρ(R)) — the self-join on the null column.
    from repro.algebra import Product, Projection, Rename

    join = Projection(
        Selection(
            Product(RelationRef("r"), Rename(RelationRef("r"), {"a": "a2"})),
            eq("a", "a2"),
        ),
        ("a",),
    )
    print("  naive (Codd) evaluation of R ⋈ R:", list(evaluate(join, db, "naive")))
    print("  SQL 3VL evaluation of R ⋈ R:   ", list(evaluate(join, db, "sql")))
    print("  → SQL cannot recognise a null as equal to itself, hence the")
    print("    SQL-adjusted condition translations of Section 7.")
    print()


def incomparability_demo() -> None:
    print("=== Q+ and SQL evaluation are incomparable (Section 6) ===")
    # D1: R = {(1,2),(2,⊥)}, S = {(1,2),(⊥,2)}, T = {(1,2)}; Q1 = R − (S ∩ T).
    b1, b2 = Null(), Null()
    d1 = Database(
        {
            "r": Relation(("a", "b"), [(1, 2), (2, b1)]),
            "s": Relation(("a", "b"), [(1, 2), (b2, 2)]),
            "t": Relation(("a", "b"), [(1, 2)]),
        }
    )
    q1 = Difference(RelationRef("r"), Intersection(RelationRef("s"), RelationRef("t")))
    plus, _poss = translate_improved(q1)
    print("  D1, Q1 = R − (S ∩ T):")
    print("    SQL evaluation:  ", list(evaluate(q1, d1, "sql")))
    print("    Q+ evaluation:   ", list(evaluate(plus, d1, "naive")))
    print("    certain answers: ", list(certain_answers_with_nulls(q1, d1)))
    print("    → SQL keeps the certain answer (2,⊥) that Q+ misses.")

    # D2: R = {(⊥,⊥)} with the same null twice; Q2 = σ_{A=B}(R).
    b = Null("same")
    d2 = Database({"r": Relation(("a", "b"), [(b, b)])})
    q2 = Selection(RelationRef("r"), eq("a", "b"))
    plus2, _ = translate_improved(q2)  # marked-null translation
    plus2_sql, _ = translate_improved(q2, sql_adjusted=True)
    print("  D2, Q2 = σ_{A=B}(R) with R = {(⊥,⊥)}, the same marked null:")
    print("    SQL evaluation:            ", list(evaluate(q2, d2, "sql")))
    print("    Q+ (marked nulls):         ", list(evaluate(plus2, d2, "naive")))
    print("    Q+ (SQL-adjusted):         ", list(evaluate(plus2_sql, d2, "naive")))
    print("    → with marked nulls Q+ proves (⊥,⊥) certain; SQL cannot.")
    print()


def certain_with_nulls_demo() -> None:
    print("=== Certain answers with nulls (Section 2) ===")
    bottom = Null()
    db = Database({"r": Relation(("a", "b"), [(1, bottom), (2, 3)])})
    identity = RelationRef("r")
    with_nulls = certain_answers_with_nulls(identity, db)
    from repro.certain import certain_answers

    classical = certain_answers(identity, db)
    print("  R =", list(db["r"]))
    print("  certain answers with nulls:", list(with_nulls))
    print("  classical certain answers: ", list(classical))
    print("  → the classical notion loses (1,⊥); the paper's notion keeps it.")


if __name__ == "__main__":
    unification_demo()
    selfjoin_demo()
    incomparability_demo()
    certain_with_nulls_demo()
