"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` needs ``bdist_wheel`` under PEP 517; offline boxes
without the ``wheel`` distribution can instead run
``python setup.py develop`` (which this file enables) — the test and
benchmark instructions in the README work either way.
"""

from setuptools import setup

setup()
