"""Resource limits: deadlines, row budgets, and the anytime searcher."""

import pytest

from repro.algebra import Difference, RelationRef
from repro.certain import bruteforce, certain_answers_with_nulls
from repro.data import Database, Null, Relation
from repro.engine import (
    Executor,
    QueryTimeout,
    ResourceError,
    ResourceLimits,
    RowBudgetExceeded,
    execute_sql,
)
from repro.engine.scope import EngineError
from repro.sql.parser import parse_sql


@pytest.fixture
def cross_db():
    """Two 1000-row tables; their product is a million examined rows."""
    return Database(
        {
            "t": Relation(("a",), [(i,) for i in range(1000)]),
            "u": Relation(("b",), [(i,) for i in range(1000)]),
        }
    )


class TestResourceLimits:
    def test_defaults_are_unlimited(self):
        assert ResourceLimits().unlimited
        assert not ResourceLimits(deadline_seconds=1.0).unlimited

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            ResourceLimits(deadline_seconds=-1)
        with pytest.raises(ValueError):
            ResourceLimits(max_rows_examined=-5)

    def test_exception_hierarchy(self):
        assert issubclass(ResourceError, EngineError)
        assert issubclass(QueryTimeout, ResourceError)
        assert issubclass(RowBudgetExceeded, ResourceError)


class TestDeadline:
    def test_expired_deadline_raises_promptly(self, cross_db):
        with pytest.raises(QueryTimeout) as info:
            execute_sql(
                cross_db,
                "SELECT a FROM t, u WHERE a < b",
                limits=ResourceLimits(deadline_seconds=0.0),
            )
        assert info.value.deadline_seconds == 0.0
        assert info.value.elapsed >= 0.0

    def test_generous_deadline_is_harmless(self, cross_db):
        out = execute_sql(
            cross_db,
            "SELECT a FROM t WHERE a < 3",
            limits=ResourceLimits(deadline_seconds=60.0),
        )
        assert set(out.rows) == {(0,), (1,), (2,)}

    def test_prepared_query_rearms_per_run(self, cross_db):
        # A deadline long enough for one run must not accumulate across
        # runs: each run() restarts the clock.
        executor = Executor(cross_db, limits=ResourceLimits(deadline_seconds=30.0))
        prepared = executor.prepare(parse_sql("SELECT a FROM t WHERE a = 1"))
        for _ in range(3):
            assert prepared.run().rows == [(1,)]

    def test_deadline_caught_as_engine_error(self, cross_db):
        # Existing blanket handlers keep working.
        with pytest.raises(EngineError):
            execute_sql(
                cross_db,
                "SELECT a FROM t, u",
                limits=ResourceLimits(deadline_seconds=0.0),
            )


class TestRowBudget:
    def test_budget_exceeded(self, cross_db):
        with pytest.raises(RowBudgetExceeded) as info:
            execute_sql(
                cross_db,
                "SELECT a FROM t, u",
                limits=ResourceLimits(max_rows_examined=500),
            )
        assert info.value.budget == 500
        assert info.value.examined > 500

    def test_budget_is_exact_at_the_boundary(self, cross_db):
        # 1000 rows examined is within a budget of exactly 1000.
        out = execute_sql(
            cross_db,
            "SELECT a FROM t",
            limits=ResourceLimits(max_rows_examined=1000),
        )
        assert len(out) == 1000
        with pytest.raises(RowBudgetExceeded):
            execute_sql(
                cross_db,
                "SELECT a FROM t",
                limits=ResourceLimits(max_rows_examined=999),
            )

    def test_budget_counts_probe_build_rows(self):
        # The decorrelated probe-table build charges the same budget.
        db = Database(
            {
                "r": Relation(("a",), [(i,) for i in range(5)]),
                "s": Relation(("c",), [(i,) for i in range(500)]),
            }
        )
        sql = "SELECT a FROM r WHERE EXISTS (SELECT c FROM s WHERE s.c = r.a)"
        with pytest.raises(RowBudgetExceeded):
            execute_sql(db, sql, limits=ResourceLimits(max_rows_examined=100))

    def test_unlimited_limits_object_costs_nothing(self, cross_db):
        executor = Executor(cross_db, limits=ResourceLimits())
        assert executor.ctx.governor is None


class TestAnytimeBruteforce:
    def test_no_deadline_is_complete(self, intro_db):
        q = Difference(RelationRef("R"), RelationRef("S"))
        full = certain_answers_with_nulls(q, intro_db)
        assert bruteforce.LAST_SEARCH.complete
        assert bruteforce.LAST_SEARCH.elapsed >= 0.0
        assert full.rows == []  # R - S is never certain when S may be 1

    def test_expired_deadline_returns_sound_subset(self):
        n1, n2, n3 = Null(), Null(), Null()
        db = Database(
            {
                "R": Relation(("A", "B"), [(1, n1), (2, 3), (n2, n3), (4, 5)]),
            }
        )
        q = RelationRef("R")
        full = certain_answers_with_nulls(q, db)
        partial = certain_answers_with_nulls(q, db, deadline=0.0)
        stats = bruteforce.LAST_SEARCH
        assert not stats.complete
        assert stats.elapsed >= 0.0
        assert partial.attributes == full.attributes
        assert set(partial.rows) <= set(full.rows)  # sound: no false positives

    def test_cutoff_in_candidate_phase_keeps_confirmed_answers(self, monkeypatch):
        """With a fake clock the deadline expires mid-candidate-loop:
        everything confirmed before the cutoff is returned and sound."""

        class FakeTime:
            def __init__(self):
                self.now = 0.0

            def monotonic(self):
                self.now += 1.0
                return self.now

        n = Null()
        db = Database({"R": Relation(("A", "B"), [(1, n), (2, 3)])})
        q = RelationRef("R")
        full = certain_answers_with_nulls(q, db)
        full_stats = bruteforce.LAST_SEARCH
        # Clock calls: 1 start + one per world after the first (3 here),
        # then one per candidate; a cutoff of 4.5 survives the world
        # phase and expires after the first candidate is processed.
        monkeypatch.setattr(bruteforce, "time", FakeTime())
        partial = certain_answers_with_nulls(q, db, deadline=4.5)
        stats = bruteforce.LAST_SEARCH
        assert not stats.complete
        # The search got past world evaluation into the candidate phase.
        assert stats.candidates_considered == full_stats.candidates_considered
        assert set(partial.rows) <= set(full.rows)

    def test_generous_deadline_matches_exact_answer(self):
        n = Null()
        db = Database({"R": Relation(("A", "B"), [(1, n), (2, 3)])})
        q = RelationRef("R")
        exact = certain_answers_with_nulls(q, db)
        timed = certain_answers_with_nulls(q, db, deadline=120.0)
        assert bruteforce.LAST_SEARCH.complete
        assert timed.rows == exact.rows
