"""Cooperative cross-thread cancellation: searcher, engine, harness.

A :class:`~repro.engine.limits.CancelToken` fired from another thread
must stop an in-flight brute-force search and an in-flight engine
execution promptly (the searcher checks the token at every candidate
and world step, the engine within one ``LimitGovernor`` check
interval), leave behind honest instrumentation
(``SearchStats.complete == False``, ``cancelled == True``) and a sound
partial result, and never corrupt the thread-local ``LAST_SEARCH``
slot or a harness checkpoint file.
"""

import itertools
import json
import threading
import time

import pytest

from repro.algebra import RelationRef
from repro.certain import bruteforce, certain_answers_with_nulls
from repro.data import Database, Null, Relation
from repro.engine import (
    CancelToken,
    QueryCancelled,
    ResourceLimits,
    execute_sql,
)
from repro.experiments.runner import run_tasks


def wide_db(rows=12, nulls=2):
    """An instance whose search has thousands of candidates to verify."""
    pool = [Null(f"c{i}") for i in range(nulls)]
    tails = itertools.product((5, 6), repeat=4)
    return Database(
        {
            "R": Relation(
                ("A", "B", "C", "D", "E", "F"),
                [
                    (pool[0], pool[0], t[0], t[1], t[2], t[3])
                    for t in itertools.islice(tails, rows)
                ],
            ),
            "Z": Relation(("z",), [(p,) for p in pool]),
        }
    )


class TestSearcherCancellation:
    def test_cancel_from_another_thread_stops_next_candidate(self):
        """Deterministic cross-thread stop: a helper thread fires the
        token the moment the first tuple is confirmed, so exactly one
        tuple survives — the searcher stopped at its very next
        candidate check, well within one check interval."""
        db = wide_db()
        token = CancelToken()

        def fire_from_thread(_row, _stats):
            t = threading.Thread(target=token.cancel, args=("enough",))
            t.start()
            t.join()

        partial = certain_answers_with_nulls(
            RelationRef("R"),
            db,
            extra_constants=2,
            cancel=token,
            progress=fire_from_thread,
        )
        stats = bruteforce.LAST_SEARCH
        assert stats.cancelled and not stats.complete
        assert token.reason == "enough"
        assert stats.emitted == len(partial.rows) == 1
        full = certain_answers_with_nulls(RelationRef("R"), db, extra_constants=2)
        assert set(partial.rows) <= set(full.rows)  # sound subset

    def test_pre_fired_token_skips_world_evaluation(self, intro_db):
        token = CancelToken()
        token.cancel()
        result = certain_answers_with_nulls(
            RelationRef("R"), intro_db, cancel=token
        )
        stats = bruteforce.LAST_SEARCH
        assert result.rows == []
        assert stats.cancelled and not stats.complete
        # At most the first world was evaluated before the token check.
        assert stats.world_checks == 0

    def test_cancelled_search_does_not_corrupt_other_threads_stats(self):
        """Thread-local ``LAST_SEARCH``: a search cancelled on a worker
        thread never clobbers another thread's completed stats."""
        db = wide_db()
        barrier = threading.Barrier(2)
        outcome = {}

        def cancelled_worker():
            token = CancelToken()
            token.cancel()
            certain_answers_with_nulls(RelationRef("R"), db, cancel=token)
            barrier.wait()
            outcome["cancelled"] = bruteforce.LAST_SEARCH

        def clean_worker():
            certain_answers_with_nulls(RelationRef("Z"), db)
            barrier.wait()
            outcome["clean"] = bruteforce.LAST_SEARCH

        threads = [
            threading.Thread(target=cancelled_worker),
            threading.Thread(target=clean_worker),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcome["cancelled"].cancelled
        assert not outcome["cancelled"].complete
        assert outcome["clean"].complete and not outcome["clean"].cancelled
        assert outcome["clean"].arity == 1  # Z's stats, not R's

    def test_parallel_searches_keep_their_own_stats(self):
        """Regression: two concurrent searches must each read back their
        own ``LAST_SEARCH`` (a module global would let either clobber
        the other between search and read)."""
        n = Null()
        db = Database(
            {
                "R": Relation(("A", "B"), [(1, n), (2, 3)]),
                "S": Relation(("A",), [(n,), (4,)]),
            }
        )
        start = threading.Barrier(2)
        read_back = threading.Barrier(2)
        seen = {}

        def search(name, query, arity):
            start.wait()
            result = certain_answers_with_nulls(query, db)
            # Rendezvous *between* search and stats read: with a shared
            # global, the other thread's rebind would be visible here.
            read_back.wait()
            seen[name] = (bruteforce.LAST_SEARCH, result)
            assert bruteforce.LAST_SEARCH.arity == arity

        threads = [
            threading.Thread(target=search, args=("r", RelationRef("R"), 2)),
            threading.Thread(target=search, args=("s", RelationRef("S"), 1)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        r_stats, _ = seen["r"]
        s_stats, _ = seen["s"]
        assert r_stats is not s_stats
        assert (r_stats.arity, s_stats.arity) == (2, 1)
        assert r_stats.emitted == len(seen["r"][1].rows)
        assert s_stats.emitted == len(seen["s"][1].rows)


class TestEngineCancellation:
    def test_cancel_mid_flight_stops_execution_promptly(self):
        """A token fired while a million-row cross join is being scanned
        aborts the execution within one governor interval (~64 rows),
        observed as a prompt ``QueryCancelled`` long before the full
        scan could finish."""
        db = Database(
            {
                "t": Relation(("a",), [(i,) for i in range(2000)]),
                "u": Relation(("b",), [(i,) for i in range(2000)]),
            }
        )
        token = CancelToken()
        started = threading.Event()
        outcome = {}

        def worker():
            started.set()
            begin = time.monotonic()
            try:
                execute_sql(
                    db,
                    "SELECT a FROM t, u WHERE a < b",
                    limits=ResourceLimits(cancel=token),
                )
            except QueryCancelled as exc:
                outcome["error"] = exc
            outcome["elapsed"] = time.monotonic() - begin

        t = threading.Thread(target=worker)
        t.start()
        started.wait()
        time.sleep(0.02)  # let the scan get genuinely in flight
        fired_at = time.monotonic()
        token.cancel("test says stop")
        t.join(timeout=30.0)
        assert not t.is_alive()
        assert isinstance(outcome["error"], QueryCancelled)
        assert outcome["error"].token is token
        # Prompt: the 4M-row join takes seconds; cancellation landed in
        # a governor-interval-sized fraction of that.
        assert time.monotonic() - fired_at < 5.0

    def test_pre_fired_token_stops_before_row_work(self):
        db = Database({"t": Relation(("a",), [(1,), (2,)])})
        token = CancelToken()
        token.cancel()
        with pytest.raises(QueryCancelled):
            execute_sql(
                db, "SELECT a FROM t", limits=ResourceLimits(cancel=token)
            )


class TestHarnessCancellation:
    def test_run_tasks_cancel_keeps_checkpoint_consistent(self, tmp_path):
        """Cancellation between tasks keeps completed results and a
        valid checkpoint; a later run resumes from it cleanly."""
        checkpoint = tmp_path / "cancelled.json"
        token = CancelToken()

        def worker(payload):
            # Fire after the first task completes — simulates an
            # external thread cancelling between task boundaries.
            if payload == ("first",):
                token.cancel("budget spent")
            return {"payload": list(payload)}

        tasks = {"a": ("first",), "b": ("second",), "c": ("third",)}
        results, report = run_tasks(
            worker, tasks, checkpoint=str(checkpoint), cancel=token
        )
        assert report.cancelled
        assert set(results) == {"a"}
        assert report.completed == 1
        # The checkpoint is intact, valid JSON, and holds only completed
        # work — no torn or partial entries.
        saved = json.loads(checkpoint.read_text())
        assert saved == {"results": {"a": {"payload": ["first"]}}}
        # Resuming without the token finishes the remaining tasks.
        results2, report2 = run_tasks(worker, tasks, checkpoint=str(checkpoint))
        assert set(results2) == {"a", "b", "c"}
        assert report2.resumed == 1 and report2.completed == 2
        assert not report2.cancelled

    def test_cancelled_search_leaves_checkpoint_files_alone(self, tmp_path):
        """A searcher cancelled mid-run must not touch harness files —
        cancellation is cooperative and purely in-memory."""
        checkpoint = tmp_path / "untouched.json"
        checkpoint.write_text('{"results": {"keep": 1}}')
        before = checkpoint.read_text()
        token = CancelToken()
        token.cancel()
        certain_answers_with_nulls(
            RelationRef("R"),
            Database({"R": Relation(("A",), [(Null(),)])}),
            cancel=token,
        )
        assert not bruteforce.LAST_SEARCH.complete
        assert checkpoint.read_text() == before
