"""Fault-tolerant task runner and hardened experiment harnesses."""

import math
import time

import pytest

from repro.experiments import performance
from repro.experiments.runner import RunReport, run_tasks
from repro.testing import faults


@pytest.fixture(autouse=True)
def clean_faults():
    yield
    faults.clear_faults()


# --- module-level workers: must be picklable for the process pool ---------

def _double(task):
    return task[0] * 2


def _flaky(task):
    faults.check_task_fault(task[0])
    return task[0]


def _crash(task):
    faults.check_task_fault(str(task[0]))
    return task[0]


def _sleepy(task):
    time.sleep(task[0])
    return task[0]


class TestRunTasksInline:
    def test_all_succeed(self):
        results, report = run_tasks(_double, {"a": (1,), "b": (2,)})
        assert results == {"a": 2, "b": 4}
        assert report.completed == 2 and report.failed == 0
        assert report.total == 2

    def test_failure_is_recorded_not_raised(self):
        faults.install_task_fault("bad", error=RuntimeError("boom"))
        results, report = run_tasks(
            _flaky, {"ok": ("ok",), "bad": ("bad",)}, retries=0, backoff=0.0
        )
        assert results == {"ok": "ok"}
        (failure,) = report.failed_instances
        assert failure.key == "bad"
        assert "boom" in failure.error
        assert failure.attempts == 1

    def test_retry_recovers_transient_failure(self):
        # The fault fires once; the first retry succeeds.
        faults.install_task_fault("flaky", error=RuntimeError("blip"), times=1)
        results, report = run_tasks(
            _flaky, {"flaky": ("flaky",)}, retries=2, backoff=0.0
        )
        assert results == {"flaky": "flaky"}
        assert report.retries == 1
        assert report.failed == 0

    def test_retries_exhausted(self):
        faults.install_task_fault("doomed", error=RuntimeError("always"))
        results, report = run_tasks(
            _flaky, {"doomed": ("doomed",)}, retries=2, backoff=0.0
        )
        assert results == {}
        (failure,) = report.failed_instances
        assert failure.attempts == 3  # initial try + 2 retries
        assert report.retries == 2


class TestRunTasksPool:
    def test_pool_results_match_inline(self):
        tasks = {str(i): (i,) for i in range(6)}
        inline, _ = run_tasks(_double, tasks)
        pooled, report = run_tasks(_double, tasks, workers=2)
        assert pooled == inline
        assert report.completed == 6

    def test_worker_exception_is_retried_then_recorded(self):
        faults.install_task_fault("bad", error=RuntimeError("boom"))
        tasks = {"ok": ("ok",), "bad": ("bad",)}
        results, report = run_tasks(
            _flaky, tasks, workers=2, retries=1, backoff=0.0
        )
        assert results == {"ok": "ok"}
        (failure,) = report.failed_instances
        assert failure.key == "bad" and "boom" in failure.error
        assert report.retries == 1

    def test_hung_worker_times_out(self):
        # One task sleeps far beyond the timeout; the other completes.
        tasks = {"fast": (0.0,), "slow": (60.0,)}
        results, report = run_tasks(
            _sleepy, tasks, workers=2, task_timeout=1.0, retries=0
        )
        assert results == {"fast": 0.0}
        (failure,) = report.failed_instances
        assert failure.key == "slow"
        assert "no result within" in failure.error

    def test_crashed_worker_is_contained(self):
        # os._exit kills the worker outright — no exception crosses the
        # pipe, so the timeout is the detector; the pool repopulates and
        # the other tasks complete.
        faults.install_task_fault("1", exit_code=1)
        tasks = {str(i): (i,) for i in range(4)}
        results, report = run_tasks(
            _crash, tasks, workers=2, task_timeout=5.0, retries=0
        )
        assert set(results) == {"0", "2", "3"}
        (failure,) = report.failed_instances
        assert failure.key == "1"


class TestHardenedFigure4:
    def test_crashing_instance_reported_others_measured(self):
        """The acceptance scenario: figure4 with workers=2 and one
        fault-injected crashing instance completes, reports that
        instance in failed_instances, and keeps the other measurements.
        """
        faults.install_task_fault("0.03:1", exit_code=1)
        series = performance.run_price_of_correctness(
            null_rates=(0.03,),
            scale=0.05,
            instances=3,
            param_draws=1,
            repeats=1,
            seed=1,
            query_ids=("Q1",),
            workers=2,
            task_timeout=10.0,
            retries=0,
            backoff=0.0,
        )
        report = performance.LAST_RUN
        assert [f.key for f in report.failed_instances] == ["0.03:1"]
        assert report.completed == 2
        ((x, ratio),) = series["Q1"]
        assert x == 3.0
        assert ratio > 0 and not math.isnan(ratio)

    def test_all_instances_failing_yields_nan_not_crash(self):
        faults.install_task_fault("0.05:0", error=RuntimeError("boom"))
        series = performance.run_price_of_correctness(
            null_rates=(0.05,),
            scale=0.05,
            instances=1,
            param_draws=1,
            repeats=1,
            seed=2,
            query_ids=("Q1",),
            workers=2,
            task_timeout=30.0,
            retries=0,
            backoff=0.0,
        )
        assert performance.LAST_RUN.failed == 1
        ((_x, ratio),) = series["Q1"]
        assert math.isnan(ratio)

    def test_serial_run_reports_discarded_and_completed(self):
        performance.run_price_of_correctness(
            null_rates=(0.03,),
            scale=0.05,
            instances=1,
            param_draws=1,
            repeats=1,
            seed=3,
            query_ids=("Q1",),
        )
        report = performance.LAST_RUN
        assert isinstance(report, RunReport)
        assert report.completed == 1
        assert report.discarded_samples >= 0
