"""Fault injection hooks: scan faults, stalls caught by deadlines."""

import time

import pytest

from repro.data import Database, Relation
from repro.engine import QueryTimeout, ResourceLimits, execute_sql
from repro.engine import blocks
from repro.testing import faults


@pytest.fixture(autouse=True)
def clean_faults():
    yield
    faults.clear_faults()


@pytest.fixture
def db():
    return Database(
        {
            "t": Relation(("a",), [(i,) for i in range(200)]),
            "u": Relation(("b",), [(0,), (1,)]),
        }
    )


class TestScanFaults:
    def test_raises_at_nth_row(self, db):
        with faults.scan_fault("t", nth=5):
            with pytest.raises(faults.InjectedFault):
                execute_sql(db, "SELECT a FROM t")
        # Cleared: the same query runs fine afterwards.
        assert blocks.SCAN_FAULT_HOOK is None
        assert len(execute_sql(db, "SELECT a FROM t")) == 200

    def test_custom_error(self, db):
        boom = OSError("disk gone")
        with faults.scan_fault("t", nth=0, error=boom):
            with pytest.raises(OSError, match="disk gone"):
                execute_sql(db, "SELECT a FROM t")

    def test_only_the_named_table_is_affected(self, db):
        with faults.scan_fault("t", nth=0):
            assert len(execute_sql(db, "SELECT b FROM u")) == 2

    def test_times_bounds_firings(self, db):
        with faults.scan_fault("t", nth=0, times=1) as fault:
            with pytest.raises(faults.InjectedFault):
                execute_sql(db, "SELECT a FROM t")
            # Second scan: the fault is spent.
            assert len(execute_sql(db, "SELECT a FROM t")) == 200
            assert fault.fired == 1

    def test_delay_fault_is_caught_by_deadline(self, db):
        # A stalled scan (e.g. slow storage) must trip the query's
        # deadline rather than hang: delay injects the stall, the
        # governor's clock catches it at the next amortised check.
        with faults.scan_fault("t", nth=100, delay=0.15):
            start = time.monotonic()
            with pytest.raises(QueryTimeout):
                execute_sql(
                    db,
                    "SELECT a FROM t",
                    limits=ResourceLimits(deadline_seconds=0.05),
                )
            assert time.monotonic() - start < 5.0

    def test_delay_without_limits_completes(self, db):
        with faults.scan_fault("t", nth=100, delay=0.01):
            assert len(execute_sql(db, "SELECT a FROM t")) == 200


class TestTaskFaults:
    def test_fires_on_matching_key_only(self):
        faults.install_task_fault("job-1", times=1)
        faults.check_task_fault("job-0")  # no-op
        with pytest.raises(faults.InjectedFault):
            faults.check_task_fault("job-1")
        faults.check_task_fault("job-1")  # spent

    def test_clear_removes_task_faults(self):
        faults.install_task_fault("job-2")
        faults.clear_faults()
        faults.check_task_fault("job-2")
