"""Incremental JSON checkpointing and resume for the harnesses."""

import json

import pytest

from repro.experiments import performance, scaling
from repro.experiments.runner import load_checkpoint, run_tasks
from repro.testing import faults


@pytest.fixture(autouse=True)
def clean_faults():
    yield
    faults.clear_faults()


def _identity(task):
    return task[0]


def _guarded(task):
    faults.check_task_fault(task[0])
    return task[0]


class TestRunnerCheckpoint:
    def test_checkpoint_written_incrementally(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        run_tasks(_identity, {"a": ("a",), "b": ("b",)}, checkpoint=path)
        data = json.loads((tmp_path / "ckpt.json").read_text())
        assert data["results"] == {"a": "a", "b": "b"}

    def test_resume_skips_completed_tasks(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        # First run: "b" fails and is left out of the checkpoint.
        faults.install_task_fault("b", error=RuntimeError("boom"))
        _, report1 = run_tasks(
            _guarded, {"a": ("a",), "b": ("b",)}, retries=0, backoff=0.0,
            checkpoint=path,
        )
        assert report1.completed == 1 and report1.failed == 1
        faults.clear_faults()
        # Resume: "a" is loaded, only "b" runs.
        results, report2 = run_tasks(
            _guarded, {"a": ("a",), "b": ("b",)}, retries=0, checkpoint=path
        )
        assert results == {"a": "a", "b": "b"}
        assert report2.resumed == 1 and report2.completed == 1

    def test_fully_checkpointed_run_does_no_work(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        run_tasks(_identity, {"a": ("a",)}, checkpoint=path)
        faults.install_task_fault("a", error=RuntimeError("must not run"))
        results, report = run_tasks(_guarded, {"a": ("a",)}, checkpoint=path)
        assert results == {"a": "a"}
        assert report.resumed == 1 and report.completed == 0

    def test_missing_checkpoint_is_empty(self, tmp_path):
        assert load_checkpoint(str(tmp_path / "absent.json")) == {}
        assert load_checkpoint(None) == {}


class TestHarnessCheckpoint:
    KWARGS = dict(
        null_rates=(0.03,),
        scale=0.05,
        instances=2,
        param_draws=1,
        repeats=1,
        seed=4,
        query_ids=("Q1",),
        retries=0,
        backoff=0.0,
    )

    def test_interrupted_figure4_resumes_without_remeasuring(self, tmp_path):
        path = str(tmp_path / "fig4.json")
        # First run: instance 1 fails, instance 0 lands in the checkpoint.
        faults.install_task_fault("0.03:1", error=RuntimeError("interrupted"))
        performance.run_price_of_correctness(checkpoint=path, **self.KWARGS)
        assert performance.LAST_RUN.failed == 1
        ckpt = json.loads((tmp_path / "fig4.json").read_text())
        assert sorted(ckpt["results"]) == ["0.03:0"]
        faults.clear_faults()
        # Resume: instance 0 must NOT re-run (a fault on it would fire).
        faults.install_task_fault("0.03:0", error=RuntimeError("re-measured!"))
        series = performance.run_price_of_correctness(checkpoint=path, **self.KWARGS)
        report = performance.LAST_RUN
        assert report.resumed == 1 and report.completed == 1 and report.failed == 0
        ((x, ratio),) = series["Q1"]
        assert x == 3.0 and ratio > 0

    def test_checkpointed_rerun_is_deterministic(self, tmp_path):
        path = str(tmp_path / "fig4.json")
        a = performance.run_price_of_correctness(checkpoint=path, **self.KWARGS)
        # Second run resumes everything: identical series, zero work.
        b = performance.run_price_of_correctness(checkpoint=path, **self.KWARGS)
        assert performance.LAST_RUN.resumed == 2
        assert a == b

    def test_table1_checkpoint_resume(self, tmp_path):
        path = str(tmp_path / "table1.json")
        kwargs = dict(
            scales=(1.0,),
            null_rates=(0.03,),
            param_draws=1,
            repeats=1,
            base_scale=0.05,
            seed=2,
            query_ids=("Q1",),
            retries=0,
            backoff=0.0,
        )
        first = scaling.run_scaling_experiment(checkpoint=path, **kwargs)
        assert scaling.LAST_RUN.completed == 1
        faults.install_task_fault("1:0.03", error=RuntimeError("re-measured!"))
        second = scaling.run_scaling_experiment(checkpoint=path, **kwargs)
        assert scaling.LAST_RUN.resumed == 1 and scaling.LAST_RUN.failed == 0
        assert first == second
