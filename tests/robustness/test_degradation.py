"""Graceful degradation: abandoned probe-table builds bit-match naive."""

import pytest

from repro.data import Database, Null, Relation
from repro.engine import Executor, ResourceLimits
from repro.sql.parser import parse_sql


@pytest.fixture
def probe_db():
    """Outer r probes inner s; s is big enough to trip small budgets."""
    n = Null()
    return Database(
        {
            "r": Relation(("a", "b"), [(i, i % 7) for i in range(40)] + [(99, n)]),
            "s": Relation(("c", "d"), [(i % 7, i) for i in range(300)] + [(n, 0)]),
        }
    )


EXISTS_SQL = "SELECT a FROM r WHERE EXISTS (SELECT c FROM s WHERE s.c = r.b)"
NOT_EXISTS_SQL = "SELECT a FROM r WHERE NOT EXISTS (SELECT c FROM s WHERE s.c = r.b)"
IN_SQL = "SELECT a FROM r WHERE b IN (SELECT c FROM s WHERE s.d < 100)"
CORRELATED_IN_SQL = "SELECT a FROM r WHERE a IN (SELECT d FROM s WHERE s.c = r.b)"


def run(db, sql, **executor_kwargs):
    executor = Executor(db, **executor_kwargs)
    result = executor.execute(parse_sql(sql))
    return result, executor.ctx


@pytest.mark.parametrize(
    "sql", [EXISTS_SQL, NOT_EXISTS_SQL, CORRELATED_IN_SQL], ids=["exists", "not-exists", "in"]
)
class TestDegradationEquivalence:
    def test_degraded_matches_naive(self, probe_db, sql):
        naive, _ = run(probe_db, sql, decorrelate=False, memoize_probes=False)
        degraded, ctx = run(
            probe_db, sql, limits=ResourceLimits(max_probe_build_rows=5)
        )
        assert ctx.degradations == 1
        assert ctx.probe_tables_built == 0
        assert degraded.attributes == naive.attributes
        assert degraded.rows == naive.rows  # bit-match, order included

    def test_undegraded_run_builds_the_table(self, probe_db, sql):
        full, ctx = run(probe_db, sql, limits=ResourceLimits(max_probe_build_rows=10**6))
        naive, _ = run(probe_db, sql, decorrelate=False, memoize_probes=False)
        assert ctx.degradations == 0
        assert ctx.probe_tables_built == 1
        assert full.rows == naive.rows


class TestDegradationAccounting:
    def test_wasted_build_rows_are_charged_to_probe_build(self, probe_db):
        _, ctx = run(probe_db, EXISTS_SQL, limits=ResourceLimits(max_probe_build_rows=5))
        assert ctx.degradations == 1
        assert ctx.probe_build_rows > 0  # the abandoned build's work
        # Fallback probing (memoized) actually ran.
        assert ctx.probe_cache_hits + ctx.probe_cache_misses > 0
        assert ctx.decorrelated_probes == 0

    def test_degradation_does_not_disable_other_subqueries(self, probe_db):
        # A second, cheap subquery still decorrelates.
        sql = (
            "SELECT a FROM r WHERE EXISTS (SELECT c FROM s WHERE s.c = r.b) "
            "AND EXISTS (SELECT c FROM s WHERE s.c = r.a)"
        )
        naive, _ = run(probe_db, sql, decorrelate=False, memoize_probes=False)
        degraded, ctx = run(probe_db, sql, limits=ResourceLimits(max_probe_build_rows=5))
        # Both builds trip the budget here, but results stay correct.
        assert ctx.degradations >= 1
        assert degraded.rows == naive.rows

    def test_uncorrelated_subqueries_unaffected(self, probe_db):
        # IN over an uncorrelated subquery never builds a probe table.
        full, ctx = run(probe_db, IN_SQL, limits=ResourceLimits(max_probe_build_rows=1))
        naive, _ = run(probe_db, IN_SQL, decorrelate=False, memoize_probes=False)
        assert ctx.degradations == 0
        assert full.rows == naive.rows
