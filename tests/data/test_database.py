"""Databases: mapping protocol, active domain, copies."""

import pytest

from repro.data import Database, Null, Relation
from repro.data.database import database_from_dict


@pytest.fixture
def db():
    n = Null("n")
    return Database(
        {
            "R": Relation(("A",), [(1,), (n,)]),
            "S": Relation(("B",), [(2,)]),
        }
    )


class TestMapping:
    def test_get_set_contains_iter(self, db):
        assert "R" in db
        assert set(db) == {"R", "S"}
        db["T"] = Relation(("C",), [])
        assert "T" in db
        assert db.relation_names() == ("R", "S", "T")

    def test_unknown_relation_error_lists_names(self, db):
        with pytest.raises(KeyError, match="unknown relation"):
            db["missing"]


class TestIncompleteness:
    def test_domains(self, db):
        assert db.constants() == {1, 2}
        assert len(db.nulls()) == 1
        assert db.active_domain() == {1, 2, Null("n")}
        assert not db.is_complete()
        assert db.total_rows() == 3

    def test_complete(self):
        assert Database({"R": Relation(("A",), [(1,)])}).is_complete()


class TestCopies:
    def test_map_rows(self, db):
        doubled = db.map_rows(lambda row: tuple(
            v if isinstance(v, Null) else v * 10 for v in row
        ))
        assert (10,) in doubled["R"].rows
        assert db["R"].rows[0] == (1,)  # original untouched

    def test_copy_is_independent(self, db):
        clone = db.copy()
        clone["R"].add((99,))
        assert (99,) not in db["R"].rows


def test_describe_mentions_null_cells(db):
    text = db.describe()
    assert "R: 2 rows" in text
    assert "1 null cells" in text


def test_database_from_dict():
    db = database_from_dict({"R": (("A", "B"), [(1, 2)])})
    assert db["R"].attributes == ("A", "B")
    assert db["R"].rows == [(1, 2)]
