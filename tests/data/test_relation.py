"""Relations: construction, access, derived relations, indexes."""

import pytest

from repro.data import Null, Relation


class TestConstruction:
    def test_basic(self):
        r = Relation(("A", "B"), [(1, 2), (3, 4)])
        assert r.arity == 2
        assert len(r) == 2
        assert (1, 2) in r

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="width"):
            Relation(("A", "B"), [(1,)])

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Relation(("A", "A"), [])

    def test_rows_are_tuples(self):
        r = Relation(("A",), [[1], [2]])
        assert all(isinstance(row, tuple) for row in r.rows)

    def test_add_and_extend(self):
        r = Relation(("A",), [])
        r.add((1,))
        r.extend([(2,), (3,)])
        assert len(r) == 3
        with pytest.raises(ValueError):
            r.add((1, 2))


class TestEquality:
    def test_set_semantics_equality(self):
        a = Relation(("A",), [(1,), (2,), (1,)])
        b = Relation(("A",), [(2,), (1,)])
        assert a == b

    def test_attribute_names_matter(self):
        a = Relation(("A",), [(1,)])
        b = Relation(("B",), [(1,)])
        assert a != b


class TestDerived:
    def test_distinct_preserves_order(self):
        r = Relation(("A",), [(2,), (1,), (2,), (1,)])
        assert r.distinct().rows == [(2,), (1,)]

    def test_rename(self):
        r = Relation(("A", "B"), [(1, 2)])
        renamed = r.rename({"A": "X"})
        assert renamed.attributes == ("X", "B")
        assert renamed.rows == [(1, 2)]

    def test_prefixed(self):
        r = Relation(("A",), [(1,)])
        assert r.prefixed("t").attributes == ("t.A",)

    def test_column_and_index_of(self):
        r = Relation(("A", "B"), [(1, 2), (3, 4)])
        assert r.column("B") == [2, 4]
        assert r.index_of("A") == 0
        with pytest.raises(KeyError):
            r.index_of("Z")

    def test_row_dicts(self):
        r = Relation(("A", "B"), [(1, 2)])
        assert list(r.row_dicts()) == [{"A": 1, "B": 2}]


class TestIncompleteness:
    def test_nulls_and_constants(self):
        n = Null()
        r = Relation(("A", "B"), [(1, n), (2, 3)])
        assert r.nulls() == {n}
        assert r.constants() == {1, 2, 3}
        assert not r.is_complete()

    def test_complete(self):
        assert Relation(("A",), [(1,)]).is_complete()


class TestHashIndex:
    def test_groups_rows(self):
        r = Relation(("A", "B"), [(1, 2), (1, 3), (2, 4)])
        index = r.hash_index("A")
        assert index[1] == [(1, 2), (1, 3)]
        assert index[2] == [(2, 4)]

    def test_null_keys_group_by_label(self):
        n = Null("k")
        r = Relation(("A",), [(n,), (Null("k"),), (Null("other"),)])
        index = r.hash_index("A")
        assert len(index[n]) == 2

    def test_cache_invalidated_on_add(self):
        r = Relation(("A",), [(1,)])
        assert len(r.hash_index("A")) == 1
        r.add((2,))
        assert len(r.hash_index("A")) == 2


def test_pretty_renders_nulls():
    r = Relation(("A",), [(Null(),), (1,)])
    text = r.pretty()
    assert "NULL" in text and "1" in text
