"""Marked nulls: identity, freshness, hashing."""

import pytest

from repro.data.nulls import Null, codd_null_factory, fresh_null, is_null


class TestIdentity:
    def test_same_label_is_same_null(self):
        assert Null("x") == Null("x")

    def test_different_labels_differ(self):
        assert Null("x") != Null("y")

    def test_null_never_equals_constant(self):
        assert Null("x") != "x"
        assert Null(1) != 1

    def test_hash_follows_label(self):
        assert hash(Null("x")) == hash(Null("x"))
        assert len({Null("x"), Null("x"), Null("y")}) == 2

    def test_fresh_nulls_are_pairwise_distinct(self):
        batch = [fresh_null() for _ in range(100)]
        assert len(set(batch)) == 100

    def test_codd_factory_is_infinite_and_fresh(self):
        factory = codd_null_factory()
        first = [next(factory) for _ in range(10)]
        assert len(set(first)) == 10


class TestProtocol:
    def test_is_null(self):
        assert is_null(Null())
        assert not is_null(None)
        assert not is_null(0)
        assert not is_null("NULL")

    def test_repr_mentions_label(self):
        assert "x" in repr(Null("x"))

    def test_ordering_is_rejected(self):
        with pytest.raises(TypeError):
            Null() < 3

    def test_nulls_usable_in_tuples_and_dicts(self):
        n = Null("k")
        d = {(1, n): "v"}
        assert d[(1, Null("k"))] == "v"
