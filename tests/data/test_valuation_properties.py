"""Hypothesis laws for valuations and the possible-world semantics."""

from hypothesis import given, strategies as st

from repro.data import Database, Null, Relation, Valuation

cells = st.one_of(st.integers(0, 4), st.builds(Null, st.integers(1, 3)))
rows2 = st.lists(st.tuples(cells, cells), min_size=0, max_size=4)
assignment = st.dictionaries(st.integers(1, 3), st.integers(10, 14), min_size=3, max_size=3)


def _valuation(mapping):
    return Valuation({Null(label): value for label, value in mapping.items()})


@given(rows=rows2, mapping=assignment)
def test_application_is_pointwise(rows, mapping):
    v = _valuation(mapping)
    relation = Relation(("A", "B"), rows)
    applied = v.apply_relation(relation)
    assert applied.rows == [v.apply_row(row) for row in relation.rows]


@given(rows=rows2, mapping=assignment)
def test_worlds_are_complete(rows, mapping):
    v = _valuation(mapping)
    db = Database({"R": Relation(("A", "B"), rows)})
    assert v.apply_database(db).is_complete()


@given(rows=rows2, mapping=assignment)
def test_application_idempotent_on_complete(rows, mapping):
    v = _valuation(mapping)
    db = Database({"R": Relation(("A", "B"), rows)})
    world = v.apply_database(db)
    again = v.apply_database(world)
    assert again["R"].rows == world["R"].rows


@given(rows=rows2, mapping=assignment)
def test_constants_preserved(rows, mapping):
    v = _valuation(mapping)
    db = Database({"R": Relation(("A", "B"), rows)})
    world = v.apply_database(db)
    assert db.constants() <= world.constants() | set()


@given(rows=rows2, mapping=assignment, other=assignment)
def test_same_labels_same_world(rows, mapping, other):
    """Worlds depend only on the label → constant map."""
    db = Database({"R": Relation(("A", "B"), rows)})
    w1 = _valuation(mapping).apply_database(db)
    w2 = _valuation(dict(mapping)).apply_database(db)
    assert w1["R"].rows == w2["R"].rows
