"""Schemas: nullability, keys, lookup helpers."""

import pytest

from repro.data.schema import (
    Attribute,
    DatabaseSchema,
    ForeignKey,
    RelationSchema,
    make_schema,
)


class TestAttribute:
    def test_defaults(self):
        a = Attribute("x")
        assert a.type == "str" and a.nullable

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown attribute type"):
            Attribute("x", "blob")


class TestRelationSchema:
    def test_key_attributes_must_be_non_nullable(self):
        with pytest.raises(ValueError, match="must not be nullable"):
            RelationSchema("r", (Attribute("k", "int", nullable=True),), key=("k",))

    def test_key_must_exist(self):
        with pytest.raises(ValueError, match="not in relation"):
            RelationSchema("r", (Attribute("a", "int", nullable=False),), key=("b",))

    def test_duplicate_attributes_rejected(self):
        attrs = (Attribute("a", nullable=True), Attribute("a", nullable=True))
        with pytest.raises(ValueError, match="duplicate"):
            RelationSchema("r", attrs)

    def test_lookups(self):
        schema = make_schema(
            "r", [("k", "int"), ("v", "str")], key=["k"]
        )
        assert schema.arity == 2
        assert schema.attribute_names == ("k", "v")
        assert schema.index_of("v") == 1
        assert not schema.is_nullable("k")
        assert schema.is_nullable("v")
        assert schema.nullable_attributes() == ("v",)
        with pytest.raises(KeyError):
            schema.attribute("zzz")


class TestMakeSchema:
    def test_not_null_columns(self):
        schema = make_schema(
            "r", [("k", "int"), ("a", "str"), ("b", "str")], key=["k"], not_null=["a"]
        )
        assert not schema.is_nullable("a")
        assert schema.is_nullable("b")


class TestDatabaseSchema:
    def test_mapping(self):
        db_schema = DatabaseSchema()
        r = make_schema("r", [("k", "int")], key=["k"])
        db_schema.add(r)
        assert "r" in db_schema
        assert db_schema["r"] is r
        assert db_schema.get("missing") is None
        assert db_schema.relation_names() == ("r",)

    def test_foreign_keys_structure(self):
        fk = ForeignKey("a", ("x",), "b", ("y",))
        assert fk.table == "a" and fk.ref_columns == ("y",)
