"""Valuations: application and enumeration."""

import pytest

from repro.data import Database, Null, Relation, Valuation
from repro.data.valuation import enumerate_valuations, fresh_constants, sample_valuations


class TestApplication:
    def test_apply_row(self):
        n = Null("n")
        v = Valuation({n: 7})
        assert v.apply_row((1, n, "x")) == (1, 7, "x")

    def test_apply_relation_and_database(self):
        n = Null("n")
        db = Database({"R": Relation(("A",), [(n,), (1,)])})
        v = Valuation({n: 5})
        out = v.apply_database(db)
        assert set(out["R"].rows) == {(5,), (1,)}
        assert out.is_complete()

    def test_unknown_null_raises(self):
        v = Valuation({})
        with pytest.raises(KeyError):
            v(Null("other"))

    def test_values_must_be_constants(self):
        with pytest.raises(TypeError):
            Valuation({Null("a"): Null("b")})

    def test_keys_must_be_nulls(self):
        with pytest.raises(TypeError):
            Valuation({1: 2})


class TestEnumeration:
    def test_counts(self):
        n1, n2 = Null(), Null()
        db = Database({"R": Relation(("A", "B"), [(n1, n2), (1, 2)])})
        # domain: constants {1, 2} + 2 fresh = 4 values; 2 nulls -> 16.
        valuations = list(enumerate_valuations(db))
        assert len(valuations) == 16

    def test_no_nulls_single_empty_valuation(self):
        db = Database({"R": Relation(("A",), [(1,)])})
        valuations = list(enumerate_valuations(db))
        assert len(valuations) == 1
        assert valuations[0].mapping == {}

    def test_explicit_domain(self):
        n = Null()
        db = Database({"R": Relation(("A",), [(n,)])})
        valuations = list(enumerate_valuations(db, domain=[10, 20]))
        assert {v(n) for v in valuations} == {10, 20}

    def test_empty_database_domain_falls_back_to_fresh(self):
        n = Null()
        db = Database({"R": Relation(("A",), [(n,)])})
        valuations = list(enumerate_valuations(db, extra_constants=0))
        assert len(valuations) == 1  # one fresh constant


def test_fresh_constants_are_distinct_and_foreign():
    fresh = fresh_constants(3)
    assert len(set(fresh)) == 3
    assert all(c != 1 and c != "x" for c in fresh)
    assert fresh[0] == fresh_constants(1)[0]  # deterministic by tag


def test_sample_valuations_cover_all_nulls(rng):
    n1, n2 = Null(), Null()
    db = Database({"R": Relation(("A", "B"), [(n1, n2)])})
    for v in sample_valuations(db, count=5, rng=rng):
        assert set(v.mapping) == {n1, n2}
