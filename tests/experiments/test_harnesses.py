"""Experiment harnesses on miniature settings: structure and shapes."""

import math


from repro.experiments.falsepos import run_false_positive_experiment
from repro.experiments.infeasible import run_infeasibility_experiment
from repro.experiments.performance import rewritten_queries, run_price_of_correctness
from repro.experiments.recall import run_recall_experiment
from repro.experiments.scaling import run_scaling_experiment


class TestFalsePositives:
    def test_structure_and_shapes(self):
        series = run_false_positive_experiment(
            null_rates=(0.02, 0.08),
            instances=2,
            executions=2,
            scale=0.2,
            seed=7,
        )
        assert set(series) == {"Q1", "Q2", "Q3", "Q4"}
        for points in series.values():
            assert [x for x, _y in points] == [2.0, 8.0]
            assert all(0.0 <= y <= 100.0 for _x, y in points)
        # Q2: with any null o_custkey, all answers are false positives —
        # at an 8% rate on hundreds of orders this is near-certain.
        assert series["Q2"][-1][1] > 50.0
        # Q3 produces a substantial share of wrong answers.
        assert series["Q3"][-1][1] > 10.0


class TestPriceOfCorrectness:
    def test_structure(self):
        series = run_price_of_correctness(
            null_rates=(0.03,),
            scale=0.2,
            instances=1,
            param_draws=1,
            repeats=1,
            seed=1,
        )
        assert set(series) == {"Q1", "Q2", "Q3", "Q4"}
        for points in series.values():
            (x, ratio), = points
            assert x == 3.0
            assert ratio > 0 and not math.isnan(ratio)

    def test_rewritten_queries_modes_agree_on_parse(self):
        auto = rewritten_queries()
        hand = rewritten_queries(use_appendix=True)
        assert set(auto) == set(hand) == {"Q1", "Q2", "Q3", "Q4"}

    def test_q2_wins_q4_pays(self):
        """The Figure 4 shape at reduced scale: Q+2 at least 2x faster,
        Q+4 slower than the original."""
        series = run_price_of_correctness(
            null_rates=(0.03,),
            scale=0.5,
            instances=1,
            param_draws=2,
            repeats=2,
            seed=3,
            query_ids=("Q2", "Q4"),
        )
        assert series["Q2"][0][1] < 0.5
        assert series["Q4"][0][1] > 1.0


class TestParallelHarness:
    """workers= fans instances out over a process pool; shapes must match."""

    def test_price_of_correctness_parallel_structure(self):
        series = run_price_of_correctness(
            null_rates=(0.03,),
            scale=0.1,
            instances=2,
            param_draws=1,
            repeats=1,
            seed=1,
            query_ids=("Q1",),
            workers=2,
        )
        ((x, ratio),) = series["Q1"]
        assert x == 3.0
        assert ratio > 0 and not math.isnan(ratio)

    def test_parallel_runs_are_deterministic(self):
        kwargs = dict(
            null_rates=(0.03,),
            scale=0.1,
            instances=2,
            param_draws=1,
            repeats=1,
            seed=4,
            query_ids=("Q1",),
            workers=2,
        )
        a = run_price_of_correctness(**kwargs)
        b = run_price_of_correctness(**kwargs)
        # Timing ratios jitter, but the structure and the sampled points
        # (rates, instance seeds → result sizes) are reproducible.
        assert [x for x, _ in a["Q1"]] == [x for x, _ in b["Q1"]]

    def test_scaling_parallel_structure(self):
        table = run_scaling_experiment(
            scales=(1.0,),
            null_rates=(0.03,),
            param_draws=1,
            repeats=1,
            base_scale=0.1,
            seed=2,
            query_ids=("Q1",),
            workers=2,
        )
        (lo, hi) = table["Q1"][1.0]
        assert 0 < lo <= hi


class TestScaling:
    def test_structure(self):
        table = run_scaling_experiment(
            scales=(1.0, 2.0),
            null_rates=(0.03,),
            param_draws=1,
            repeats=1,
            base_scale=0.1,
            seed=2,
            query_ids=("Q1", "Q3"),
        )
        assert set(table) == {"Q1", "Q3"}
        for per_scale in table.values():
            assert set(per_scale) == {1.0, 2.0}
            for lo, hi in per_scale.values():
                assert 0 < lo <= hi


class TestInfeasibility:
    def test_qt_work_grows_superlinearly(self):
        results = run_infeasibility_experiment(
            sizes=(10, 25), budget=5_000_000, null_rate=0.1, seed=0
        )
        small, medium = results
        for r in results:
            assert r["libkin_failed"] is None
            assert r["plus_rows"] < 5_000  # Q+ stays tiny throughout
        assert medium["libkin_rows"] > 4 * small["libkin_rows"]
        assert medium["libkin_rows"] > 50 * medium["plus_rows"]

    def test_qt_trips_budget_at_moderate_size(self):
        (result,) = run_infeasibility_experiment(
            sizes=(60,), budget=30_000, null_rate=0.1, seed=0
        )
        assert result["libkin_failed"] is not None
        assert result["plus_rows"] < 5_000


class TestRecall:
    def test_recall_is_perfect_and_no_flagged_answers_returned(self):
        results = run_recall_experiment(
            null_rates=(0.05,),
            instances=2,
            param_draws=2,
            scale=0.04,
            seed=5,
        )
        assert set(results) == {"Q1", "Q2", "Q3", "Q4"}
        for comparisons in results.values():
            for cmp in comparisons:
                assert cmp.rewritten_recall == 1.0
                assert cmp.missed_certain == 0
