"""Result rendering."""

from repro.experiments.report import format_ratio, render_series, render_table


class TestFormatRatio:
    def test_ranges(self):
        assert format_ratio(0.0002) == "0.0002"
        assert format_ratio(0.05) == "0.050"
        assert format_ratio(1.02) == "1.02"
        assert format_ratio(3.77) == "3.77"


class TestRenderSeries:
    def test_columns_per_series(self):
        text = render_series(
            "demo",
            "x",
            {"Q1": [(1.0, 10.0), (2.0, 20.0)], "Q2": [(1.0, 99.0)]},
        )
        lines = text.splitlines()
        assert "demo" in lines[0]
        assert "Q1" in text and "Q2" in text
        assert "—" in text  # missing Q2 point at x=2

    def test_custom_format(self):
        text = render_series("t", "x", {"s": [(1.0, 0.5)]}, y_format=lambda v: f"<{v}>")
        assert "<0.5>" in text


class TestRenderTable:
    def test_alignment(self):
        text = render_table("t", ["a", "long_header"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        widths = {len(line) for line in lines[1:]}
        assert len(widths) <= 2  # rows and separators line up
