"""SQL → relational algebra: agreement with the engine, scoping rules."""

import pytest

from repro.algebra import evaluate
from repro.data import Database, Null, Relation
from repro.engine import execute_sql
from repro.sql.parser import parse_sql
from repro.sql.to_algebra import AlgebraTranslationError, sql_to_algebra


@pytest.fixture
def db():
    n = Null()
    return Database(
        {
            "emp": Relation(
                ("eid", "dept", "boss"),
                [(1, "db", 2), (2, "db", n), (3, "os", 1)],
            ),
            "dep": Relation(("dname", "head"), [("db", 2), ("os", 3)]),
        }
    )


CASES = [
    "SELECT eid FROM emp",
    "SELECT eid, dept FROM emp WHERE eid > 1",
    "SELECT e.eid FROM emp e, dep d WHERE e.dept = d.dname",
    "SELECT eid FROM emp WHERE dept = 'db' AND eid <> 2",
    "SELECT eid FROM emp WHERE EXISTS "
    "(SELECT * FROM dep WHERE head = emp.eid)",
    "SELECT eid FROM emp WHERE NOT EXISTS "
    "(SELECT * FROM dep WHERE head = emp.eid)",
    "SELECT eid FROM emp WHERE eid IN (SELECT head FROM dep)",
    "SELECT eid FROM emp WHERE dept IN ('db', 'os') AND eid >= 2",
    "SELECT dname FROM dep UNION SELECT dept FROM emp",
    "SELECT dept FROM emp EXCEPT SELECT dname FROM dep WHERE head = 2",
    "SELECT e1.eid FROM emp e1, emp e2 WHERE e1.boss = e2.eid",
    "WITH heads AS (SELECT head FROM dep) "
    "SELECT eid FROM emp WHERE eid IN (SELECT head FROM heads)",
]


@pytest.mark.parametrize("sql", CASES)
def test_engine_and_algebra_agree_under_3vl(sql, db):
    """The engine and the reference algebra evaluator must compute the
    same answers for the EXISTS/IN fragment under SQL semantics."""
    query = parse_sql(sql)
    expr = sql_to_algebra(query, db)
    algebra_result = evaluate(expr, db, semantics="sql")
    engine_result = execute_sql(db, query)
    assert set(engine_result.rows) == set(algebra_result.rows)


def test_parameters_are_folded(db):
    expr = sql_to_algebra(
        parse_sql("SELECT eid FROM emp WHERE dept = $d"), db, params={"d": "os"}
    )
    out = evaluate(expr, db, semantics="sql")
    assert out.rows == [(3,)]


def test_list_parameter_expansion(db):
    expr = sql_to_algebra(
        parse_sql("SELECT eid FROM emp WHERE eid IN ($ids)"),
        db,
        params={"ids": [1, 3]},
    )
    out = evaluate(expr, db, semantics="sql")
    assert set(out.rows) == {(1,), (3,)}


def test_unbound_parameter_rejected(db):
    with pytest.raises(AlgebraTranslationError, match="unbound parameter"):
        sql_to_algebra(parse_sql("SELECT eid FROM emp WHERE dept = $d"), db)


def test_scalar_subquery_requires_resolver(db):
    sql = "SELECT eid FROM emp WHERE eid > (SELECT AVG(eid) FROM emp)"
    with pytest.raises(AlgebraTranslationError, match="scalar"):
        sql_to_algebra(parse_sql(sql), db)


def test_scalar_subquery_with_resolver(db):
    sql = "SELECT eid FROM emp WHERE eid > (SELECT AVG(eid) FROM emp)"
    expr = sql_to_algebra(parse_sql(sql), db, scalar_resolver=lambda q: 2)
    out = evaluate(expr, db, semantics="sql")
    assert out.rows == [(3,)]


def test_ambiguous_column_rejected(db):
    # 'head' exists in dep only — but eid in both emp aliases.
    sql = "SELECT eid FROM emp e1, emp e2 WHERE boss = 1"
    with pytest.raises(AlgebraTranslationError, match="ambiguous"):
        sql_to_algebra(parse_sql(sql), db)


def test_in_subquery_must_select_single_column(db):
    sql = "SELECT eid FROM emp WHERE eid IN (SELECT * FROM dep)"
    with pytest.raises(AlgebraTranslationError):
        sql_to_algebra(parse_sql(sql), db)


def test_select_star_keeps_qualified_names(db):
    expr = sql_to_algebra(parse_sql("SELECT * FROM dep"), db)
    out = evaluate(expr, db, semantics="sql")
    assert out.attributes == ("dep.dname", "dep.head")


def test_duplicate_output_names_rejected(db):
    with pytest.raises(AlgebraTranslationError, match="duplicate"):
        sql_to_algebra(parse_sql("SELECT eid, eid FROM emp"), db)
