"""The ``Q?`` side at SQL level: potential answers.

``rewrite_possible`` weakens the whole query (mode ``?`` at the top),
so its result must contain every answer produced in any possible world
— checked by enumerating valuations on miniature instances.
"""

import random

import pytest

from repro.data import Database, Null, Relation
from repro.data.schema import DatabaseSchema, make_schema
from repro.data.valuation import enumerate_valuations
from repro.engine import execute_sql
from repro.sql.parser import parse_sql
from repro.sql.printer import to_sql
from repro.sql.rewrite import RewriteError, rewrite_certain, rewrite_possible


@pytest.fixture
def schema():
    schema = DatabaseSchema()
    schema.add(make_schema("r", [("a", "int"), ("b", "int")], key=["a"]))
    schema.add(make_schema("s", [("a", "int"), ("b", "int")]))
    return schema


def random_db(rng):
    def cell():
        return Null() if rng.random() < 0.3 else rng.choice([1, 2])

    r_rows = [(k, cell()) for k in range(1, rng.randint(2, 4))]
    s_rows = [(cell(), cell()) for _ in range(rng.randint(1, 3))]
    return Database(
        {
            "r": Relation(("a", "b"), r_rows),
            "s": Relation(("a", "b"), s_rows),
        }
    )


QUERIES = [
    "SELECT a FROM r WHERE b = 2",
    "SELECT a FROM r WHERE b <> 2",
    "SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE s.a = r.b)",
    "SELECT a FROM r WHERE NOT EXISTS (SELECT * FROM s WHERE s.a = r.b)",
    "SELECT a FROM r WHERE b IN (SELECT b FROM s)",
]


@pytest.mark.parametrize("sql", QUERIES)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_possible_contains_every_world_answer(sql, seed, schema):
    rng = random.Random(hash((sql, seed)) & 0xFFFF)
    db = random_db(rng)
    query = parse_sql(sql)
    poss = rewrite_possible(query, schema)
    poss_rows = set(execute_sql(db, poss).rows)
    for valuation in enumerate_valuations(db, extra_constants=1):
        world = valuation.apply_database(db)
        for row in execute_sql(world, query).rows:
            image = {valuation.apply_row(r) for r in poss_rows}
            assert row in image, (
                f"world answer {row} outside Q? for {sql} (seed {seed})"
            )


@pytest.mark.parametrize("sql", QUERIES)
@pytest.mark.parametrize("seed", [5, 6])
def test_sandwich_certain_sql_possible(sql, seed, schema):
    """Q+(D) ⊆ EvalSQL(Q, D) ∪ …  and both are ⊆ Q?(D) for these
    queries (the expected containment chain)."""
    rng = random.Random(hash((sql, seed)) & 0xFF)
    db = random_db(rng)
    query = parse_sql(sql)
    plus = set(execute_sql(db, rewrite_certain(query, schema)).rows)
    sql_rows = set(execute_sql(db, query).rows)
    poss = set(execute_sql(db, rewrite_possible(query, schema)).rows)
    assert plus <= poss
    assert sql_rows <= poss


def test_identity_on_complete_databases(schema):
    db = Database(
        {
            "r": Relation(("a", "b"), [(1, 2), (2, 2)]),
            "s": Relation(("a", "b"), [(2, 1)]),
        }
    )
    for sql in QUERIES:
        query = parse_sql(sql)
        assert set(execute_sql(db, rewrite_possible(query, schema)).rows) == set(
            execute_sql(db, query).rows
        ), sql


def test_weakened_conditions_visible(schema):
    poss = rewrite_possible(parse_sql("SELECT a FROM r WHERE b = 2"), schema)
    assert "b IS NULL" in to_sql(poss)


def test_with_views_rejected(schema):
    query = parse_sql("WITH v AS (SELECT a FROM r) SELECT a FROM v")
    with pytest.raises(RewriteError, match="not supported"):
        rewrite_possible(query, schema)
