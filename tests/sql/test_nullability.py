"""Nullability analysis: schema facts + positive-context forcing."""

import pytest

from repro.sql import ast
from repro.sql.nullability import Catalog, RewriteError, Scope, forced_nonnull
from repro.sql.parser import parse_sql
from repro.tpch.queries import Q1_SQL
from repro.tpch.schema import tpch_schema


@pytest.fixture
def catalog():
    return Catalog(tpch_schema())


def scope_for(sql: str, catalog: Catalog) -> Scope:
    select = parse_sql(sql).body
    scope = Scope(select.tables, catalog)
    forced_nonnull(select.where, scope)
    return scope


class TestSchemaFacts:
    def test_key_columns_not_nullable(self, catalog):
        scope = scope_for("SELECT * FROM orders", catalog)
        assert not scope.is_possibly_null(ast.ColumnRef("o_orderkey"))
        assert scope.is_possibly_null(ast.ColumnRef("o_custkey"))

    def test_composite_key_of_lineitem(self, catalog):
        scope = scope_for("SELECT * FROM lineitem", catalog)
        assert not scope.is_possibly_null(ast.ColumnRef("l_orderkey"))
        assert not scope.is_possibly_null(ast.ColumnRef("l_linenumber"))
        assert scope.is_possibly_null(ast.ColumnRef("l_suppkey"))

    def test_nation_is_complete(self, catalog):
        scope = scope_for("SELECT * FROM nation", catalog)
        assert not scope.is_possibly_null(ast.ColumnRef("n_name"))


class TestForcing:
    def test_comparison_forces_both_sides(self, catalog):
        scope = scope_for(
            "SELECT * FROM supplier, lineitem WHERE s_suppkey = l_suppkey", catalog
        )
        assert not scope.is_possibly_null(ast.ColumnRef("l_suppkey"))

    def test_or_forces_nothing(self, catalog):
        scope = scope_for(
            "SELECT * FROM lineitem WHERE l_suppkey = 1 OR l_partkey = 2", catalog
        )
        assert scope.is_possibly_null(ast.ColumnRef("l_suppkey"))

    def test_is_not_null_forces(self, catalog):
        scope = scope_for(
            "SELECT * FROM lineitem WHERE l_suppkey IS NOT NULL", catalog
        )
        assert not scope.is_possibly_null(ast.ColumnRef("l_suppkey"))

    def test_in_list_forces_expr(self, catalog):
        scope = scope_for(
            "SELECT * FROM customer WHERE c_nationkey IN (1, 2)", catalog
        )
        assert not scope.is_possibly_null(ast.ColumnRef("c_nationkey"))

    def test_positive_exists_forces_outer_columns(self, catalog):
        """The Q1 situation: EXISTS(l2 … l2.l_suppkey <> l1.l_suppkey)
        forces the *outer* l1.l_suppkey but not l2's own columns."""
        select = parse_sql(Q1_SQL).body
        scope = Scope(select.tables, catalog)
        forced_nonnull(select.where, scope)
        assert not scope.is_possibly_null(ast.ColumnRef("l_suppkey", "l1"))
        assert not scope.is_possibly_null(ast.ColumnRef("l_receiptdate", "l1"))
        assert not scope.is_possibly_null(ast.ColumnRef("l_commitdate", "l1"))

    def test_negated_exists_forces_nothing(self, catalog):
        scope = scope_for(
            "SELECT * FROM orders WHERE NOT EXISTS "
            "(SELECT * FROM lineitem WHERE l_suppkey = o_custkey)",
            catalog,
        )
        assert scope.is_possibly_null(ast.ColumnRef("o_custkey"))


class TestCatalogViews:
    def test_view_columns_inherit_nullability(self, catalog):
        view = parse_sql("SELECT p_partkey FROM part WHERE p_name IS NULL")
        catalog.register_view("part_view", view)
        assert catalog.columns_of("part_view") == ("p_partkey",)
        assert not catalog.is_nullable("part_view", "p_partkey")

    def test_union_view_merges_nullability(self, catalog):
        view = parse_sql(
            "SELECT p_partkey FROM part WHERE p_name IS NULL "
            "UNION SELECT p_partkey FROM part"
        )
        catalog.register_view("pv", view)
        assert not catalog.is_nullable("pv", "p_partkey")

    def test_aggregate_output_nullable(self, catalog):
        view = parse_sql("SELECT AVG(c_acctbal) AS a FROM customer")
        catalog.register_view("v", view)
        assert catalog.is_nullable("v", "a")


class TestResolution:
    def test_unknown_table(self, catalog):
        with pytest.raises(RewriteError, match="unknown table"):
            Scope((ast.TableRef("nope"),), catalog)

    def test_unknown_column(self, catalog):
        scope = scope_for("SELECT * FROM orders", catalog)
        with pytest.raises(RewriteError):
            scope.resolve(ast.ColumnRef("no_such_col", "orders"))

    def test_duplicate_binding(self, catalog):
        with pytest.raises(RewriteError, match="duplicate"):
            Scope((ast.TableRef("orders"), ast.TableRef("orders")), catalog)
