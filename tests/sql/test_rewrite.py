"""The direct SQL rewriter: appendix equivalence and the pass behaviours."""

import random

import pytest

from repro.data import Database, Null, Relation
from repro.data.schema import DatabaseSchema, make_schema
from repro.engine import execute_sql
from repro.sql import ast
from repro.sql.parser import parse_condition, parse_sql
from repro.sql.printer import to_sql
from repro.sql.rewrite import RewriteError, RewriteOptions, negate_sql, rewrite_certain
from repro.tpch.datafiller import generate_small_instance
from repro.tpch.nullify import inject_nulls
from repro.tpch.queries import QUERIES, sample_parameters
from repro.tpch.schema import tpch_schema


@pytest.fixture(scope="module")
def schema():
    return tpch_schema()


def rewrite_sql(sql, schema, **kwargs):
    options = RewriteOptions(**kwargs) if kwargs else None
    return rewrite_certain(parse_sql(sql), schema, options)


# ---------------------------------------------------------------------------
# The headline property: automatic rewrites ≡ appendix rewrites
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("qid", sorted(QUERIES))
@pytest.mark.parametrize("null_rate", [0.0, 0.03, 0.10])
def test_automatic_rewrite_matches_appendix(qid, null_rate, schema):
    original_sql, appendix_sql, _names = QUERIES[qid]
    auto = rewrite_certain(parse_sql(original_sql), schema)
    hand = parse_sql(appendix_sql)
    rng = random.Random(hash((qid, null_rate)) & 0xFFFF)
    base = generate_small_instance(scale=0.08, seed=rng.randrange(2**31))
    db = inject_nulls(base, null_rate, seed=rng.randrange(2**31))
    for _ in range(3):
        params = sample_parameters(qid, db, rng=rng)
        auto_rows = set(execute_sql(db, auto, params).rows)
        hand_rows = set(execute_sql(db, hand, params).rows)
        assert auto_rows == hand_rows


@pytest.mark.parametrize("qid", sorted(QUERIES))
def test_rewrite_is_identity_on_complete_databases(qid, schema):
    original_sql, _appendix, _names = QUERIES[qid]
    plus = rewrite_certain(parse_sql(original_sql), schema)
    rng = random.Random(hash(qid) & 0xFFFF)
    db = generate_small_instance(scale=0.08, seed=7)
    for _ in range(3):
        params = sample_parameters(qid, db, rng=rng)
        original_rows = set(execute_sql(db, original_sql, params).rows)
        plus_rows = set(execute_sql(db, plus, params).rows)
        assert original_rows == plus_rows


@pytest.mark.parametrize("qid", sorted(QUERIES))
def test_rewrite_never_adds_answers(qid, schema):
    """Q+ ⊆ Q under SQL evaluation for the four paper queries.

    (Not a theorem in general — Section 6 — but true for Q1–Q4, whose
    outputs are forced non-null by their positive conjuncts.)"""
    original_sql, _appendix, _names = QUERIES[qid]
    plus = rewrite_certain(parse_sql(original_sql), schema)
    rng = random.Random(hash(qid) & 0xFFF)
    db = inject_nulls(generate_small_instance(scale=0.08, seed=5), 0.06, seed=6)
    for _ in range(3):
        params = sample_parameters(qid, db, rng=rng)
        original_rows = set(execute_sql(db, original_sql, params).rows)
        plus_rows = set(execute_sql(db, plus, params).rows)
        assert plus_rows <= original_rows


# ---------------------------------------------------------------------------
# Pass 1: condition weakening with nullability
# ---------------------------------------------------------------------------


class TestWeakening:
    def q3_not_exists(self, schema, **kwargs):
        out = rewrite_sql(QUERIES["Q3"][0], schema, **kwargs)
        (not_exists,) = [
            c for c in out.body.where.items
        ] if isinstance(out.body.where, ast.BoolOp) else [out.body.where]
        return to_sql(out)

    def test_q3_gains_is_null_escape(self, schema):
        text = self.q3_not_exists(schema)
        assert "l_suppkey IS NULL" in text

    def test_non_nullable_join_not_weakened(self, schema):
        text = self.q3_not_exists(schema)
        assert "l_orderkey = o_orderkey OR" not in text

    def test_q1_outer_forced_column_not_escaped(self, schema):
        out = to_sql(rewrite_sql(QUERIES["Q1"][0], schema))
        assert "l3.l_suppkey IS NULL" in out
        assert "l1.l_suppkey IS NULL" not in out
        assert "l3.l_receiptdate IS NULL" in out
        assert "l3.l_commitdate IS NULL" in out

    def test_positive_context_unchanged(self, schema):
        out = to_sql(rewrite_sql(QUERIES["Q1"][0], schema))
        # The positive EXISTS subquery keeps its plain conditions.
        assert "l2.l_suppkey <> l1.l_suppkey OR" not in out

    def test_user_is_null_in_positive_context_is_false(self, schema):
        out = rewrite_sql(
            "SELECT o_orderkey FROM orders WHERE o_custkey IS NULL", schema
        )
        assert out.body.where == ast.BoolLiteral(False)

    def test_user_is_not_null_becomes_true(self, schema):
        out = rewrite_sql(
            "SELECT o_orderkey FROM orders WHERE o_custkey IS NOT NULL", schema
        )
        assert out.body.where is None or out.body.where == ast.BoolLiteral(True)


# ---------------------------------------------------------------------------
# Pass 3: disjunction splitting
# ---------------------------------------------------------------------------


class TestSplitting:
    def test_q2_splits_into_decorrelated_block(self, schema):
        out = to_sql(rewrite_sql(QUERIES["Q2"][0], schema))
        assert out.count("NOT EXISTS") == 2
        assert "WHERE o_custkey IS NULL" in out

    def test_q3_stays_unsplit(self, schema):
        out = to_sql(rewrite_sql(QUERIES["Q3"][0], schema))
        assert out.count("NOT EXISTS") == 1
        assert " OR " in out

    def test_split_never(self, schema):
        out = to_sql(rewrite_sql(QUERIES["Q2"][0], schema, split="never"))
        assert out.count("NOT EXISTS") == 1

    def test_split_always_splits_q3(self, schema):
        out = to_sql(rewrite_sql(QUERIES["Q3"][0], schema, split="always"))
        assert out.count("NOT EXISTS") == 2

    def test_split_options_agree_on_answers(self, schema):
        rng = random.Random(99)
        db = inject_nulls(generate_small_instance(scale=0.08, seed=1), 0.08, seed=2)
        for qid in sorted(QUERIES):
            params = sample_parameters(qid, db, rng=rng)
            results = []
            for kwargs in ({"split": "never", "fold_views": "never"},
                           {"split": "always"},
                           {}):
                query = rewrite_sql(QUERIES[qid][0], schema, **kwargs)
                results.append(set(execute_sql(db, query, params).rows))
            assert results[0] == results[1] == results[2], qid


# ---------------------------------------------------------------------------
# Pass 2: view folding (the Q4 shape)
# ---------------------------------------------------------------------------


class TestViewFolding:
    def test_q4_produces_two_views(self, schema):
        out = rewrite_sql(QUERIES["Q4"][0], schema)
        names = [name for name, _q in out.ctes]
        assert len(names) == 2
        assert any("part" in n for n in names)
        assert any("supp" in n for n in names)

    def test_q4_has_four_not_exists_blocks(self, schema):
        out = to_sql(rewrite_sql(QUERIES["Q4"][0], schema))
        assert out.count("NOT EXISTS") == 4
        assert out.count("AND EXISTS") >= 4  # the guards

    def test_views_are_unions_by_default(self, schema):
        out = to_sql(rewrite_sql(QUERIES["Q4"][0], schema))
        assert "UNION" in out

    def test_union_views_disabled(self, schema):
        out = rewrite_sql(QUERIES["Q4"][0], schema, union_views=False)
        text = to_sql(out)
        assert "UNION" not in text

    def test_fold_never_keeps_tables_inline(self, schema):
        out = rewrite_sql(QUERIES["Q4"][0], schema, fold_views="never", split="never")
        assert out.ctes == ()


# ---------------------------------------------------------------------------
# Fragment corners
# ---------------------------------------------------------------------------


class TestFragmentCorners:
    @pytest.fixture
    def rs(self):
        schema = DatabaseSchema()
        schema.add(make_schema("r", [("a", "int"), ("b", "int")], key=["a"]))
        schema.add(make_schema("s", [("a", "int"), ("b", "int")]))
        return schema

    @pytest.fixture
    def rs_db(self):
        n1, n2 = Null(), Null()
        return Database(
            {
                "r": Relation(("a", "b"), [(1, 2), (2, n1), (3, 3)]),
                "s": Relation(("a", "b"), [(1, 2), (n2, 3)]),
            }
        )

    def test_not_in_subquery(self, rs, rs_db):
        sql = "SELECT a FROM r WHERE a NOT IN (SELECT b FROM s)"
        plus = rewrite_certain(parse_sql(sql), rs)
        got = set(execute_sql(rs_db, plus).rows)
        # s.b could be anything through the null in s.a? No: b values are
        # {2, 3}; also any null b would block. Here a=1 is certain.
        assert got == {(1,)}

    def test_except_rewrites_to_not_exists(self, rs, rs_db):
        sql = "SELECT a, b FROM r EXCEPT SELECT a, b FROM s"
        plus = rewrite_certain(parse_sql(sql), rs)
        text = to_sql(plus)
        assert "NOT EXISTS" in text
        got = set(execute_sql(rs_db, plus).rows)
        # (1,2) is in s exactly; (2,⊥) unifies with (⊥,3)? a: 2 vs ⊥ ok,
        # b: ⊥ vs 3 ok → excluded. (3,3) unifies with (⊥,3) → excluded.
        assert got == set()

    def test_intersect_certain(self, rs, rs_db):
        sql = "SELECT a, b FROM r INTERSECT SELECT a, b FROM s"
        plus = rewrite_certain(parse_sql(sql), rs)
        got = set(execute_sql(rs_db, plus).rows)
        assert got == {(1, 2)}

    def test_union_componentwise(self, rs, rs_db):
        sql = (
            "SELECT a FROM r WHERE NOT EXISTS (SELECT * FROM s WHERE s.a = r.a) "
            "UNION SELECT a FROM s WHERE a IS NOT NULL"
        )
        plus = rewrite_certain(parse_sql(sql), rs)
        execute_sql(rs_db, plus)  # should be executable

    def test_view_in_negative_context_rejected(self, rs):
        sql = (
            "WITH v AS (SELECT a FROM s) "
            "SELECT a FROM r WHERE NOT EXISTS (SELECT * FROM v WHERE v.a = r.a)"
        )
        with pytest.raises(RewriteError, match="negative context"):
            rewrite_certain(parse_sql(sql), rs)

    def test_unknown_table_rejected(self, rs):
        with pytest.raises(RewriteError, match="unknown table"):
            rewrite_certain(parse_sql("SELECT a FROM zzz"), rs)

    def test_bad_options_rejected(self):
        with pytest.raises(ValueError):
            RewriteOptions(split="sometimes")
        with pytest.raises(ValueError):
            RewriteOptions(fold_views="maybe")


class TestNegateSql:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("a = 1", "a <> 1"),
            ("a > 1", "a <= 1"),
            ("a >= 1", "a < 1"),
            ("a IS NULL", "a IS NOT NULL"),
            ("a LIKE 'x'", "a NOT LIKE 'x'"),
        ],
    )
    def test_atoms(self, text, expected):
        assert negate_sql(parse_condition(text)) == parse_condition(expected)

    def test_de_morgan(self):
        out = negate_sql(parse_condition("a = 1 AND b = 2"))
        assert out == parse_condition("a <> 1 OR b <> 2")

    def test_exists_flip(self):
        out = negate_sql(parse_condition("EXISTS (SELECT * FROM t)"))
        assert isinstance(out, ast.Exists) and out.negated

    def test_double_negation(self):
        cond = parse_condition("NOT a = 1")
        assert negate_sql(cond) == parse_condition("a = 1")
