"""SQL lexer: tokens, literals, comments, errors."""

import pytest

from repro.sql.lexer import SqlSyntaxError, tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)][:-1]  # drop eof


class TestBasicTokens:
    def test_keywords_case_insensitive(self):
        assert kinds("SELECT select SeLeCt") == [("keyword", "select")] * 3

    def test_identifiers_lowercased(self):
        assert kinds("Orders O_OrderKey") == [("name", "orders"), ("name", "o_orderkey")]

    def test_operators(self):
        assert [v for _k, v in kinds("= <> != <= >= < > || ( ) , . * ;")] == [
            "=", "<>", "<>", "<=", ">=", "<", ">", "||", "(", ")", ",", ".", "*", ";",
        ]

    def test_numbers(self):
        assert kinds("42 3.14 0.00") == [
            ("number", 42),
            ("number", 3.14),
            ("number", 0.0),
        ]

    def test_qualified_name_is_not_a_decimal(self):
        tokens = kinds("l1.l_suppkey")
        assert tokens == [("name", "l1"), ("op", "."), ("name", "l_suppkey")]


class TestStrings:
    def test_simple(self):
        assert kinds("'hello'") == [("string", "hello")]

    def test_quote_escape(self):
        assert kinds("'it''s'") == [("string", "it's")]

    def test_empty(self):
        assert kinds("''") == [("string", "")]

    def test_unterminated(self):
        with pytest.raises(SqlSyntaxError, match="unterminated string"):
            tokenize("'oops")


class TestParams:
    def test_param(self):
        assert kinds("$nation") == [("param", "nation")]

    def test_param_needs_name(self):
        with pytest.raises(SqlSyntaxError, match="empty parameter"):
            tokenize("$ x")


class TestComments:
    def test_line_comment(self):
        assert kinds("SELECT -- all of it\n1") == [("keyword", "select"), ("number", 1)]

    def test_block_comment(self):
        assert kinds("SELECT /* inner */ 1") == [("keyword", "select"), ("number", 1)]

    def test_unterminated_block(self):
        with pytest.raises(SqlSyntaxError, match="unterminated block"):
            tokenize("SELECT /* ...")


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError, match="unexpected character"):
            tokenize("SELECT #")

    def test_error_reports_position(self):
        with pytest.raises(SqlSyntaxError, match="line 2"):
            tokenize("SELECT\n  #")


def test_eof_token_present():
    assert tokenize("")[-1].kind == "eof"
