"""Algebra → SQL compilation: the engine must agree with the reference
evaluator on the compiled queries — including translated Q+/Qt forms.
"""

import random

import pytest

from repro.algebra import (
    AdomPower,
    AntiJoin,
    Difference,
    Division,
    Intersection,
    Join,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    SemiJoin,
    Union,
    UnifAntiJoin,
    UnifSemiJoin,
    eq,
    evaluate,
    neq,
)
from repro.data import Database, Null, Relation
from repro.engine import execute_sql
from repro.sql.from_algebra import AlgebraToSqlError, algebra_to_sql
from repro.translate import translate_improved, translate_libkin

R, S = RelationRef("R"), RelationRef("S")
S_AS_R = Rename(S, {"C": "A", "D": "B"})


def make_db(seed=0, null_rate=0.25):
    rng = random.Random(seed)

    def cell():
        return Null() if rng.random() < null_rate else rng.choice([1, 2, 3])

    def rows(n):
        return [(cell(), cell()) for _ in range(n)]

    return Database(
        {
            "R": Relation(("A", "B"), rows(rng.randint(2, 4))),
            "S": Relation(("C", "D"), rows(rng.randint(2, 4))),
        }
    )


CORPUS = {
    "base": R,
    "selection": Selection(R, eq("A", 1)),
    "selection-or": Selection(R, neq("A", "B")),
    "projection": Projection(R, ("B",)),
    "rename": Rename(R, {"A": "X"}),
    "product": Product(R, S),
    "join": Join(R, S, eq("B", "C")),
    "union": Union(R, S_AS_R),
    "intersection": Intersection(R, S_AS_R),
    "difference": Difference(R, S_AS_R),
    "semijoin": SemiJoin(R, S, eq("B", "C")),
    "antijoin": AntiJoin(R, S, eq("B", "C")),
    "unif-semijoin": UnifSemiJoin(R, S_AS_R, codd=True),
    "unif-antijoin": UnifAntiJoin(R, S_AS_R, codd=True),
    "nested": Projection(
        Difference(Selection(R, neq("A", 1)), S_AS_R), ("B",)
    ),
    "adom": AdomPower(("X",)),
}


@pytest.mark.parametrize("name", sorted(CORPUS))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_compiled_sql_matches_reference(name, seed):
    expr = CORPUS[name]
    db = make_db(seed)
    reference = evaluate(expr, db, semantics="sql")
    compiled = algebra_to_sql(expr, db)
    engine = execute_sql(db, compiled)
    assert set(engine.rows) == set(reference.rows), name


@pytest.mark.parametrize("seed", [0, 1])
def test_division_compiles(seed):
    rng = random.Random(seed)
    takes = [
        (st, co)
        for st in ("ann", "bob", "cal")
        for co in ("db", "os")
        if rng.random() < 0.75
    ]
    db = Database(
        {
            "takes": Relation(("st", "co"), takes),
            "courses": Relation(("co",), [("db",), ("os",)]),
        }
    )
    expr = Division(RelationRef("takes"), RelationRef("courses"))
    reference = evaluate(expr, db, semantics="sql")
    engine = execute_sql(db, algebra_to_sql(expr, db))
    assert set(engine.rows) == set(reference.rows)


@pytest.mark.parametrize("seed", [3, 4, 5])
def test_translated_q_plus_runs_as_sql(seed):
    """The paper's loop: translate in algebra, execute as SQL."""
    db = make_db(seed)
    query = Difference(R, Selection(S_AS_R, neq("A", 1)))
    plus, _poss = translate_improved(query, sql_adjusted=True, codd=True)
    reference = evaluate(plus, db, semantics="sql")
    engine = execute_sql(db, algebra_to_sql(plus, db))
    assert set(engine.rows) == set(reference.rows)
    # And the compiled Q+ is still sound wrt brute-force certainty.
    from repro.certain import certain_answers_with_nulls

    cert = set(certain_answers_with_nulls(query, db).rows)
    assert set(engine.rows) <= cert


@pytest.mark.parametrize("seed", [6])
def test_figure2_qt_runs_as_sql_on_tiny_instance(seed):
    """Even the Figure 2 translation (with adom^k) executes — on a tiny
    instance, as Section 5 dictates."""
    db = make_db(seed, null_rate=0.2)
    query = Difference(R, S_AS_R)
    qt, _qf = translate_libkin(query, db)
    reference = evaluate(qt, db, semantics="sql")
    engine = execute_sql(db, algebra_to_sql(qt, db))
    assert set(engine.rows) == set(reference.rows)


class TestErrors:
    def test_literal_rejected(self):
        from repro.algebra import Literal

        expr = Literal(Relation(("X",), [(1,)]))
        with pytest.raises(AlgebraToSqlError, match="literal"):
            algebra_to_sql(expr, {"R": ("A", "B")})

    def test_adom_requires_relation_names(self):
        def lookup(name):
            return ("A", "B")

        with pytest.raises(AlgebraToSqlError, match="adom"):
            algebra_to_sql(AdomPower(("X",)), lookup)

    def test_unknown_attribute_in_condition(self):
        expr = Selection(R, eq("ZZZ", 1))
        db = make_db(0)
        with pytest.raises(AlgebraToSqlError, match="ZZZ"):
            algebra_to_sql(expr, db)
