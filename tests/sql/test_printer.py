"""SQL printer: formatting details beyond the round-trip tests."""

import pytest

from repro.sql.parser import parse_sql
from repro.sql.printer import to_sql
from repro.sql import ast


class TestLiterals:
    def test_string_quotes_escaped(self):
        query = parse_sql("SELECT a FROM t WHERE b = 'it''s'")
        assert "'it''s'" in to_sql(query)

    def test_numbers(self):
        query = parse_sql("SELECT a FROM t WHERE b = 42 AND c = 3.5")
        text = to_sql(query)
        assert "42" in text and "3.5" in text

    def test_params_preserved(self):
        query = parse_sql("SELECT a FROM t WHERE b = $x")
        assert "$x" in to_sql(query)


class TestStructure:
    def test_distinct_rendered(self):
        assert "SELECT DISTINCT" in to_sql(parse_sql("SELECT DISTINCT a FROM t"))

    def test_aliases_rendered(self):
        text = to_sql(parse_sql("SELECT a AS x FROM t u"))
        assert "AS x" in text and "t u" in text

    def test_or_parenthesised_under_and(self):
        query = parse_sql("SELECT a FROM t WHERE a = 1 AND (b = 2 OR c = 3)")
        text = to_sql(query)
        assert "( b = 2 OR c = 3 )" in text

    def test_not_exists_indented(self):
        query = parse_sql(
            "SELECT a FROM t WHERE NOT EXISTS (SELECT * FROM u WHERE u.a = t.a)"
        )
        text = to_sql(query)
        assert "NOT EXISTS (" in text
        assert "\n  SELECT *" in text

    def test_with_views_rendered(self):
        query = parse_sql("WITH v AS (SELECT a FROM t) SELECT a FROM v")
        text = to_sql(query)
        assert text.startswith("WITH")
        assert "v AS (" in text

    def test_union_rendered(self):
        text = to_sql(parse_sql("SELECT a FROM t UNION ALL SELECT a FROM u"))
        assert "UNION ALL" in text

    def test_in_list(self):
        text = to_sql(parse_sql("SELECT a FROM t WHERE a IN (1, 2, 3)"))
        assert "IN (1, 2, 3)" in text

    def test_not_like(self):
        text = to_sql(parse_sql("SELECT a FROM t WHERE b NOT LIKE '%x%'"))
        assert "NOT LIKE" in text

    def test_is_not_null(self):
        text = to_sql(parse_sql("SELECT a FROM t WHERE b IS NOT NULL"))
        assert "IS NOT NULL" in text

    def test_scalar_subquery(self):
        text = to_sql(parse_sql("SELECT a FROM t WHERE a > (SELECT AVG(a) FROM t)"))
        assert "AVG(a)" in text

    def test_bool_literals(self):
        text = to_sql(parse_sql("SELECT a FROM t WHERE TRUE AND FALSE"))
        assert "TRUE" in text and "FALSE" in text

    def test_not_rendered(self):
        text = to_sql(parse_sql("SELECT a FROM t WHERE NOT (a = 1 AND b = 2)"))
        assert "NOT (" in text


class TestErrors:
    def test_unknown_expression_type(self):
        with pytest.raises(TypeError):
            to_sql(
                ast.Query(
                    body=ast.Select(
                        columns=(ast.OutputColumn(object()),),  # type: ignore
                        tables=(ast.TableRef("t"),),
                    )
                )
            )
