"""SQL parser: structure, precedence, subqueries, errors, round-trips."""

import pytest

from repro.sql import ast
from repro.sql.lexer import SqlSyntaxError
from repro.sql.parser import parse_condition, parse_sql
from repro.sql.printer import to_sql
from repro.tpch.queries import QUERIES


def body(sql):
    query = parse_sql(sql)
    assert isinstance(query.body, ast.Select)
    return query.body


class TestSelectStructure:
    def test_minimal(self):
        select = body("SELECT a FROM t")
        assert select.columns == (ast.OutputColumn(ast.ColumnRef("a")),)
        assert select.tables == (ast.TableRef("t"),)
        assert select.where is None
        assert not select.distinct

    def test_distinct_star_and_aliases(self):
        select = body("SELECT DISTINCT * FROM orders o, lineitem AS l")
        assert select.distinct
        assert isinstance(select.columns[0], ast.Star)
        assert select.tables == (
            ast.TableRef("orders", "o"),
            ast.TableRef("lineitem", "l"),
        )

    def test_output_aliases(self):
        select = body("SELECT a AS x, t.b y FROM t")
        assert select.columns[0].alias == "x"
        assert select.columns[1].alias == "y"
        assert select.columns[1].expr == ast.ColumnRef("b", "t")


class TestConditions:
    def test_precedence_or_under_and(self):
        cond = parse_condition("a = 1 AND b = 2 OR c = 3")
        assert isinstance(cond, ast.BoolOp) and cond.op == "or"

    def test_parentheses_group(self):
        cond = parse_condition("a = 1 AND (b = 2 OR c = 3)")
        assert isinstance(cond, ast.BoolOp) and cond.op == "and"
        assert isinstance(cond.items[1], ast.BoolOp) and cond.items[1].op == "or"

    def test_not(self):
        cond = parse_condition("NOT a = 1")
        assert isinstance(cond, ast.NotOp)

    def test_is_null_variants(self):
        assert parse_condition("a IS NULL") == ast.IsNull(ast.ColumnRef("a"))
        assert parse_condition("a IS NOT NULL") == ast.IsNull(
            ast.ColumnRef("a"), negated=True
        )

    def test_like_and_not_like(self):
        cond = parse_condition("p_name LIKE '%red%'")
        assert cond.op == "like"
        cond = parse_condition("p_name NOT LIKE '%red%'")
        assert cond.op == "not like"

    def test_concat_in_like_pattern(self):
        cond = parse_condition("p_name LIKE '%' || $color || '%'")
        assert isinstance(cond.right, ast.Concat)
        assert cond.right.parts[1] == ast.Param("color")

    def test_in_value_list(self):
        cond = parse_condition("a IN (1, 2, 3)")
        assert isinstance(cond, ast.InPredicate)
        assert len(cond.values) == 3

    def test_in_param(self):
        cond = parse_condition("a IN ($countries)")
        assert cond.values == (ast.Param("countries"),)

    def test_not_in_subquery(self):
        cond = parse_condition("a NOT IN (SELECT b FROM t)")
        assert isinstance(cond, ast.InPredicate)
        assert cond.negated and cond.query is not None

    def test_exists(self):
        cond = parse_condition("EXISTS (SELECT * FROM t)")
        assert isinstance(cond, ast.Exists) and not cond.negated

    def test_not_exists(self):
        cond = parse_condition("NOT EXISTS (SELECT * FROM t)")
        assert isinstance(cond, ast.Exists) and cond.negated

    def test_boolean_literals(self):
        assert parse_condition("TRUE") == ast.BoolLiteral(True)
        assert parse_condition("FALSE") == ast.BoolLiteral(False)

    def test_comparison_with_scalar_subquery(self):
        cond = parse_condition("c_acctbal > (SELECT AVG(c_acctbal) FROM customer)")
        assert isinstance(cond.right, ast.ScalarSubquery)


class TestSetOpsAndCtes:
    def test_union(self):
        query = parse_sql("SELECT a FROM t UNION SELECT b FROM u")
        assert isinstance(query.body, ast.SetOp)
        assert query.body.op == "union" and not query.body.all

    def test_union_all_and_chaining(self):
        query = parse_sql(
            "SELECT a FROM t UNION ALL SELECT b FROM u EXCEPT SELECT c FROM v"
        )
        assert query.body.op == "except"
        assert query.body.left.body.op == "union"
        assert query.body.left.body.all

    def test_with(self):
        query = parse_sql(
            "WITH v AS (SELECT a FROM t), w AS (SELECT b FROM u) SELECT * FROM v"
        )
        assert [name for name, _q in query.ctes] == ["v", "w"]

    def test_parenthesised_operand(self):
        query = parse_sql("(SELECT a FROM t) UNION (SELECT b FROM u)")
        assert query.body.op == "union"


class TestErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT",
            "SELECT a",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t WHERE a =",
            "SELECT a FROM t GROUP BY a",
            "SELECT a FROM t; extra",
            "SELECT (a) FROM t",
        ],
    )
    def test_rejects(self, sql):
        with pytest.raises(SqlSyntaxError):
            parse_sql(sql)

    def test_trailing_semicolon_accepted(self):
        parse_sql("SELECT a FROM t;")


class TestRoundTrips:
    @pytest.mark.parametrize("qid", sorted(QUERIES))
    def test_paper_queries_round_trip(self, qid):
        original_sql, appendix_sql, _ = QUERIES[qid]
        for sql in (original_sql, appendix_sql):
            first = parse_sql(sql)
            assert parse_sql(to_sql(first)) == first

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT DISTINCT a, b AS c FROM t u WHERE a IS NOT NULL",
            "SELECT a FROM t WHERE x NOT IN (1, 2) AND NOT (a = 1 OR b = 2)",
            "WITH v AS (SELECT a FROM t) SELECT a FROM v WHERE EXISTS "
            "(SELECT * FROM v u WHERE u.a = v.a)",
            "SELECT count(*) AS n FROM t",
            "SELECT a FROM t WHERE b > (SELECT MAX(b) FROM t) OR b IS NULL",
        ],
    )
    def test_misc_round_trips(self, sql):
        first = parse_sql(sql)
        assert parse_sql(to_sql(first)) == first
