"""Corollary 1: the translation of Figure 3 is a *family*.

Replacing the right-hand sides by queries contained in the (3.x) rules
and containing the (4.x) rules preserves Theorem 1.  We check two
instances the paper points at:

* strengthening ``θ*`` (adding extra const guards) keeps Q+ sound;
* weakening ``θ**`` / the unifiability test (the position-wise Codd
  shortcut) keeps Q+ sound — and can only shrink Q+.
"""

import random

import pytest

from repro.algebra import (
    Difference,
    RelationRef,
    Rename,
    Selection,
    UnifAntiJoin,
    evaluate,
    neq,
)
from repro.algebra.conditions import And, Attr, NullTest
from repro.certain import certain_answers_with_nulls
from repro.data import Database, Null, Relation
from repro.translate.conditions import translate_certain, translate_possible
from repro.translate.improved import certain_query

R, S = RelationRef("R"), RelationRef("S")
S_AS_R = Rename(S, {"C": "A", "D": "B"})


def random_db(rng, null_rate=0.35):
    null_budget = 3  # bounds brute-force valuation enumeration

    def cell():
        nonlocal null_budget
        if null_budget and rng.random() < null_rate:
            null_budget -= 1
            return Null()
        return rng.choice([1, 2])

    def rows(n):
        return [(cell(), cell()) for _ in range(n)]

    return Database(
        {
            "R": Relation(("A", "B"), rows(rng.randint(1, 3))),
            "S": Relation(("C", "D"), rows(rng.randint(1, 3))),
        }
    )


@pytest.mark.parametrize("seed", range(6))
def test_stronger_theta_star_stays_sound(seed):
    """σ_{θ* ∧ const(A)} ⊆ σ_{θ*}: a stronger certain side only shrinks
    Q+, which must remain inside cert(Q, D)."""
    db = random_db(random.Random(seed))
    query = Selection(R, neq("A", "B"))
    base_plus = certain_query(query)
    # Over-strengthened: additionally require const on both attributes
    # (redundant for ≠, and therefore contained in the rule's output).
    strengthened = Selection(
        R,
        And(
            translate_certain(neq("A", "B")),
            NullTest(Attr("A"), False),
            NullTest(Attr("B"), False),
        ),
    )
    got_base = set(evaluate(base_plus, db, semantics="naive").rows)
    got_strong = set(evaluate(strengthened, db, semantics="naive").rows)
    cert = set(certain_answers_with_nulls(query, db).rows)
    assert got_strong <= got_base <= cert


@pytest.mark.parametrize("seed", range(6))
def test_weaker_potential_side_stays_sound(seed):
    """Using a weaker (larger) Q? in rule (3.4) only removes more
    tuples from Q+ — still sound.  The Codd position-wise unifiability
    test is exactly such a weakening."""
    db = random_db(random.Random(100 + seed))
    query = Difference(R, Selection(S_AS_R, neq("A", 1)))
    cert = set(certain_answers_with_nulls(query, db).rows)

    exact_plus = certain_query(query)  # marked-null unification
    weak_plus = certain_query(query, codd=True)  # position-wise shortcut
    got_exact = set(evaluate(exact_plus, db, semantics="naive").rows)
    got_weak = set(evaluate(weak_plus, db, semantics="naive").rows)
    assert got_weak <= got_exact <= cert


@pytest.mark.parametrize("seed", range(6))
def test_weakest_possible_side_adom_is_still_sound(seed):
    """The degenerate potential-answer query (everything unifies) makes
    Q+ of a difference empty — trivially sound, maximally incomplete."""
    db = random_db(random.Random(200 + seed))
    query = Difference(R, S_AS_R)
    plus_with_everything = UnifAntiJoin(
        R, Rename(S, {"C": "A", "D": "B"})
    )  # Q?2 = S itself (the rule's output)…
    # …and the truly degenerate version: subtract a relation containing
    # a fully-null tuple, which unifies with every candidate.
    db2 = Database(
        {
            "R": db["R"],
            "S": Relation(("C", "D"), list(db["S"].rows) + [(Null(), Null())]),
        }
    )
    got = set(evaluate(plus_with_everything, db2, semantics="naive").rows)
    assert got == set()  # everything unifies with (⊥,⊥)
    cert = set(certain_answers_with_nulls(query, db2).rows)
    assert got <= cert


@pytest.mark.parametrize("seed", range(4))
def test_theta_star_star_weakening_monotone(seed):
    """θ** is weaker than θ*, pointwise, on every row — the containment
    Corollary 1 relies on."""
    from repro.algebra.conditions import eval_naive

    rng = random.Random(300 + seed)
    cells = [1, 2, Null("x"), Null("y")]
    for cond in (neq("A", "B"), neq("A", 1)):
        star = translate_certain(cond)
        star2 = translate_possible(cond)
        for _ in range(20):
            row = {"A": rng.choice(cells), "B": rng.choice(cells)}
            if eval_naive(star, row):
                assert eval_naive(star2, row)
