"""Facts 1 and 2 (Section 2), machine-checked.

* **Fact 1** — naive evaluation computes *exactly* certain answers with
  nulls for positive relational algebra (no difference, no
  disequalities), and this extends to division when the divisor is a
  base relation.
* **Fact 2** — ``EvalSQL`` (3VL evaluation) has correctness guarantees
  for the positive fragment: it may miss certain answers but never
  returns a false positive.
"""

import random

import pytest

from repro.algebra import (
    Division,
    Intersection,
    Join,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    Union,
    eq,
    evaluate,
)
from repro.certain import certain_answers_with_nulls
from repro.data import Database, Null, Relation

R, S = RelationRef("R"), RelationRef("S")
S_AS_R = Rename(S, {"C": "A", "D": "B"})

#: Positive algebra: σ (equalities only), π, ×, ∪, ∩ — no −, no ≠.
POSITIVE_QUERIES = {
    "base": R,
    "selection-eq-const": Selection(R, eq("A", 1)),
    "selection-eq-attr": Selection(R, eq("A", "B")),
    "projection": Projection(R, ("B",)),
    "union": Union(R, S_AS_R),
    "intersection": Intersection(R, S_AS_R),
    "join": Projection(Join(R, S, eq("B", "C")), ("A", "D")),
    "product-projection": Projection(Product(R, S), ("A", "C")),
    "nested": Projection(
        Selection(Union(R, S_AS_R), eq("A", 2)), ("A",)
    ),
}


def random_db(rng, null_rate=0.3):
    null_budget = 3  # bounds brute-force valuation enumeration

    def cell():
        nonlocal null_budget
        if null_budget and rng.random() < null_rate:
            null_budget -= 1
            return Null()
        return rng.choice([1, 2, 3])

    def rows(n):
        return [(cell(), cell()) for _ in range(n)]

    return Database(
        {
            "R": Relation(("A", "B"), rows(rng.randint(1, 3))),
            "S": Relation(("C", "D"), rows(rng.randint(1, 3))),
        }
    )


@pytest.mark.parametrize("name", sorted(POSITIVE_QUERIES))
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_fact1_naive_computes_certain_answers_exactly(name, seed):
    query = POSITIVE_QUERIES[name]
    db = random_db(random.Random(hash((name, seed)) & 0xFFFF))
    naive = evaluate(query, db, semantics="naive")
    cert = certain_answers_with_nulls(query, db)
    assert set(naive.rows) == set(cert.rows), name


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_fact1_division_with_base_divisor(seed):
    """Fact 1's extension: division whose second argument is a database
    relation."""
    rng = random.Random(seed)
    students = ["ann", "bob", "cal"]
    courses = ["db", "os"]
    takes_rows = []
    for student in students:
        for course in courses:
            if rng.random() < 0.7:
                takes_rows.append(
                    (student, Null() if rng.random() < 0.25 else course)
                )
    db = Database(
        {
            "takes": Relation(("st", "co"), takes_rows),
            "courses": Relation(("co",), [(c,) for c in courses]),
        }
    )
    query = Division(RelationRef("takes"), RelationRef("courses"))
    naive = evaluate(query, db, semantics="naive")
    cert = certain_answers_with_nulls(query, db)
    assert set(naive.rows) == set(cert.rows)


@pytest.mark.parametrize("name", sorted(POSITIVE_QUERIES))
@pytest.mark.parametrize("seed", [10, 11, 12])
def test_fact2_sql_evaluation_sound_on_positive_fragment(name, seed):
    query = POSITIVE_QUERIES[name]
    db = random_db(random.Random(hash((name, seed)) & 0xFFFF))
    sql = evaluate(query, db, semantics="sql")
    cert = certain_answers_with_nulls(query, db)
    assert set(sql.rows) <= set(cert.rows), name


def test_fact2_can_be_strict():
    """SQL evaluation may *miss* certain answers on the positive
    fragment (it is an under-approximation, not an equality): the
    same-null equality is certain but unknown to 3VL."""
    n = Null()
    db = Database({"R": Relation(("A", "B"), [(n, n)])})
    query = Selection(RelationRef("R"), eq("A", "B"))
    assert evaluate(query, db, semantics="sql").rows == []
    assert evaluate(query, db, semantics="naive").rows == [(n, n)]
    assert certain_answers_with_nulls(query, db).rows == [(n, n)]


def test_fact1_fails_with_difference():
    """Sanity: the restriction to the *positive* fragment is necessary —
    naive evaluation over-approximates certain answers for difference
    (the introduction's false positive)."""
    db = Database(
        {
            "R": Relation(("A",), [(1,)]),
            "S": Relation(("A",), [(Null(),)]),
        }
    )
    from repro.algebra import Difference

    query = Difference(RelationRef("R"), RelationRef("S"))
    naive = evaluate(query, db, semantics="naive")
    cert = certain_answers_with_nulls(query, db)
    assert set(naive.rows) > set(cert.rows)
