"""Post-translation simplification: Boolean cleanup and the key rule."""

import pytest

from repro.algebra import (
    Difference,
    Intersection,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    Union,
    UnifAntiJoin,
    eq,
    evaluate,
    neq,
)
from repro.algebra.conditions import And, FalseCond, Not, Or, TrueCond
from repro.data import Database, Null, Relation
from repro.data.schema import DatabaseSchema, make_schema
from repro.translate.simplify import (
    key_antijoin_to_difference,
    simplify,
    simplify_condition,
)

R = RelationRef("R")
S = RelationRef("S")


@pytest.fixture
def keyed_schema():
    schema = DatabaseSchema()
    schema.add(make_schema("R", [("A", "int"), ("B", "int")], key=["A"]))
    schema.add(make_schema("NoKey", [("A", "int"), ("B", "int")]))
    return schema


class TestConditionCleanup:
    def test_drop_true_from_and(self):
        assert simplify_condition(And(eq("A", 1), TrueCond())) == eq("A", 1)

    def test_false_collapses_and(self):
        assert simplify_condition(And(eq("A", 1), FalseCond())) == FalseCond()

    def test_drop_false_from_or(self):
        assert simplify_condition(Or(eq("A", 1), FalseCond())) == eq("A", 1)

    def test_true_collapses_or(self):
        assert simplify_condition(Or(eq("A", 1), TrueCond())) == TrueCond()

    def test_deduplication(self):
        cond = Or(eq("A", 1), eq("A", 1), eq("B", 2))
        assert simplify_condition(cond) == Or(eq("A", 1), eq("B", 2))

    def test_empty_and_is_true(self):
        assert simplify_condition(And(TrueCond(), TrueCond())) == TrueCond()

    def test_not_is_pushed(self):
        assert simplify_condition(Not(eq("A", 1))) == neq("A", 1)


class TestKeyRule:
    def test_applies_to_selection_subset(self, keyed_schema):
        expr = UnifAntiJoin(R, Selection(R, eq("A", 1)))
        out = key_antijoin_to_difference(expr, keyed_schema)
        assert isinstance(out, Difference)

    def test_applies_to_projection_of_join(self, keyed_schema):
        # π_{A,B}(σθ(S' × R)) ⊆ R — the Q3 pattern.
        inner = Projection(
            Selection(Product(Rename(S, {"A": "X", "B": "Y"}), R), eq("X", "A")),
            ("A", "B"),
        )
        expr = UnifAntiJoin(R, inner)
        out = key_antijoin_to_difference(expr, keyed_schema)
        assert isinstance(out, Difference)

    def test_requires_key(self, keyed_schema):
        expr = UnifAntiJoin(
            RelationRef("NoKey"), Selection(RelationRef("NoKey"), eq("A", 1))
        )
        assert key_antijoin_to_difference(expr, keyed_schema) is None

    def test_requires_containment(self, keyed_schema):
        expr = UnifAntiJoin(R, Rename(S, {}))
        assert key_antijoin_to_difference(expr, keyed_schema) is None

    def test_projection_onto_other_attributes_not_contained(self, keyed_schema):
        inner = Projection(Product(R, Rename(S, {"A": "X", "B": "Y"})), ("X", "Y"))
        expr = UnifAntiJoin(R, inner)
        assert key_antijoin_to_difference(expr, keyed_schema) is None

    def test_union_requires_both_sides(self, keyed_schema):
        contained = Selection(R, eq("A", 1))
        foreign = Rename(S, {})
        assert (
            key_antijoin_to_difference(UnifAntiJoin(R, Union(contained, foreign)), keyed_schema)
            is None
        )
        out = key_antijoin_to_difference(
            UnifAntiJoin(R, Union(contained, Selection(R, eq("A", 2)))), keyed_schema
        )
        assert isinstance(out, Difference)

    def test_semantics_preserved(self, keyed_schema):
        """R ▷⇑ S = R − S under the key rule's side conditions."""
        n = Null()
        db = Database(
            {
                "R": Relation(("A", "B"), [(1, 2), (2, n), (3, 4)]),
                "S": Relation(("A", "B"), []),
            }
        )
        subset = Selection(R, eq("A", 1))
        anti = UnifAntiJoin(R, subset)
        diff = key_antijoin_to_difference(anti, keyed_schema)
        assert evaluate(anti, db) == evaluate(diff, db)


class TestWholeExpressionSimplify:
    def test_selection_with_true_condition_removed(self, keyed_schema):
        expr = Selection(R, And(TrueCond(), TrueCond()))
        assert simplify(expr, keyed_schema) == R

    def test_key_rule_applied_recursively(self, keyed_schema):
        expr = Projection(
            UnifAntiJoin(R, Selection(R, And(eq("A", 1), TrueCond()))), ("A",)
        )
        out = simplify(expr, keyed_schema)
        assert isinstance(out.child, Difference)

    def test_intersection_untouched(self, keyed_schema):
        expr = Intersection(R, R)
        assert simplify(expr, keyed_schema) == expr
