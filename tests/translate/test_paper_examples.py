"""Every worked example in the paper, as a regression test."""

from repro.algebra import (
    Difference,
    Intersection,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    eq,
    evaluate,
)
from repro.certain import certain_answers_with_nulls
from repro.data import Database, Null, Relation
from repro.translate import translate_improved


class TestIntroductionExample:
    """R = {1}, S = {NULL}: SQL says {1}, certain answers say ∅."""

    def query(self):
        return Difference(RelationRef("R"), Rename(RelationRef("S"), {}))

    def test_sql_returns_false_positive(self, intro_db):
        q = Difference(RelationRef("R"), RelationRef("S"))
        assert evaluate(q, intro_db, semantics="sql").rows == [(1,)]

    def test_certain_answers_empty(self, intro_db):
        q = Difference(RelationRef("R"), RelationRef("S"))
        assert certain_answers_with_nulls(q, intro_db).rows == []

    def test_q_plus_returns_nothing(self, intro_db):
        q = Difference(RelationRef("R"), RelationRef("S"))
        plus, _ = translate_improved(q)
        assert evaluate(plus, intro_db, semantics="naive").rows == []

    def test_interpretation_as_one_falsifies(self, intro_db):
        """If the null is interpreted as 1, R − S is empty."""
        from repro.data.valuation import Valuation

        (the_null,) = intro_db.nulls()
        world = Valuation({the_null: 1}).apply_database(intro_db)
        q = Difference(RelationRef("R"), RelationRef("S"))
        assert evaluate(q, world).rows == []


class TestSection6D1:
    """D1: Q+ misses a certain answer that SQL evaluation returns."""

    def setup_method(self):
        self.n1, self.n2 = Null(), Null()
        self.db = Database(
            {
                "R": Relation(("A", "B"), [(1, 2), (2, self.n1)]),
                "S": Relation(("A", "B"), [(1, 2), (self.n2, 2)]),
                "T": Relation(("A", "B"), [(1, 2)]),
            }
        )
        self.query = Difference(
            RelationRef("R"), Intersection(RelationRef("S"), RelationRef("T"))
        )

    def test_sql_returns_the_certain_tuple(self):
        sql = evaluate(self.query, self.db, semantics="sql")
        assert (2, self.n1) in sql.rows

    def test_tuple_is_certain(self):
        cert = certain_answers_with_nulls(self.query, self.db)
        assert (2, self.n1) in cert.rows

    def test_q_plus_misses_it(self):
        plus, _ = translate_improved(self.query)
        got = evaluate(plus, self.db, semantics="naive")
        assert got.rows == []


class TestSection6D2:
    """D2: Q+ proves certain a tuple SQL evaluation cannot return."""

    def setup_method(self):
        self.n = Null("same")
        self.db = Database({"R": Relation(("A", "B"), [(self.n, self.n)])})
        self.query = Selection(RelationRef("R"), eq("A", "B"))

    def test_sql_returns_nothing(self):
        assert evaluate(self.query, self.db, semantics="sql").rows == []

    def test_q_plus_returns_the_tuple(self):
        plus, _ = translate_improved(self.query)  # marked-null translation
        got = evaluate(plus, self.db, semantics="naive")
        assert got.rows == [(self.n, self.n)]

    def test_tuple_is_indeed_certain(self):
        cert = certain_answers_with_nulls(self.query, self.db)
        assert (self.n, self.n) in cert.rows

    def test_sql_adjusted_translation_stays_sound_but_incomplete(self):
        plus, _ = translate_improved(self.query, sql_adjusted=True)
        got = evaluate(plus, self.db, semantics="sql")
        assert got.rows == []  # SQL nulls cannot see the equality


class TestSection7SelfJoin:
    """SELECT R1.A FROM R R1, R R2 WHERE R1.A = R2.A on R = {NULL}."""

    def setup_method(self):
        self.n = Null()
        self.db = Database({"R": Relation(("A",), [(self.n,)])})
        self.query = Projection(
            Selection(
                Product(RelationRef("R"), Rename(RelationRef("R"), {"A": "A2"})),
                eq("A", "A2"),
            ),
            ("A",),
        )

    def test_codd_evaluation_keeps_the_null(self):
        assert evaluate(self.query, self.db, semantics="naive").rows == [(self.n,)]

    def test_sql_evaluation_loses_it(self):
        assert evaluate(self.query, self.db, semantics="sql").rows == []


class TestSection2CertainWithNulls:
    """R = {(1,⊥), (2,3)}: certain answers with nulls keep both tuples."""

    def test_both_tuples_certain(self):
        n = Null()
        db = Database({"R": Relation(("A", "B"), [(1, n), (2, 3)])})
        cert = certain_answers_with_nulls(RelationRef("R"), db)
        assert set(cert.rows) == {(1, n), (2, 3)}
