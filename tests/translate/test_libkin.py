"""The Figure 2 translation: soundness and its Section 5 blow-up."""

import random

import pytest

from repro.algebra import (
    AdomPower,
    Difference,
    EvaluationBudgetExceeded,
    Intersection,
    Projection,
    Product,
    RelationRef,
    Rename,
    Selection,
    UnifAntiJoin,
    Union,
    eq,
    evaluate,
    neq,
)
from repro.algebra.evaluate import Evaluator
from repro.certain import certain_answers_with_nulls
from repro.data import Database, Null, Relation
from repro.translate import translate_libkin
from repro.experiments.infeasible import make_rst_database, section6_example_query

R, S = RelationRef("R"), RelationRef("S")
S_AS_R = Rename(S, {"C": "A", "D": "B"})

QUERIES = [
    Difference(R, S_AS_R),
    Selection(R, neq("A", "B")),
    Projection(Difference(R, S_AS_R), ("A",)),
    Intersection(R, S_AS_R),
    Union(R, S_AS_R),
    Difference(R, Selection(S_AS_R, eq("A", 1))),
]


def random_db(rng, null_rate=0.3):
    null_budget = 3  # keeps valuation enumeration small

    def cell():
        nonlocal null_budget
        if null_budget and rng.random() < null_rate:
            null_budget -= 1
            return Null()
        return rng.choice([1, 2])

    def rows(n):
        return [(cell(), cell()) for _ in range(n)]

    return Database(
        {
            "R": Relation(("A", "B"), rows(rng.randint(1, 2))),
            "S": Relation(("C", "D"), rows(rng.randint(1, 2))),
        }
    )


@pytest.mark.parametrize("qi", range(len(QUERIES)))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_qt_has_correctness_guarantees(qi, seed):
    """(1): Qt(D) ⊆ cert(Q, D)."""
    query = QUERIES[qi]
    db = random_db(random.Random(qi * 100 + seed))
    qt, _qf = translate_libkin(query, db)
    got = evaluate(qt, db, semantics="naive", max_rows=500_000)
    cert = certain_answers_with_nulls(query, db)
    assert set(got.rows) <= set(cert.rows)


@pytest.mark.parametrize("qi", range(len(QUERIES)))
@pytest.mark.parametrize("seed", [5, 6])
def test_qf_certainly_false(qi, seed):
    """(2): every tuple of Qf(D) is excluded from Q in every world."""
    query = QUERIES[qi]
    db = random_db(random.Random(qi * 100 + seed))
    _qt, qf = translate_libkin(query, db)
    got = evaluate(qf, db, semantics="naive", max_rows=500_000)
    from repro.data.valuation import enumerate_valuations

    for valuation in enumerate_valuations(db):
        world = valuation.apply_database(db)
        answers = set(evaluate(query, world, semantics="naive").rows)
        for row in got.rows:
            assert valuation.apply_row(row) not in answers


class TestStructure:
    def test_base_relation_false_side_uses_adom(self):
        _qt, qf = translate_libkin(R, {"R": ("A", "B")})
        assert isinstance(qf, UnifAntiJoin)
        assert isinstance(qf.left, AdomPower)

    def test_difference_true_side_needs_false_side(self):
        qt, _qf = translate_libkin(Difference(R, S_AS_R), {"R": ("A", "B"), "S": ("C", "D")})
        assert isinstance(qt, Intersection)

    def test_product_false_side_pads_with_adom(self):
        query = Product(R, S)
        _qt, qf = translate_libkin(query, {"R": ("A", "B"), "S": ("C", "D")})
        assert isinstance(qf, Union)
        assert any(isinstance(part, AdomPower) for part in (qf.left.right, qf.right.left))

    def test_unsupported_node_rejected(self):
        from repro.algebra import SemiJoin

        with pytest.raises(TypeError, match="normalise"):
            translate_libkin(SemiJoin(R, S, eq("A", "C")), {"R": ("A", "B"), "S": ("C", "D")})


class TestSection5Blowup:
    def test_qt_exceeds_budget_on_moderate_instances(self):
        """The Section 6 example's Qt explodes where Q+ stays tiny."""
        db = make_rst_database(60, null_rate=0.1, seed=1)
        query = section6_example_query()
        qt, _ = translate_libkin(query, db)
        with pytest.raises(EvaluationBudgetExceeded):
            evaluate(qt, db, semantics="naive", max_rows=30_000)

    def test_q_plus_stays_within_budget_on_same_instance(self):
        from repro.translate.improved import certain_query

        db = make_rst_database(60, null_rate=0.1, seed=1)
        query = section6_example_query()
        plus = certain_query(query)
        evaluator = Evaluator(db, semantics="naive", max_rows=30_000)
        evaluator.evaluate(plus)
        assert evaluator.rows_produced < 2_000

    def test_blowup_grows_with_instance_size(self):
        query = section6_example_query()
        produced = []
        for n in (5, 10, 20):
            db = make_rst_database(n, null_rate=0.1, seed=2)
            qt, _ = translate_libkin(query, db)
            evaluator = Evaluator(db, semantics="naive")
            evaluator.evaluate(qt)
            produced.append(evaluator.rows_produced)
        assert produced[0] < produced[1] < produced[2]
        # Superlinear growth (the adom² factor).
        assert produced[2] > 4 * produced[1]
