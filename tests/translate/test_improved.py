"""Theorem 1, machine-checked: ``Q+ ⊆ cert(Q, D)`` and ``Q?`` represents
potential answers, against brute-force ground truth on random databases.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra import (
    AntiJoin,
    Difference,
    Division,
    Intersection,
    Join,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    SemiJoin,
    Union,
    UnifAntiJoin,
    UnifSemiJoin,
    eq,
    evaluate,
    neq,
)
from repro.certain import (
    certain_answers_with_nulls,
    represents_potential_answers,
)
from repro.data import Database, Null, Relation
from repro.translate import translate_improved
from repro.translate.improved import certain_query, possible_query

# ---------------------------------------------------------------------------
# A menu of query shapes over R(A, B) and S(C, D)
# ---------------------------------------------------------------------------

R, S = RelationRef("R"), RelationRef("S")
S_AS_R = Rename(S, {"C": "A", "D": "B"})

QUERY_MENU = {
    "difference": Difference(R, S_AS_R),
    "difference-of-selection": Difference(R, Selection(S_AS_R, eq("A", 1))),
    "selection-neq": Selection(R, neq("A", "B")),
    "selection-of-difference": Selection(Difference(R, S_AS_R), eq("A", 1)),
    "projection-of-difference": Projection(Difference(R, S_AS_R), ("A",)),
    "intersection": Intersection(R, S_AS_R),
    "union-of-diff-and-intersection": Union(
        Difference(R, S_AS_R), Intersection(R, S_AS_R)
    ),
    "nested-difference": Difference(R, Difference(S_AS_R, Selection(R, eq("A", 2)))),
    "join": Projection(Join(R, S, eq("B", "C")), ("A", "D")),
    "product-selection": Projection(
        Selection(Product(R, S), eq("A", "C")), ("A", "B")
    ),
    "semijoin": SemiJoin(R, S, eq("B", "C")),
    "antijoin": AntiJoin(R, S, eq("B", "C")),
    "antijoin-neq": AntiJoin(R, S, neq("A", "C")),
    "difference-under-projection": Difference(
        Projection(R, ("A",)), Projection(S, ("C",))
    ),
}


def random_db(rng: random.Random, null_rate: float = 0.35) -> Database:
    # Brute-force ground truth enumerates |domain|^nulls valuations, so
    # cap the number of nulls per database to keep tests fast.
    null_budget = 3

    def cell():
        nonlocal null_budget
        if null_budget and rng.random() < null_rate:
            null_budget -= 1
            return Null()
        return rng.choice([1, 2, 3])

    def rows(n):
        return [(cell(), cell()) for _ in range(n)]

    return Database(
        {
            "R": Relation(("A", "B"), rows(rng.randint(1, 3))),
            "S": Relation(("C", "D"), rows(rng.randint(1, 3))),
        }
    )


@pytest.mark.parametrize("name", sorted(QUERY_MENU))
@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_theorem1_correctness_guarantees(name, seed):
    """Q+(D) ⊆ cert(Q, D) — no false positives, ever."""
    query = QUERY_MENU[name]
    rng = random.Random(hash((name, seed)) & 0xFFFF)
    db = random_db(rng)
    plus, _poss = translate_improved(query)
    got = evaluate(plus, db, semantics="naive")
    cert = certain_answers_with_nulls(query, db)
    assert set(got.rows) <= set(cert.rows), (
        f"false positives from Q+ on {name}: {set(got.rows) - set(cert.rows)}"
    )


@pytest.mark.parametrize("name", sorted(QUERY_MENU))
@pytest.mark.parametrize("seed", [10, 11, 12])
def test_theorem1_potential_answers(name, seed):
    """Q?(D) represents potential answers (Definition 3)."""
    query = QUERY_MENU[name]
    rng = random.Random(hash((name, seed)) & 0xFFFF)
    db = random_db(rng)
    _plus, poss = translate_improved(query)
    got = evaluate(poss, db, semantics="naive")
    assert represents_potential_answers(got, query, db)


@pytest.mark.parametrize("name", sorted(QUERY_MENU))
def test_identity_on_complete_databases(name):
    """On null-free databases Q, Q+ and Q? all coincide (Section 1)."""
    query = QUERY_MENU[name]
    rng = random.Random(hash(name) & 0xFFFF)
    db = random_db(rng, null_rate=0.0)
    plus, poss = translate_improved(query)
    original = evaluate(query, db, semantics="naive")
    assert evaluate(plus, db, semantics="naive") == original
    assert evaluate(poss, db, semantics="naive") == original


@pytest.mark.parametrize("name", sorted(QUERY_MENU))
@pytest.mark.parametrize("seed", [20, 21])
def test_sql_adjusted_sound_under_3vl(name, seed):
    """The Section 7 adjustment keeps Q+ sound when conditions are
    evaluated with SQL's three-valued logic."""
    query = QUERY_MENU[name]
    rng = random.Random(hash((name, seed)) & 0xFFFF)
    db = random_db(rng)
    plus, _ = translate_improved(query, sql_adjusted=True)
    got = evaluate(plus, db, semantics="sql")
    cert = certain_answers_with_nulls(query, db)
    assert set(got.rows) <= set(cert.rows)


@pytest.mark.parametrize("name", sorted(QUERY_MENU))
@pytest.mark.parametrize("seed", [30, 31])
def test_codd_shortcut_sound(name, seed):
    """Corollary 1: the position-wise unifiability test keeps Q+ sound."""
    query = QUERY_MENU[name]
    rng = random.Random(hash((name, seed)) & 0xFFFF)
    db = random_db(rng)
    plus, _ = translate_improved(query, codd=True)
    got = evaluate(plus, db, semantics="naive")
    cert = certain_answers_with_nulls(query, db)
    assert set(got.rows) <= set(cert.rows)


@given(seed=st.integers(0, 2**16))
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_theorem1_fuzzed_difference(seed):
    """Hypothesis sweep of the crucial rule (3.4) on random databases."""
    rng = random.Random(seed)
    db = random_db(rng)
    query = QUERY_MENU["nested-difference"]
    plus, poss = translate_improved(query)
    got_plus = evaluate(plus, db, semantics="naive")
    cert = certain_answers_with_nulls(query, db)
    assert set(got_plus.rows) <= set(cert.rows)
    got_poss = evaluate(poss, db, semantics="naive")
    assert represents_potential_answers(got_poss, query, db)


# ---------------------------------------------------------------------------
# Structural expectations
# ---------------------------------------------------------------------------


class TestTranslationShape:
    def test_difference_becomes_unification_antijoin(self):
        plus = certain_query(Difference(R, S_AS_R))
        assert isinstance(plus, UnifAntiJoin)

    def test_intersection_possible_becomes_unification_semijoin(self):
        poss = possible_query(Intersection(R, S_AS_R))
        assert isinstance(poss, UnifSemiJoin)

    def test_base_relations_unchanged(self):
        assert certain_query(R) is R
        assert possible_query(R) is R

    def test_section6_example_shape(self):
        """Q = R − (π(T) − σθ(S)): Q+ = R ▷⇑ (π(T) − σθ*(S)) — the paper's
        own illustration of why Figure 3 beats Figure 2."""
        T = Rename(S, {"C": "A", "D": "B"})
        query = Difference(R, Difference(Projection(T, ("A", "B")), Selection(S_AS_R, eq("A", 1))))
        plus = certain_query(query)
        assert isinstance(plus, UnifAntiJoin)
        inner = plus.right
        assert isinstance(inner, Difference)  # (4.4): Q?1 − Q+2

    def test_division_certain_side(self):
        courses = Projection(R, ("B",))
        query = Division(R, courses)
        plus = certain_query(query)
        assert isinstance(plus, Division)

    def test_division_possible_side_rejected(self):
        courses = Projection(R, ("B",))
        with pytest.raises(TypeError, match="division"):
            possible_query(Division(R, courses))


def test_division_certain_is_sound():
    n = Null()
    db = Database(
        {
            "takes": Relation(("st", "co"), [("ann", "db"), ("ann", n), ("bob", "db")]),
            "courses": Relation(("co",), [("db",), ("os",)]),
        }
    )
    query = Division(RelationRef("takes"), RelationRef("courses"))
    plus = certain_query(query)
    got = evaluate(plus, db, semantics="naive")
    cert = certain_answers_with_nulls(query, db)
    assert set(got.rows) <= set(cert.rows)
