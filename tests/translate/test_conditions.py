"""θ* and θ** condition translations, theoretical and SQL-adjusted.

The central soundness properties are checked by exhaustive enumeration
over small valuation domains:

* θ* true (naive) on a tuple  ⇒  θ true under *every* valuation;
* θ true under *some* valuation  ⇒  θ** true (naive);
* the SQL-adjusted variants satisfy the same with 3VL evaluation.
"""

import itertools

from hypothesis import given, strategies as st

from repro.algebra.conditions import (
    And,
    Attr,
    Comparison,
    Const,
    FalseCond,
    Not,
    NullTest,
    Or,
    TrueCond,
    eq,
    eval_3vl,
    eval_naive,
    neq,
)
from repro.data.nulls import Null, is_null
from repro.translate.conditions import translate_certain, translate_possible


class TestStarForms:
    def test_equality_unchanged_in_theory(self):
        assert translate_certain(eq("A", "B")) == eq("A", "B")

    def test_equality_guarded_when_sql_adjusted(self):
        out = translate_certain(eq("A", "B"), sql_adjusted=True)
        assert out == And(
            eq("A", "B"),
            NullTest(Attr("A"), False),
            NullTest(Attr("B"), False),
        )

    def test_disequality_guarded_always(self):
        expected = And(
            neq("A", "B"),
            NullTest(Attr("A"), False),
            NullTest(Attr("B"), False),
        )
        assert translate_certain(neq("A", "B")) == expected
        assert translate_certain(neq("A", "B"), sql_adjusted=True) == expected

    def test_constant_comparisons_guard_only_attributes(self):
        out = translate_certain(neq("A", 5))
        assert out == And(neq("A", 5), NullTest(Attr("A"), False))

    def test_order_ops_treated_like_disequality(self):
        cmp = Comparison("<", Attr("A"), Attr("B"))
        out = translate_certain(cmp)
        assert isinstance(out, And) and cmp in out.items

    def test_null_test_collapses(self):
        assert translate_certain(NullTest(Attr("A"), True)) == FalseCond()
        assert translate_certain(NullTest(Attr("A"), False)) == TrueCond()

    def test_negation_is_pushed_first(self):
        out = translate_certain(Not(eq("A", "B")))
        assert out == translate_certain(neq("A", "B"))


class TestStarStarForms:
    def test_equality_gains_null_escapes(self):
        out = translate_possible(eq("A", "B"))
        assert out == Or(
            eq("A", "B"),
            NullTest(Attr("A"), True),
            NullTest(Attr("B"), True),
        )

    def test_disequality_unchanged_in_theory(self):
        assert translate_possible(neq("A", "B")) == neq("A", "B")

    def test_disequality_escaped_when_sql_adjusted(self):
        out = translate_possible(neq("A", "B"), sql_adjusted=True)
        assert out == Or(
            neq("A", "B"),
            NullTest(Attr("A"), True),
            NullTest(Attr("B"), True),
        )

    def test_like_gains_escape(self):
        cmp = Comparison("like", Attr("A"), Const("%red%"))
        out = translate_possible(cmp)
        assert out == Or(cmp, NullTest(Attr("A"), True))

    def test_null_test_collapses(self):
        assert translate_possible(NullTest(Attr("A"), True)) == FalseCond()
        assert translate_possible(NullTest(Attr("A"), False)) == TrueCond()

    def test_structure_is_homomorphic(self):
        cond = And(eq("A", 1), Or(neq("B", 2), eq("A", "B")))
        out = translate_possible(cond)
        assert isinstance(out, And)


# ---------------------------------------------------------------------------
# Semantic soundness by enumeration
# ---------------------------------------------------------------------------

N1, N2 = Null("n1"), Null("n2")
CELLS = [1, 2, N1, N2]
DOMAIN = [1, 2, 3]


def _valuations(row):
    nulls = sorted({v for v in row.values() if is_null(v)}, key=lambda n: repr(n))
    for combo in itertools.product(DOMAIN, repeat=len(nulls)):
        mapping = dict(zip(nulls, combo))
        yield {k: (mapping[v] if is_null(v) else v) for k, v in row.items()}


@st.composite
def flat_conditions(draw):
    atoms = []
    for _ in range(draw(st.integers(1, 3))):
        op = draw(st.sampled_from(["=", "<>", "<", ">="]))
        left = Attr(draw(st.sampled_from(["A", "B"])))
        right = draw(st.sampled_from([Attr("A"), Attr("B"), Const(1), Const(2)]))
        atoms.append(Comparison(op, left, right))
    if draw(st.booleans()):
        return And(*atoms)
    return Or(*atoms)


rows = st.fixed_dictionaries(
    {"A": st.sampled_from(CELLS), "B": st.sampled_from(CELLS)}
)


@given(cond=flat_conditions(), row=rows)
def test_star_implies_all_valuations(cond, row):
    for sql_adjusted in (False, True):
        star = translate_certain(cond, sql_adjusted)
        holds = (
            bool(eval_3vl(star, row)) if sql_adjusted else eval_naive(star, row)
        )
        if holds:
            assert all(eval_naive(cond, world) for world in _valuations(row))


@given(cond=flat_conditions(), row=rows)
def test_some_valuation_implies_star_star(cond, row):
    for sql_adjusted in (False, True):
        star2 = translate_possible(cond, sql_adjusted)
        possible = any(eval_naive(cond, world) for world in _valuations(row))
        if possible:
            if sql_adjusted:
                assert bool(eval_3vl(star2, row))
            else:
                assert eval_naive(star2, row)


@given(cond=flat_conditions(), row=st.fixed_dictionaries(
    {"A": st.sampled_from([1, 2]), "B": st.sampled_from([1, 2])}
))
def test_translations_are_identity_on_complete_rows(cond, row):
    for sql_adjusted in (False, True):
        assert eval_naive(translate_certain(cond, sql_adjusted), row) == eval_naive(cond, row)
        assert eval_naive(translate_possible(cond, sql_adjusted), row) == eval_naive(cond, row)
