"""Tuple unification (Definition 2): cases and laws."""

from hypothesis import given, strategies as st

from repro.algebra.unify import positionwise_unifiable, unifiable, unify_rows
from repro.data.nulls import Null
from repro.data.valuation import Valuation


class TestCases:
    def test_constants(self):
        assert unifiable((1, 2), (1, 2))
        assert not unifiable((1, 2), (1, 3))

    def test_nulls_unify_with_anything_positionally(self):
        assert unifiable((Null(), 2), (1, 2))
        assert unifiable((1, Null()), (1, Null()))

    def test_repeated_null_consistency(self):
        x = Null("x")
        assert not unifiable((x, x), (1, 2))    # x cannot be both 1 and 2
        assert unifiable((x, x), (1, 1))
        assert unifiable((x, x), (1, Null()))   # fresh null takes value 1

    def test_transitive_constant_clash(self):
        # x ~ 1 (pos 0), x ~ y (pos 1), y ~ 2 (pos 2) → 1 = 2 clash.
        x, y = Null("x"), Null("y")
        assert not unifiable((x, x, y), (1, y, 2))
        assert unifiable((x, x, y), (1, y, 1))

    def test_arity_mismatch(self):
        assert not unifiable((1,), (1, 2))

    def test_empty_tuples_unify(self):
        assert unifiable((), ())


class TestUnifier:
    def test_unifier_witnesses(self):
        x = Null("x")
        mapping = unify_rows((x, 2), (1, 2))
        assert mapping == {x: 1}

    def test_unifier_none_when_not_unifiable(self):
        assert unify_rows((1,), (2,)) is None

    def test_null_null_classes_get_representative(self):
        x, y = Null("x"), Null("y")
        mapping = unify_rows((x,), (y,))
        assert mapping is not None
        assert mapping[x] == mapping[y]


class TestPositionwise:
    def test_codd_shortcut_agrees_without_repetition(self):
        assert positionwise_unifiable((Null(), 2), (1, 2))
        assert not positionwise_unifiable((1, 2), (2, 2))

    def test_overapproximates_marked_case(self):
        x = Null("x")
        # Marked semantics rejects, Codd shortcut accepts.
        assert positionwise_unifiable((x, x), (1, 2))
        assert not unifiable((x, x), (1, 2))


# ---------------------------------------------------------------------------
# Laws
# ---------------------------------------------------------------------------

cells = st.one_of(st.integers(1, 3), st.builds(Null, st.integers(1, 3)))
tuples3 = st.tuples(cells, cells, cells)


@given(t=tuples3)
def test_reflexive(t):
    assert unifiable(t, t)


@given(r=tuples3, s=tuples3)
def test_symmetric(r, s):
    assert unifiable(r, s) == unifiable(s, r)


@given(r=tuples3, s=tuples3, assignment=st.dictionaries(
    st.integers(1, 3), st.integers(10, 13), min_size=3, max_size=3
))
def test_valuation_equality_implies_unifiable(r, s, assignment):
    """If some valuation makes v(r) = v(s), then r ⇑ s must hold."""
    mapping = {Null(label): value for label, value in assignment.items()}
    v = Valuation(mapping)
    if v.apply_row(r) == v.apply_row(s):
        assert unifiable(r, s)


@given(r=tuples3, s=tuples3)
def test_unifiable_implies_positionwise(r, s):
    """The Codd shortcut never rejects a genuinely unifiable pair."""
    if unifiable(r, s):
        assert positionwise_unifiable(r, s)


@given(r=tuples3, s=tuples3)
def test_unify_rows_consistent_with_unifiable(r, s):
    assert (unify_rows(r, s) is not None) == unifiable(r, s)
