"""Exhaustive truth tables for the three-valued logic (Section 2)."""

import pytest

from repro.algebra.threevl import (
    FALSE,
    TRUE,
    UNKNOWN,
    from_bool,
    tv_all,
    tv_and,
    tv_any,
    tv_not,
    tv_or,
)

ALL = (TRUE, FALSE, UNKNOWN)


def test_negation_table():
    assert tv_not(TRUE) is FALSE
    assert tv_not(FALSE) is TRUE
    assert tv_not(UNKNOWN) is UNKNOWN


@pytest.mark.parametrize(
    "a, b, expected",
    [
        (TRUE, TRUE, TRUE),
        (TRUE, FALSE, FALSE),
        (TRUE, UNKNOWN, UNKNOWN),
        (FALSE, FALSE, FALSE),
        (FALSE, UNKNOWN, FALSE),
        (UNKNOWN, UNKNOWN, UNKNOWN),
    ],
)
def test_conjunction_table(a, b, expected):
    assert tv_and(a, b) is expected
    assert tv_and(b, a) is expected  # commutative


@pytest.mark.parametrize(
    "a, b, expected",
    [
        (TRUE, TRUE, TRUE),
        (TRUE, FALSE, TRUE),
        (TRUE, UNKNOWN, TRUE),
        (FALSE, FALSE, FALSE),
        (FALSE, UNKNOWN, UNKNOWN),
        (UNKNOWN, UNKNOWN, UNKNOWN),
    ],
)
def test_disjunction_table(a, b, expected):
    assert tv_or(a, b) is expected
    assert tv_or(b, a) is expected


def test_de_morgan_exhaustive():
    for a in ALL:
        for b in ALL:
            assert tv_not(tv_and(a, b)) is tv_or(tv_not(a), tv_not(b))
            assert tv_not(tv_or(a, b)) is tv_and(tv_not(a), tv_not(b))


def test_operators_dunder():
    assert (TRUE & UNKNOWN) is UNKNOWN
    assert (FALSE | UNKNOWN) is UNKNOWN
    assert (~UNKNOWN) is UNKNOWN


def test_truthiness_is_selected_by_where():
    assert bool(TRUE)
    assert not bool(FALSE)
    assert not bool(UNKNOWN)  # u rows are NOT selected


def test_from_bool():
    assert from_bool(True) is TRUE
    assert from_bool(False) is FALSE


def test_tv_all_and_any():
    assert tv_all([TRUE, TRUE]) is TRUE
    assert tv_all([TRUE, UNKNOWN]) is UNKNOWN
    assert tv_all([UNKNOWN, FALSE]) is FALSE
    assert tv_all([]) is TRUE
    assert tv_any([FALSE, UNKNOWN]) is UNKNOWN
    assert tv_any([UNKNOWN, TRUE]) is TRUE
    assert tv_any([]) is FALSE
