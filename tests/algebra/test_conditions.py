"""Condition language: evaluation under both semantics, negation, LIKE."""

import pytest
from hypothesis import given, strategies as st

from repro.algebra.conditions import (
    And,
    Attr,
    Comparison,
    Const,
    FalseCond,
    Not,
    NullTest,
    Or,
    TrueCond,
    attrs_in,
    eq,
    eval_3vl,
    eval_naive,
    like_match,
    neq,
    negate,
)
from repro.algebra.threevl import FALSE, TRUE, UNKNOWN
from repro.data.nulls import Null


class TestConstructors:
    def test_eq_coerces_strings_to_attrs(self):
        cond = eq("A", 5)
        assert cond.left == Attr("A")
        assert cond.right == Const(5)

    def test_and_or_flatten(self):
        cond = And(eq("A", 1), And(eq("B", 2), eq("C", 3)))
        assert len(cond.items) == 3
        cond = Or(eq("A", 1), Or(eq("B", 2), eq("C", 3)))
        assert len(cond.items) == 3

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison("===", Attr("A"), Const(1))


class TestNaiveEvaluation:
    def test_constants(self):
        row = {"A": 1, "B": 2}
        assert eval_naive(eq("A", 1), row)
        assert not eval_naive(eq("A", "B"), row)
        assert eval_naive(neq("A", "B"), row)

    def test_marked_null_equality(self):
        n = Null("n")
        row = {"A": n, "B": Null("n"), "C": Null("other"), "D": 1}
        assert eval_naive(eq("A", "B"), row)       # same label
        assert not eval_naive(eq("A", "C"), row)   # different labels
        assert not eval_naive(eq("A", "D"), row)   # null vs constant
        assert eval_naive(neq("A", "C"), row)

    def test_order_comparisons_on_nulls_are_false(self):
        row = {"A": Null(), "B": 1}
        for op in ("<", "<=", ">", ">="):
            assert not eval_naive(Comparison(op, Attr("A"), Attr("B")), row)

    def test_null_tests(self):
        row = {"A": Null(), "B": 1}
        assert eval_naive(NullTest(Attr("A"), is_null=True), row)
        assert eval_naive(NullTest(Attr("B"), is_null=False), row)

    def test_boolean_structure(self):
        row = {"A": 1}
        assert eval_naive(And(TrueCond(), eq("A", 1)), row)
        assert not eval_naive(And(FalseCond(), eq("A", 1)), row)
        assert eval_naive(Or(FalseCond(), eq("A", 1)), row)
        assert eval_naive(Not(FalseCond()), row)

    def test_unbound_attribute_raises(self):
        with pytest.raises(KeyError, match="not bound"):
            eval_naive(eq("Z", 1), {"A": 1})


class TestSqlEvaluation:
    def test_null_comparisons_are_unknown(self):
        n = Null("n")
        row = {"A": n, "B": Null("n"), "C": 5}
        assert eval_3vl(eq("A", "B"), row) is UNKNOWN  # even the same null!
        assert eval_3vl(eq("A", "C"), row) is UNKNOWN
        assert eval_3vl(neq("A", "C"), row) is UNKNOWN
        assert eval_3vl(Comparison("<", Attr("A"), Const(1)), row) is UNKNOWN

    def test_null_test_is_two_valued(self):
        row = {"A": Null()}
        assert eval_3vl(NullTest(Attr("A"), is_null=True), row) is TRUE
        assert eval_3vl(NullTest(Attr("A"), is_null=False), row) is FALSE

    def test_kleene_propagation(self):
        row = {"A": Null(), "B": 1}
        unknown = eq("A", 1)
        assert eval_3vl(And(unknown, eq("B", 1)), row) is UNKNOWN
        assert eval_3vl(And(unknown, eq("B", 2)), row) is FALSE
        assert eval_3vl(Or(unknown, eq("B", 1)), row) is TRUE
        assert eval_3vl(Or(unknown, eq("B", 2)), row) is UNKNOWN
        assert eval_3vl(Not(unknown), row) is UNKNOWN


class TestLike:
    @pytest.mark.parametrize(
        "value, pattern, expected",
        [
            ("hello", "hello", True),
            ("hello", "h%", True),
            ("hello", "%ell%", True),
            ("hello", "h_llo", True),
            ("hello", "h_l", False),
            ("azure lace", "%lace%", True),
            ("a.c", "a.c", True),
            ("abc", "a.c", False),  # dot is literal, not regex
            ("", "%", True),
        ],
    )
    def test_like(self, value, pattern, expected):
        assert like_match(value, pattern) is expected

    def test_like_in_conditions(self):
        row = {"A": "forest green"}
        assert eval_naive(Comparison("like", Attr("A"), Const("%green%")), row)
        assert eval_3vl(
            Comparison("not like", Attr("A"), Const("%red%")), row
        ) is TRUE


class TestNegation:
    def test_atoms(self):
        assert negate(eq("A", "B")) == neq("A", "B")
        assert negate(Comparison("<", Attr("A"), Const(1))) == Comparison(
            ">=", Attr("A"), Const(1)
        )
        assert negate(NullTest(Attr("A"), True)) == NullTest(Attr("A"), False)
        assert negate(TrueCond()) == FalseCond()
        assert negate(Not(eq("A", 1))) == eq("A", 1)

    def test_de_morgan(self):
        cond = Or(eq("A", "B"), neq("B", 1))
        negated = negate(cond)
        assert isinstance(negated, And)
        assert negated == And(neq("A", "B"), eq("B", 1))  # the paper's example


def test_attrs_in():
    cond = And(eq("A", "B"), Or(NullTest(Attr("C"), True), eq("D", 1)))
    assert attrs_in(cond) == {"A", "B", "C", "D"}


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------

values = st.one_of(st.integers(1, 3), st.builds(Null, st.integers(1, 2)))
rows = st.fixed_dictionaries({"A": values, "B": values})

#: Order comparisons on nulls evaluate to *false* under naive semantics
#: (a documented design choice — the paper's theory uses only =/≠ on
#: nulls), so syntactic negation pushdown only matches naive evaluation
#: for the equality fragment once nulls are involved.
EQUALITY_OPS = ("=", "<>")
ALL_OPS = ("=", "<>", "<", "<=", ">", ">=")


@st.composite
def conditions(draw, depth=2, ops=ALL_OPS):
    if depth == 0:
        op = draw(st.sampled_from(ops))
        return Comparison(op, Attr(draw(st.sampled_from(["A", "B"]))),
                          draw(st.sampled_from([Attr("A"), Attr("B"), Const(1), Const(2)])))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return draw(conditions(depth=0, ops=ops))
    if kind == 1:
        return And(draw(conditions(depth=depth - 1, ops=ops)),
                   draw(conditions(depth=depth - 1, ops=ops)))
    if kind == 2:
        return Or(draw(conditions(depth=depth - 1, ops=ops)),
                  draw(conditions(depth=depth - 1, ops=ops)))
    return NullTest(Attr(draw(st.sampled_from(["A", "B"]))), draw(st.booleans()))


@given(cond=conditions(ops=EQUALITY_OPS), row=rows)
def test_negate_is_involutive_semantically(cond, row):
    assert eval_naive(negate(negate(cond)), row) == eval_naive(cond, row)


@given(cond=conditions(ops=EQUALITY_OPS), row=rows)
def test_negate_flips_naive_evaluation(cond, row):
    assert eval_naive(negate(cond), row) == (not eval_naive(cond, row))


@given(cond=conditions(), row=rows)
def test_3vl_negation_consistent(cond, row):
    """Under 3VL the pushdown law holds for *all* comparison operators."""
    value = eval_3vl(cond, row)
    assert eval_3vl(negate(cond), row) is ~value


@given(cond=conditions(), row=st.fixed_dictionaries(
    {"A": st.integers(1, 3), "B": st.integers(1, 3)}
))
def test_semantics_agree_on_complete_rows(cond, row):
    assert eval_naive(cond, row) == bool(eval_3vl(cond, row))
