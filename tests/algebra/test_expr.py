"""Algebra expression nodes: construction helpers, traversal, rendering."""

from repro.algebra import (
    Difference,
    Intersection,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    Union,
    eq,
)
from repro.algebra.expr import walk


class TestCombinators:
    def test_select_project_chain(self):
        expr = RelationRef("R").select(eq("A", 1)).project("A")
        assert isinstance(expr, Projection)
        assert isinstance(expr.child, Selection)
        assert expr.child.child == RelationRef("R")

    def test_set_combinators(self):
        r, s = RelationRef("R"), RelationRef("S")
        assert isinstance(r.union(s), Union)
        assert isinstance(r.intersect(s), Intersection)
        assert isinstance(r.minus(s), Difference)
        assert isinstance(r.product(s), Product)


class TestRename:
    def test_dict_mapping_normalised(self):
        a = Rename(RelationRef("R"), {"A": "X", "B": "Y"})
        b = Rename(RelationRef("R"), {"B": "Y", "A": "X"})
        assert a == b  # dict order does not matter
        assert a.mapping_dict() == {"A": "X", "B": "Y"}


class TestWalk:
    def test_preorder(self):
        expr = Difference(
            RelationRef("R"), Selection(RelationRef("S"), eq("A", 1))
        )
        nodes = list(walk(expr))
        assert nodes[0] is expr
        assert RelationRef("R") in nodes
        assert RelationRef("S") in nodes
        assert len(nodes) == 4

    def test_leaf(self):
        assert list(walk(RelationRef("R"))) == [RelationRef("R")]


class TestRepr:
    def test_uses_standard_notation(self):
        expr = Projection(Selection(RelationRef("R"), eq("A", 1)), ("A",))
        text = repr(expr)
        assert "π" in text and "σ" in text

    def test_difference_and_product(self):
        r, s = RelationRef("R"), RelationRef("S")
        assert "−" in repr(Difference(r, s))
        assert "×" in repr(Product(r, s))


class TestEquality:
    def test_structural_equality(self):
        a = Selection(RelationRef("R"), eq("A", 1))
        b = Selection(RelationRef("R"), eq("A", 1))
        assert a == b
        assert hash(a) == hash(b)

    def test_usable_as_dict_keys(self):
        cache = {RelationRef("R"): 1}
        assert cache[RelationRef("R")] == 1
