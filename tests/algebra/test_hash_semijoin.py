"""The hash fast path for equi-keyed semijoins/antijoins.

``_condition_matcher`` pulls cross-side ``attr = attr`` conjuncts out of
the condition and hash-partitions the right side on them; these tests
pin (a) when the fast path engages (the ``hash_semijoins`` counter),
(b) that it is *exactly* equivalent to the nested-loop matcher under
both semantics, including null keys and residual conjuncts.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra import AntiJoin, RelationRef, SemiJoin, evaluate
from repro.algebra import conditions as C
from repro.algebra.evaluate import Evaluator, _equi_decompose
from repro.data import Database, Null, Relation


def _run(db, expr, semantics):
    ev = Evaluator(db, semantics=semantics)
    return ev.evaluate(expr), ev


NA = Null("na")  # R's null key
NB = Null("nb")  # R's null payload


@pytest.fixture()
def db():
    return Database(
        {
            "R": Relation(("A", "B"), [(1, 2), (2, 3), (NA, 4), (3, NB)]),
            "S": Relation(("X", "Y"), [(1, 9), (Null("nc"), 8), (3, 7)]),
        }
    )


class TestEquiDecompose:
    def test_single_equality(self):
        pairs, residual = _equi_decompose(C.eq("A", "X"), ("A", "B"), ("X", "Y"))
        assert pairs == [("A", "X")]
        assert residual is None

    def test_reversed_sides_normalise(self):
        pairs, residual = _equi_decompose(C.eq("X", "A"), ("A", "B"), ("X", "Y"))
        assert pairs == [("A", "X")]

    def test_residual_preserved(self):
        cond = C.And(C.eq("A", "X"), C.Comparison(">", C.Attr("B"), C.Const(1)))
        pairs, residual = _equi_decompose(cond, ("A", "B"), ("X", "Y"))
        assert pairs == [("A", "X")]
        assert residual == C.Comparison(">", C.Attr("B"), C.Const(1))

    def test_same_side_equality_is_residual(self):
        cond = C.And(C.eq("A", "B"), C.eq("A", "X"))
        pairs, residual = _equi_decompose(cond, ("A", "B"), ("X", "Y"))
        assert pairs == [("A", "X")]
        assert residual == C.eq("A", "B")

    def test_no_key_returns_none(self):
        assert _equi_decompose(C.eq("A", 1), ("A", "B"), ("X", "Y")) is None
        assert (
            _equi_decompose(
                C.Or(C.eq("A", "X"), C.eq("B", "Y")), ("A", "B"), ("X", "Y")
            )
            is None
        )


class TestHashPathEngages:
    def test_counter_increments_on_equi_key(self, db):
        expr = SemiJoin(RelationRef("R"), RelationRef("S"), C.eq("A", "X"))
        out, ev = _run(db, expr, "sql")
        assert ev.hash_semijoins == 1
        assert set(out.rows) == {(1, 2), (3, NB)}

    def test_no_counter_without_key(self, db):
        expr = SemiJoin(
            RelationRef("R"),
            RelationRef("S"),
            C.Comparison("<", C.Attr("A"), C.Attr("X")),
        )
        _, ev = _run(db, expr, "sql")
        assert ev.hash_semijoins == 0

    def test_antijoin_uses_hash_path(self, db):
        expr = AntiJoin(RelationRef("R"), RelationRef("S"), C.eq("A", "X"))
        out, ev = _run(db, expr, "sql")
        assert ev.hash_semijoins == 1
        # Null-keyed left rows never TRUE-match → survive the antijoin.
        assert set(out.rows) == {(2, 3), (NA, 4)}


class TestNullKeySemantics:
    def test_sql_null_keys_never_match(self, db):
        expr = SemiJoin(RelationRef("R"), RelationRef("S"), C.eq("A", "X"))
        out, _ = _run(db, expr, "sql")
        assert all(not isinstance(row[0], Null) for row in out.rows)

    def test_naive_nulls_match_by_label(self):
        n = Null("n1")
        db = Database(
            {
                "R": Relation(("A",), [(n,), (Null("n2"),), (1,)]),
                "S": Relation(("X",), [(n,), (2,)]),
            }
        )
        expr = SemiJoin(RelationRef("R"), RelationRef("S"), C.eq("A", "X"))
        out, ev = _run(db, expr, "naive")
        assert ev.hash_semijoins == 1
        assert set(out.rows) == {(n,)}

    def test_residual_checked_per_candidate(self, db):
        cond = C.And(C.eq("A", "X"), C.Comparison(">", C.Attr("Y"), C.Const(8)))
        expr = SemiJoin(RelationRef("R"), RelationRef("S"), cond)
        out, ev = _run(db, expr, "sql")
        assert ev.hash_semijoins == 1
        assert set(out.rows) == {(1, 2)}  # (3, null) keyed-matches but Y=7 fails


def _random_relation(rng, attrs, n):
    def cell():
        if rng.random() < 0.3:
            return Null(f"n{rng.randint(1, 3)}")
        return rng.choice([1, 2, 3])

    return Relation(attrs, [(cell(), cell()) for _ in range(n)])


@given(seed=st.integers(0, 10_000))
@settings(max_examples=50, deadline=None)
def test_hash_path_equals_nested_loop(seed):
    """Differential: hash matcher ≡ brute-force nested loop, both semantics."""
    rng = random.Random(seed)
    db = Database(
        {
            "R": _random_relation(rng, ("A", "B"), rng.randint(1, 6)),
            "S": _random_relation(rng, ("X", "Y"), rng.randint(1, 6)),
        }
    )
    cond = C.And(C.eq("A", "X"), C.Comparison("<>", C.Attr("B"), C.Attr("Y")))
    for semantics in ("naive", "sql"):
        for op in (SemiJoin, AntiJoin):
            expr = op(RelationRef("R"), RelationRef("S"), cond)
            out, ev = _run(db, expr, semantics)
            assert ev.hash_semijoins == 1
            # Brute force over the deduplicated operands.
            left = db["R"].distinct()
            right = db["S"].distinct()
            attrs = left.attributes + right.attributes
            check = Evaluator(db, semantics=semantics)
            expected = {
                l
                for l in left.rows
                if any(
                    check._selected(cond, dict(zip(attrs, l + r)))
                    for r in right.rows
                )
                == (op is SemiJoin)
            }
            assert set(out.rows) == expected, (semantics, op.__name__)


def test_evaluate_function_still_works(db):
    out = evaluate(
        SemiJoin(RelationRef("R"), RelationRef("S"), C.eq("A", "X")), db, "sql"
    )
    assert set(out.rows) == {(1, 2), (3, NB)}
