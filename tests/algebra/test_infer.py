"""Static attribute inference used by the translations."""

import pytest

from repro.algebra.expr import (
    AdomPower,
    AntiJoin,
    Difference,
    Division,
    Join,
    Literal,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    SemiJoin,
    Union,
    UnifSemiJoin,
)
from repro.algebra.conditions import eq
from repro.algebra.infer import arity_of, attribute_lookup, output_attributes
from repro.data import Database, Relation
from repro.data.schema import DatabaseSchema, make_schema

LOOKUP = {"R": ("A", "B"), "S": ("C", "D")}


@pytest.mark.parametrize(
    "expr, expected",
    [
        (RelationRef("R"), ("A", "B")),
        (Literal(Relation(("X",), [])), ("X",)),
        (AdomPower(("P", "Q")), ("P", "Q")),
        (Selection(RelationRef("R"), eq("A", 1)), ("A", "B")),
        (Projection(RelationRef("R"), ("B",)), ("B",)),
        (Rename(RelationRef("R"), {"A": "Z"}), ("Z", "B")),
        (Product(RelationRef("R"), RelationRef("S")), ("A", "B", "C", "D")),
        (Join(RelationRef("R"), RelationRef("S"), eq("A", "C")), ("A", "B", "C", "D")),
        (Union(RelationRef("R"), RelationRef("S")), ("A", "B")),
        (Difference(RelationRef("R"), RelationRef("S")), ("A", "B")),
        (SemiJoin(RelationRef("R"), RelationRef("S"), eq("A", "C")), ("A", "B")),
        (AntiJoin(RelationRef("R"), RelationRef("S"), eq("A", "C")), ("A", "B")),
        (UnifSemiJoin(RelationRef("R"), RelationRef("S")), ("A", "B")),
        (Division(RelationRef("R"), Projection(RelationRef("R"), ("B",))), ("A",)),
    ],
)
def test_output_attributes(expr, expected):
    assert output_attributes(expr, LOOKUP) == expected


def test_arity(expr=Product(RelationRef("R"), RelationRef("S"))):
    assert arity_of(expr, LOOKUP) == 4


def test_lookup_from_database():
    db = Database({"T": Relation(("X", "Y"), [])})
    assert output_attributes(RelationRef("T"), db) == ("X", "Y")


def test_lookup_from_schema():
    schema = DatabaseSchema()
    schema.add(make_schema("T", [("X", "int"), ("Y", "int")]))
    assert output_attributes(RelationRef("T"), schema) == ("X", "Y")


def test_lookup_rejects_other_sources():
    with pytest.raises(TypeError):
        attribute_lookup(42)
