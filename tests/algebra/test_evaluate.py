"""The reference algebra evaluator: every operator, both semantics."""

import pytest

from repro.algebra import (
    AdomPower,
    AntiJoin,
    Difference,
    Division,
    EvaluationBudgetExceeded,
    Intersection,
    Join,
    Literal,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    SemiJoin,
    Union,
    UnifAntiJoin,
    UnifSemiJoin,
    eq,
    evaluate,
)
from repro.data import Database, Null, Relation


@pytest.fixture
def db():
    return Database(
        {
            "R": Relation(("A", "B"), [(1, 2), (2, 3), (1, 2)]),
            "S": Relation(("C",), [(2,), (9,)]),
        }
    )


class TestBasics:
    def test_base_relation_is_deduplicated(self, db):
        out = evaluate(RelationRef("R"), db)
        assert sorted(out.rows) == [(1, 2), (2, 3)]

    def test_literal(self, db):
        lit = Literal(Relation(("X",), [(5,)]))
        assert evaluate(lit, db).rows == [(5,)]

    def test_selection(self, db):
        out = evaluate(Selection(RelationRef("R"), eq("A", 1)), db)
        assert out.rows == [(1, 2)]

    def test_projection_deduplicates(self, db):
        out = evaluate(Projection(RelationRef("R"), ("B",)), db)
        assert sorted(out.rows) == [(2,), (3,)]

    def test_rename(self, db):
        out = evaluate(Rename(RelationRef("S"), {"C": "Z"}), db)
        assert out.attributes == ("Z",)

    def test_product(self, db):
        out = evaluate(Product(RelationRef("R"), RelationRef("S")), db)
        assert out.attributes == ("A", "B", "C")
        assert len(out) == 4

    def test_product_attribute_collision_rejected(self, db):
        with pytest.raises(ValueError, match="disjoint"):
            evaluate(Product(RelationRef("R"), RelationRef("R")), db)

    def test_join(self, db):
        out = evaluate(
            Join(RelationRef("R"), RelationRef("S"), eq("B", "C")), db
        )
        assert out.rows == [(1, 2, 2)]


class TestSetOperators:
    def test_union(self, db):
        out = evaluate(
            Union(RelationRef("R"), Literal(Relation(("A", "B"), [(9, 9), (1, 2)]))),
            db,
        )
        assert len(out) == 3

    def test_intersection_positional(self, db):
        other = Literal(Relation(("X", "Y"), [(1, 2), (7, 7)]))
        out = evaluate(Intersection(RelationRef("R"), other), db)
        assert out.rows == [(1, 2)]
        assert out.attributes == ("A", "B")  # left's names win

    def test_difference(self, db):
        other = Literal(Relation(("X", "Y"), [(1, 2)]))
        out = evaluate(Difference(RelationRef("R"), other), db)
        assert out.rows == [(2, 3)]

    def test_arity_mismatch_rejected(self, db):
        with pytest.raises(ValueError, match="arity"):
            evaluate(Union(RelationRef("R"), RelationRef("S")), db)


class TestSemijoins:
    def test_semijoin(self, db):
        out = evaluate(
            SemiJoin(RelationRef("R"), RelationRef("S"), eq("B", "C")), db
        )
        assert out.rows == [(1, 2)]
        assert out.attributes == ("A", "B")

    def test_antijoin(self, db):
        out = evaluate(
            AntiJoin(RelationRef("R"), RelationRef("S"), eq("B", "C")), db
        )
        assert out.rows == [(2, 3)]

    def test_unification_semijoin_marked(self):
        x = Null("x")
        db = Database(
            {
                "L": Relation(("A", "B"), [(x, x), (1, 1)]),
                "M": Relation(("A", "B"), [(1, 2)]),
            }
        )
        out = evaluate(UnifSemiJoin(RelationRef("L"), RelationRef("M")), db)
        assert out.rows == []  # (x,x) cannot unify with (1,2); (1,1) differs

    def test_unification_semijoin_codd_flag(self):
        x = Null("x")
        db = Database(
            {
                "L": Relation(("A", "B"), [(x, x)]),
                "M": Relation(("A", "B"), [(1, 2)]),
            }
        )
        out = evaluate(
            UnifSemiJoin(RelationRef("L"), RelationRef("M"), codd=True), db
        )
        assert len(out) == 1  # position-wise shortcut accepts

    def test_unification_antijoin(self):
        db = Database(
            {
                "L": Relation(("A",), [(1,), (2,)]),
                "M": Relation(("A",), [(Null(),)]),
            }
        )
        out = evaluate(UnifAntiJoin(RelationRef("L"), RelationRef("M")), db)
        assert out.rows == []  # everything unifies with a fresh null


class TestDivision:
    def test_students_taking_all_courses(self):
        db = Database(
            {
                "takes": Relation(
                    ("student", "course"),
                    [("ann", "db"), ("ann", "os"), ("bob", "db")],
                ),
                "courses": Relation(("course",), [("db",), ("os",)]),
            }
        )
        out = evaluate(Division(RelationRef("takes"), RelationRef("courses")), db)
        assert out.rows == [("ann",)]
        assert out.attributes == ("student",)

    def test_missing_divisor_attribute_rejected(self, db):
        with pytest.raises(ValueError, match="not in dividend"):
            evaluate(Division(RelationRef("S"), RelationRef("R")), db)


class TestAdomAndBudget:
    def test_adom_power(self, db):
        out = evaluate(AdomPower(("X", "Y")), db)
        domain = db.active_domain()
        assert len(out) == len(domain) ** 2

    def test_budget_exceeded_on_adom(self, db):
        with pytest.raises(EvaluationBudgetExceeded):
            evaluate(AdomPower(("X", "Y", "Z")), db, max_rows=10)

    def test_budget_exceeded_on_product(self, db):
        big = Product(
            Product(RelationRef("R"), Rename(RelationRef("S"), {"C": "C1"})),
            Rename(RelationRef("S"), {"C": "C2"}),
        )
        with pytest.raises(EvaluationBudgetExceeded):
            evaluate(big, db, max_rows=5)

    def test_budget_not_exceeded_when_large_enough(self, db):
        out = evaluate(Product(RelationRef("R"), RelationRef("S")), db, max_rows=100)
        assert len(out) == 4


class TestSemantics:
    def test_selection_semantics_differ_on_nulls(self):
        n = Null("n")
        db = Database({"R": Relation(("A", "B"), [(n, n), (1, 2)])})
        same = Selection(RelationRef("R"), eq("A", "B"))
        naive = evaluate(same, db, semantics="naive")
        sql = evaluate(same, db, semantics="sql")
        assert (n, n) in naive.rows     # same marked null: naive says equal
        assert (n, n) not in sql.rows   # SQL: unknown, not selected

    def test_unknown_semantics_rejected(self, db):
        with pytest.raises(ValueError, match="semantics"):
            evaluate(RelationRef("R"), db, semantics="maybe")

    def test_unknown_node_rejected(self, db):
        class Weird:
            pass

        with pytest.raises(TypeError):
            evaluate(Weird(), db)
