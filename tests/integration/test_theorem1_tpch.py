"""Theorem 1 verified end-to-end on TPC-H-shaped data.

The rewritten queries, executed by the SQL engine under plain 3VL,
return only certain answers — checked against brute-force certain
answers on miniature instances (few constants, ≤ 4 nulls).
"""

import random

import pytest

from repro.certain import certain_answers_with_nulls
from repro.data import Database, Null, Relation
from repro.engine import execute_sql
from repro.sql.parser import parse_sql
from repro.sql.rewrite import rewrite_certain
from repro.data.schema import DatabaseSchema, make_schema

Q3_MINI = """
SELECT o_orderkey FROM orders
WHERE NOT EXISTS (
  SELECT * FROM lineitem
  WHERE l_orderkey = o_orderkey AND l_suppkey <> $supp_key )
"""

Q2_MINI = """
SELECT c_custkey FROM customer
WHERE NOT EXISTS (SELECT * FROM orders WHERE o_custkey = c_custkey)
"""


def mini_schema():
    schema = DatabaseSchema()
    schema.add(make_schema("orders", [("o_orderkey", "int")], key=["o_orderkey"]))
    schema.add(
        make_schema(
            "lineitem", [("l_orderkey", "int"), ("l_suppkey", "int")],
            not_null=["l_orderkey"],
        )
    )
    schema.add(make_schema("customer", [("c_custkey", "int")], key=["c_custkey"]))
    schema.add(make_schema("orders2", [("o_custkey", "int")]))
    return schema


def q3_instance(rng):
    orders = Relation(("o_orderkey",), [(100,), (101,), (102,)])
    rows = []
    null_budget = 3
    for okey in (100, 101, 102):
        for _ in range(rng.randint(0, 2)):
            if null_budget and rng.random() < 0.35:
                rows.append((okey, Null()))
                null_budget -= 1
            else:
                rows.append((okey, rng.choice([1, 2])))
    return Database(
        {"orders": orders, "lineitem": Relation(("l_orderkey", "l_suppkey"), rows)}
    )


@pytest.mark.parametrize("seed", range(10))
def test_q3_rewrite_returns_only_certain_answers(seed):
    rng = random.Random(seed)
    db = q3_instance(rng)
    schema = mini_schema()
    params = {"supp_key": 1}
    plus = rewrite_certain(parse_sql(Q3_MINI), schema)
    got = set(execute_sql(db, plus, params).rows)

    from repro.sql.to_algebra import sql_to_algebra

    algebra = sql_to_algebra(parse_sql(Q3_MINI), db, params=params)
    certain = set(certain_answers_with_nulls(algebra, db).rows)
    assert got <= certain, f"non-certain answers {got - certain} (seed {seed})"


@pytest.mark.parametrize("seed", range(6))
def test_q2_shape_rewrite_returns_only_certain_answers(seed):
    rng = random.Random(50 + seed)
    customer = Relation(("c_custkey",), [(1,), (2,), (3,)])
    rows = []
    null_budget = 2
    for _ in range(rng.randint(0, 3)):
        if null_budget and rng.random() < 0.4:
            rows.append((Null(),))
            null_budget -= 1
        else:
            rows.append((rng.choice([1, 2, 3]),))
    db = Database({"customer": customer, "orders": Relation(("o_custkey",), rows)})

    schema = DatabaseSchema()
    schema.add(make_schema("customer", [("c_custkey", "int")], key=["c_custkey"]))
    schema.add(make_schema("orders", [("o_custkey", "int")]))

    plus = rewrite_certain(parse_sql(Q2_MINI), schema)
    got = set(execute_sql(db, plus).rows)

    from repro.sql.to_algebra import sql_to_algebra

    algebra = sql_to_algebra(parse_sql(Q2_MINI), db)
    certain = set(certain_answers_with_nulls(algebra, db).rows)
    assert got <= certain
    # And recall against certain answers is total here: Q2's rewrite
    # loses nothing that is genuinely certain.
    assert certain <= got
