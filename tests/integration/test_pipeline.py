"""End-to-end integration: the full reproduction pipeline on one instance.

generate → inject nulls → run Q_i (3VL engine) → detect false positives
→ rewrite automatically → run Q+_i → check precision/recall claims.
"""

import random

import pytest

from repro.engine import execute_sql
from repro.fp.detectors import detector_for
from repro.sql.parser import parse_sql
from repro.sql.rewrite import rewrite_certain
from repro.tpch.datafiller import generate_small_instance
from repro.tpch.nullify import inject_nulls
from repro.tpch.queries import QUERIES, sample_parameters
from repro.tpch.schema import tpch_schema


@pytest.fixture(scope="module")
def setting():
    schema = tpch_schema()
    base = generate_small_instance(scale=0.15, seed=31)
    db = inject_nulls(base, 0.06, seed=32)
    queries = {
        qid: (
            parse_sql(QUERIES[qid][0]),
            rewrite_certain(parse_sql(QUERIES[qid][0]), schema),
            parse_sql(QUERIES[qid][1]),
        )
        for qid in QUERIES
    }
    return db, queries


@pytest.mark.parametrize("qid", sorted(QUERIES))
@pytest.mark.parametrize("draw", range(3))
def test_full_pipeline(setting, qid, draw):
    db, queries = setting
    original, auto_plus, hand_plus = queries[qid]
    rng = random.Random(hash((qid, draw)) & 0xFFFF)
    params = sample_parameters(qid, db, rng=rng)
    detect = detector_for(qid)

    sql_rows = set(execute_sql(db, original, params).rows)
    auto_rows = set(execute_sql(db, auto_plus, params).rows)
    hand_rows = set(execute_sql(db, hand_plus, params).rows)
    flagged = {row for row in sql_rows if detect(params, db, row)}

    # 1. Automatic and appendix rewrites agree exactly.
    assert auto_rows == hand_rows
    # 2. Precision: no detected false positive survives the rewriting.
    assert not (auto_rows & flagged)
    # 3. Recall (the Section 7 observation): the rewriting returns every
    #    SQL answer that was not flagged.
    assert sql_rows - flagged <= auto_rows
    # 4. For these queries Q+ never invents answers.
    assert auto_rows <= sql_rows


def test_q2_all_answers_false_when_custkey_null(setting):
    """Q2's signature behaviour: one null o_custkey falsifies everything."""
    db, queries = setting
    from repro.data.nulls import is_null

    has_null_cust = any(
        is_null(v) for v in db["orders"].column("o_custkey")
    )
    assert has_null_cust  # 6% nulls on hundreds of orders
    original, auto_plus, _hand = queries["Q2"]
    rng = random.Random(77)
    for _ in range(5):
        params = sample_parameters("Q2", db, rng=rng)
        assert execute_sql(db, auto_plus, params).rows == []
