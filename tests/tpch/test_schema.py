"""The TPC-H schema and the paper's nullability policy."""

import pytest

from repro.tpch.schema import TABLE_RATIOS, tpch_schema


@pytest.fixture(scope="module")
def schema():
    return tpch_schema()


class TestTables:
    def test_all_eight_tables(self, schema):
        assert set(schema.relation_names()) == {
            "region",
            "nation",
            "supplier",
            "part",
            "partsupp",
            "customer",
            "orders",
            "lineitem",
        }

    def test_lineitem_is_largest_ratio(self):
        assert TABLE_RATIOS["lineitem"] == max(TABLE_RATIOS.values())
        assert TABLE_RATIOS["orders"] == sorted(TABLE_RATIOS.values())[-2]

    def test_arities(self, schema):
        assert schema["lineitem"].arity == 16
        assert schema["orders"].arity == 9
        assert schema["part"].arity == 9


class TestKeys:
    def test_primary_keys(self, schema):
        assert schema["orders"].key == ("o_orderkey",)
        assert schema["supplier"].key == ("s_suppkey",)
        assert schema["lineitem"].key == ("l_orderkey", "l_linenumber")
        assert schema["partsupp"].key == ("ps_partkey", "ps_suppkey")


class TestNullabilityPolicy:
    def test_key_attributes_non_nullable(self, schema):
        assert not schema["lineitem"].is_nullable("l_orderkey")
        assert not schema["orders"].is_nullable("o_orderkey")

    def test_foreign_keys_nullable(self, schema):
        """The attributes driving the paper's false positives."""
        assert schema["lineitem"].is_nullable("l_suppkey")
        assert schema["lineitem"].is_nullable("l_partkey")
        assert schema["orders"].is_nullable("o_custkey")
        assert schema["supplier"].is_nullable("s_nationkey")

    def test_dates_nullable(self, schema):
        assert schema["lineitem"].is_nullable("l_commitdate")
        assert schema["lineitem"].is_nullable("l_receiptdate")

    def test_nation_and_region_complete(self, schema):
        """Matches the appendix: supp_view has no n_name IS NULL branch."""
        assert schema["nation"].nullable_attributes() == ()
        assert schema["region"].nullable_attributes() == ()


class TestForeignKeys:
    def test_lineitem_references(self, schema):
        refs = {
            (fk.table, fk.ref_table)
            for fk in schema.foreign_keys
        }
        assert ("lineitem", "orders") in refs
        assert ("lineitem", "part") in refs
        assert ("lineitem", "supplier") in refs
        assert ("orders", "customer") in refs
        assert ("supplier", "nation") in refs
