"""DBGen and DataFiller substitutes: sizes, consistency, determinism."""


import pytest

from repro.tpch.datafiller import generate_small_instance
from repro.tpch.dbgen import ScaleProfile, generate_instance
from repro.tpch.schema import TABLE_RATIOS


@pytest.fixture(scope="module")
def db():
    return generate_instance(scale=0.2, seed=42)


class TestScaleProfile:
    def test_ratios(self):
        profile = ScaleProfile(1.0)
        assert profile.rows("lineitem") == 6000
        assert profile.rows("orders") == 1500
        assert profile.rows("nation") == 25

    def test_minimum_one_row(self):
        assert ScaleProfile(0.0001).rows("supplier") == 1


class TestDbgen:
    def test_row_counts_follow_ratios(self, db):
        for table in ("supplier", "customer", "orders", "lineitem"):
            expected = max(1, round(TABLE_RATIOS[table] * 0.2))
            assert abs(len(db[table]) - expected) <= expected * 0.05 + 1

    def test_deterministic_by_seed(self):
        a = generate_instance(scale=0.05, seed=9)
        b = generate_instance(scale=0.05, seed=9)
        assert a["orders"].rows == b["orders"].rows
        c = generate_instance(scale=0.05, seed=10)
        assert a["orders"].rows != c["orders"].rows

    def test_complete(self, db):
        assert db.is_complete()

    def test_foreign_keys_consistent(self, db):
        order_keys = set(db["orders"].column("o_orderkey"))
        part_keys = set(db["part"].column("p_partkey"))
        supp_keys = set(db["supplier"].column("s_suppkey"))
        cust_keys = set(db["customer"].column("c_custkey"))
        nation_keys = set(db["nation"].column("n_nationkey"))
        assert set(db["lineitem"].column("l_orderkey")) <= order_keys
        assert set(db["lineitem"].column("l_partkey")) <= part_keys
        assert set(db["lineitem"].column("l_suppkey")) <= supp_keys
        assert set(db["orders"].column("o_custkey")) <= cust_keys
        assert set(db["supplier"].column("s_nationkey")) <= nation_keys

    def test_primary_keys_unique(self, db):
        okeys = db["orders"].column("o_orderkey")
        assert len(set(okeys)) == len(okeys)
        line_pk = [
            (r[0], r[3]) for r in db["lineitem"].rows
        ]  # (l_orderkey, l_linenumber)
        assert len(set(line_pk)) == len(line_pk)

    def test_every_order_has_lineitems(self, db):
        with_items = set(db["lineitem"].column("l_orderkey"))
        assert set(db["orders"].column("o_orderkey")) <= with_items

    def test_date_consistency(self, db):
        li = db["lineitem"]
        i_ship = li.index_of("l_shipdate")
        i_receipt = li.index_of("l_receiptdate")
        for row in li.rows:
            assert row[i_receipt] > row[i_ship]

    def test_late_deliveries_exist(self, db):
        """Q1 needs rows with l_receiptdate > l_commitdate."""
        li = db["lineitem"]
        i_commit = li.index_of("l_commitdate")
        i_receipt = li.index_of("l_receiptdate")
        late = sum(1 for r in li.rows if r[i_receipt] > r[i_commit])
        assert 0.1 < late / len(li) < 0.9

    def test_finalised_orders_exist(self, db):
        statuses = set(db["orders"].column("o_orderstatus"))
        assert "F" in statuses and "O" in statuses

    def test_multi_and_single_supplier_orders_exist(self, db):
        """Q1 wants multi-supplier orders, Q3 single-supplier ones."""
        suppliers_of = {}
        li = db["lineitem"]
        i_s = li.index_of("l_suppkey")
        for row in li.rows:
            suppliers_of.setdefault(row[0], set()).add(row[i_s])
        counts = [len(s) for s in suppliers_of.values()]
        assert any(c == 1 for c in counts)
        assert any(c > 1 for c in counts)

    def test_some_customers_without_orders(self, db):
        ordering = set(db["orders"].column("o_custkey"))
        all_customers = set(db["customer"].column("c_custkey"))
        assert all_customers - ordering

    def test_nations_fixed(self, db):
        assert len(db["nation"]) == 25
        assert len(db["region"]) == 5


class TestDataFiller:
    def test_sizes_and_completeness(self):
        db = generate_small_instance(scale=0.05, seed=1)
        assert db.is_complete()
        assert len(db["lineitem"]) == 300
        assert len(db["orders"]) == 75

    def test_deterministic(self):
        a = generate_small_instance(scale=0.02, seed=5)
        b = generate_small_instance(scale=0.02, seed=5)
        assert a["customer"].rows == b["customer"].rows

    def test_partsupp_capped_at_distinct_pairs(self):
        db = generate_small_instance(scale=0.02, seed=5)
        n_pairs = len(db["part"]) * len(db["supplier"])
        assert len(db["partsupp"]) <= n_pairs

    def test_carries_schema(self):
        db = generate_small_instance(scale=0.02, seed=5)
        assert db.schema is not None
        assert "lineitem" in db.schema
