"""Q1–Q4 texts and parameter sampling."""

import random

import pytest

from repro.sql import ast
from repro.sql.parser import parse_sql
from repro.tpch.datafiller import generate_small_instance
from repro.tpch.queries import QUERIES, sample_parameters
from repro.tpch.words import P_NAME_WORDS


@pytest.fixture(scope="module")
def db():
    return generate_small_instance(scale=0.05, seed=17)


class TestTexts:
    @pytest.mark.parametrize("qid", sorted(QUERIES))
    def test_originals_and_appendix_parse(self, qid):
        original_sql, appendix_sql, _ = QUERIES[qid]
        parse_sql(original_sql)
        parse_sql(appendix_sql)

    def test_q1_structure(self):
        query = parse_sql(QUERIES["Q1"][0])
        where = query.body.where
        kinds = [type(c).__name__ for c in where.items]
        assert kinds.count("Exists") == 2  # one positive, one negated
        exists = [c for c in where.items if isinstance(c, ast.Exists)]
        assert {e.negated for e in exists} == {True, False}

    def test_q4_appendix_has_views(self):
        query = parse_sql(QUERIES["Q4"][1])
        assert [name for name, _q in query.ctes] == ["part_view", "supp_view"]

    def test_word_pool_size(self):
        assert len(P_NAME_WORDS) == 92  # per the TPC-H specification


class TestParameterSampling:
    def test_q1_nation_name(self, db):
        params = sample_parameters("Q1", db, seed=1)
        names = set(db["nation"].column("n_name"))
        assert params["nation"] in names

    def test_q2_seven_distinct_countries(self, db):
        params = sample_parameters("Q2", db, seed=2)
        countries = params["countries"]
        assert len(countries) == 7
        assert len(set(countries)) == 7
        keys = set(db["nation"].column("n_nationkey"))
        assert set(countries) <= keys

    def test_q3_supplier_key(self, db):
        params = sample_parameters("Q3", db, seed=3)
        assert params["supp_key"] in set(db["supplier"].column("s_suppkey"))

    def test_q4_color_and_nation(self, db):
        params = sample_parameters("Q4", db, seed=4)
        assert params["color"] in P_NAME_WORDS
        assert params["nation"] in set(db["nation"].column("n_name"))

    def test_deterministic_with_seed(self, db):
        assert sample_parameters("Q1", db, seed=5) == sample_parameters(
            "Q1", db, seed=5
        )

    def test_unknown_query_rejected(self, db):
        with pytest.raises(KeyError, match="unknown query"):
            sample_parameters("Q9", db, seed=1)

    def test_rng_stream_advances(self, db):
        rng = random.Random(0)
        first = sample_parameters("Q4", db, rng=rng)
        second = sample_parameters("Q4", db, rng=rng)
        assert first != second or True  # must not raise; draws may repeat
