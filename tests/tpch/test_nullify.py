"""Null injection: rates, targets, determinism."""

import pytest

from repro.data import Database, Relation
from repro.data.nulls import is_null
from repro.tpch.datafiller import generate_small_instance
from repro.tpch.nullify import inject_nulls


@pytest.fixture(scope="module")
def base():
    return generate_small_instance(scale=0.2, seed=3)


def null_fraction(db, table, column):
    values = db[table].column(column)
    return sum(1 for v in values if is_null(v)) / len(values)


class TestInjection:
    def test_rate_is_respected(self, base):
        db = inject_nulls(base, 0.10, seed=1)
        rate = null_fraction(db, "lineitem", "l_suppkey")
        assert 0.05 < rate < 0.16

    def test_zero_rate_is_identity(self, base):
        db = inject_nulls(base, 0.0, seed=1)
        assert db["lineitem"].rows == base["lineitem"].rows

    def test_key_attributes_never_nullified(self, base):
        db = inject_nulls(base, 0.5, seed=2)
        assert null_fraction(db, "lineitem", "l_orderkey") == 0.0
        assert null_fraction(db, "orders", "o_orderkey") == 0.0

    def test_nation_never_nullified(self, base):
        db = inject_nulls(base, 0.5, seed=2)
        for column in db["nation"].attributes:
            assert null_fraction(db, "nation", column) == 0.0

    def test_nullable_foreign_keys_nullified(self, base):
        db = inject_nulls(base, 0.3, seed=2)
        assert null_fraction(db, "orders", "o_custkey") > 0.1

    def test_injected_nulls_are_fresh_codd_nulls(self, base):
        db = inject_nulls(base, 0.2, seed=4)
        nulls = []
        for _name, rel in db.items():
            for row in rel.rows:
                nulls.extend(v for v in row if is_null(v))
        assert len(nulls) == len(set(nulls))  # no repeated labels

    def test_deterministic_by_seed(self, base):
        a = inject_nulls(base, 0.1, seed=7)
        b = inject_nulls(base, 0.1, seed=7)
        for name in a.relation_names():
            pattern_a = [
                [is_null(v) for v in row] for row in a[name].rows
            ]
            pattern_b = [
                [is_null(v) for v in row] for row in b[name].rows
            ]
            assert pattern_a == pattern_b

    def test_original_untouched(self, base):
        inject_nulls(base, 0.5, seed=9)
        assert base.is_complete()


class TestValidation:
    def test_rate_bounds(self, base):
        with pytest.raises(ValueError, match="null rate"):
            inject_nulls(base, 1.5)
        with pytest.raises(ValueError, match="null rate"):
            inject_nulls(base, -0.1)

    def test_schema_required(self):
        db = Database({"t": Relation(("a",), [(1,)])})
        with pytest.raises(ValueError, match="schema"):
            inject_nulls(db, 0.1)
