"""Coverage for EngineError paths raised during compilation/execution.

Each test pins both the exception type and the message text so that
blanket ``except EngineError`` handlers elsewhere keep meaning what
they mean today.
"""

import pytest

from repro.data import Database, Relation
from repro.engine import Executor, execute_sql
from repro.engine.scope import EngineError
from repro.sql import ast


@pytest.fixture
def db():
    return Database({"t": Relation(("a", "b"), [(1, 2), (3, 4)])})


class TestSetOpArity:
    def test_union_arity_mismatch(self, db):
        with pytest.raises(EngineError, match="UNION operands have arity 1 and 2"):
            execute_sql(db, "SELECT a FROM t UNION SELECT a, b FROM t")

    def test_except_arity_mismatch(self, db):
        with pytest.raises(EngineError, match="EXCEPT operands have arity 2 and 1"):
            execute_sql(db, "SELECT a, b FROM t EXCEPT SELECT a FROM t")

    def test_matching_arity_is_fine(self, db):
        out = execute_sql(db, "SELECT a FROM t UNION SELECT b FROM t")
        assert set(out.rows) == {(1,), (2,), (3,), (4,)}


class TestStarMixedWithColumns:
    def test_star_plus_explicit_column_rejected(self, db):
        # The parser rejects ``SELECT *, a FROM t`` before the engine
        # sees it, so exercise the engine check on a hand-built AST.
        query = ast.Select(
            columns=(ast.Star(), ast.OutputColumn(ast.ColumnRef("a"))),
            tables=(ast.TableRef("t"),),
        )
        with pytest.raises(EngineError, match=r"\* mixed with explicit output columns"):
            Executor(db).execute(query)

    def test_lone_star_is_fine(self, db):
        out = Executor(db).execute(
            ast.Select(columns=(ast.Star(),), tables=(ast.TableRef("t"),))
        )
        assert out.attributes == ("a", "b")
        assert set(out.rows) == {(1, 2), (3, 4)}


class TestUnknownTable:
    def test_unknown_table(self, db):
        with pytest.raises(EngineError, match="unknown table 'nope'"):
            execute_sql(db, "SELECT a FROM nope")

    def test_unknown_table_in_subquery(self, db):
        sql = "SELECT a FROM t WHERE EXISTS (SELECT x FROM missing)"
        with pytest.raises(EngineError, match="unknown table 'missing'"):
            execute_sql(db, sql)


class TestUnboundParameter:
    def test_unbound_parameter(self, db):
        with pytest.raises(EngineError, match=r"unbound parameter \$p"):
            execute_sql(db, "SELECT a FROM t WHERE a = $p")

    def test_bound_parameter_succeeds(self, db):
        out = execute_sql(db, "SELECT a FROM t WHERE a = $p", params={"p": 1})
        assert out.rows == [(1,)]


class TestWithViews:
    def test_nested_with_rejected(self, db):
        sql = (
            "WITH v AS (WITH w AS (SELECT a FROM t) SELECT a FROM w) "
            "SELECT a FROM v"
        )
        with pytest.raises(EngineError, match="nested WITH is not supported"):
            execute_sql(db, sql)

    def test_duplicate_with_view_rejected(self, db):
        sql = "WITH v AS (SELECT a FROM t), v AS (SELECT b FROM t) SELECT a FROM v"
        with pytest.raises(EngineError, match="duplicate WITH view 'v'"):
            execute_sql(db, sql)
