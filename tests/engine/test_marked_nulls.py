"""The marked-null evaluation mode (Section 8's proposed extension).

SQL nulls cannot recognise a null as equal to itself; with marked
nulls the engine can.  This mode recovers exactly the certain answers
the Section 7 self-join example shows SQL losing.
"""

import pytest

from repro.data import Database, Null, Relation
from repro.engine import execute_sql


@pytest.fixture
def db():
    same = Null("same")
    other = Null("other")
    return Database(
        {
            "r": Relation(("a", "b"), [(same, same), (1, 2), (other, 3)]),
            "s": Relation(("a",), [(same,), (4,)]),
        }
    )


class TestSelfComparisons:
    def test_same_null_equality_true(self, db):
        out = execute_sql(db, "SELECT b FROM r WHERE a = a", marked_nulls=True)
        # (same,same): a = a true; (1,2): true; (other,3): true.
        assert len(out) == 3

    def test_sql_mode_loses_null_rows(self, db):
        out = execute_sql(db, "SELECT b FROM r WHERE a = a")
        assert len(out) == 1  # only the constant row

    def test_cross_column_same_label(self, db):
        out = execute_sql(db, "SELECT a FROM r WHERE a = b", marked_nulls=True)
        assert out.rows == [(Null("same"),)]

    def test_different_labels_stay_unknown(self, db):
        out = execute_sql(
            db, "SELECT b FROM r WHERE a = 99 OR a <> 99", marked_nulls=True
        )
        # Tautology on constants; unknown on any null (label can't help).
        assert len(out) == 1

    def test_same_label_disequality_false(self, db):
        out = execute_sql(db, "SELECT b FROM r WHERE a <> b", marked_nulls=True)
        assert out.rows == [(2,)]  # only the constant row; (same,same) is FALSE


class TestSelfJoin:
    def test_section7_selfjoin_recovered(self):
        """SELECT R1.A FROM R R1, R R2 WHERE R1.A = R2.A on R = {⊥}."""
        bottom = Null("b")
        db = Database({"r": Relation(("a",), [(bottom,)])})
        sql = "SELECT r1.a FROM r r1, r r2 WHERE r1.a = r2.a"
        assert execute_sql(db, sql).rows == []
        assert execute_sql(db, sql, marked_nulls=True).rows == [(bottom,)]

    def test_join_across_tables_by_label(self, db):
        out = execute_sql(
            db, "SELECT r.b FROM r, s WHERE r.a = s.a", marked_nulls=True
        )
        assert out.rows == [(Null("same"),)]

    def test_exists_probe_matches_same_label(self, db):
        out = execute_sql(
            db,
            "SELECT b FROM r WHERE EXISTS (SELECT * FROM s WHERE s.a = r.a)",
            marked_nulls=True,
        )
        assert out.rows == [(Null("same"),)]


class TestInPredicates:
    def test_in_subquery_matches_label(self, db):
        out = execute_sql(
            db, "SELECT b FROM r WHERE a IN (SELECT a FROM s)", marked_nulls=True
        )
        assert out.rows == [(Null("same"),)]

    def test_not_in_same_label_excluded_definitely(self, db):
        # NOT IN: the same-label null *certainly* equals a member → FALSE
        # (not merely unknown), other rows stay unknown due to s's null.
        out = execute_sql(
            db, "SELECT b FROM r WHERE a NOT IN (SELECT a FROM s)", marked_nulls=True
        )
        assert out.rows == []
