"""Property-based cross-validation: engine ≡ reference algebra evaluator.

For randomly generated databases and a grammar of SQL queries in the
EXISTS/NOT EXISTS fragment, the engine's answers must coincide with the
reference evaluator's 3VL semantics of the translated algebra.  (NOT IN
is excluded: algebra antijoins model ``¬∃ TRUE-match``, which is the
EXISTS semantics, while SQL's NOT IN is stricter on unknowns — the
engine implements both faithfully, see tests/engine/test_subqueries.)
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra import evaluate
from repro.data import Database, Null, Relation
from repro.engine import execute_sql
from repro.sql.parser import parse_sql
from repro.sql.to_algebra import sql_to_algebra

TEMPLATES = [
    "SELECT a FROM r WHERE a = {c}",
    "SELECT a, b FROM r WHERE a <> {c} AND b >= {c}",
    "SELECT a FROM r WHERE a IS NULL OR b = {c}",
    "SELECT r.a FROM r, s WHERE r.a = s.c",
    "SELECT r.a FROM r, s WHERE r.b = s.d AND s.c > {c}",
    "SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE s.c = r.a)",
    "SELECT a FROM r WHERE NOT EXISTS (SELECT * FROM s WHERE s.c = r.a)",
    "SELECT a FROM r WHERE NOT EXISTS "
    "(SELECT * FROM s WHERE s.c = r.a AND s.d <> {c})",
    "SELECT a FROM r WHERE EXISTS "
    "(SELECT * FROM s WHERE s.c = r.a AND (s.d = {c} OR s.d IS NULL))",
    "SELECT a FROM r WHERE a IN (SELECT c FROM s)",
    "SELECT a FROM r WHERE a IN (SELECT c FROM s WHERE d = r.b)",
    "SELECT a FROM r WHERE a IN ({c}, {d})",
    "SELECT a FROM r EXCEPT SELECT c FROM s",
    "SELECT a FROM r UNION SELECT c FROM s",
    "SELECT a FROM r WHERE NOT EXISTS (SELECT * FROM s WHERE s.c = r.a) "
    "AND NOT EXISTS (SELECT * FROM s WHERE s.d IS NULL)",
]


def random_db(rng: random.Random) -> Database:
    def cell():
        if rng.random() < 0.25:
            return Null()
        return rng.choice([1, 2, 3])

    def rows(n):
        return [(cell(), cell()) for _ in range(n)]

    return Database(
        {
            "r": Relation(("a", "b"), rows(rng.randint(1, 5))),
            "s": Relation(("c", "d"), rows(rng.randint(1, 5))),
        }
    )


@pytest.mark.parametrize("template_index", range(len(TEMPLATES)))
@given(seed=st.integers(0, 10_000), c=st.integers(1, 3), d=st.integers(1, 3))
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_engine_matches_reference_semantics(template_index, seed, c, d):
    sql = TEMPLATES[template_index].format(c=c, d=d)
    rng = random.Random(seed)
    db = random_db(rng)
    query = parse_sql(sql)
    engine_rows = set(execute_sql(db, query).rows)
    algebra = sql_to_algebra(query, db)
    reference_rows = set(evaluate(algebra, db, semantics="sql").rows)
    assert engine_rows == reference_rows, sql
