"""EXPLAIN: plan rendering and the Section 7 cost-estimate story."""

import random

import pytest

from repro.engine import explain_sql
from repro.engine.blocks import CompiledBlock, ExecContext
from repro.engine.explain import estimate_block
from repro.sql.parser import parse_sql
from repro.sql.rewrite import RewriteOptions, rewrite_certain
from repro.tpch.datafiller import generate_small_instance
from repro.tpch.nullify import inject_nulls
from repro.tpch.queries import Q4_SQL, sample_parameters
from repro.tpch.schema import tpch_schema


@pytest.fixture(scope="module")
def db():
    return inject_nulls(generate_small_instance(scale=0.1, seed=3), 0.03, seed=4)


@pytest.fixture(scope="module")
def params(db):
    return sample_parameters("Q4", db, rng=random.Random(5))


def total_cost(db, query, params):
    ctx = ExecContext(db, params)
    block = CompiledBlock(query.body if hasattr(query, "body") else query, ctx, None)
    return estimate_block(block, correlated=False).total_cost()


class TestRendering:
    def test_mentions_tables_and_costs(self, db, params):
        text = explain_sql(db, Q4_SQL, params)
        assert "orders" in text
        assert "lineitem" in text
        assert "cost" in text

    def test_with_views_reported(self, db, params):
        schema = tpch_schema()
        split = rewrite_certain(parse_sql(Q4_SQL), schema)
        text = explain_sql(db, split, params)
        assert "WITH" in text and "materialised" in text


class TestCostStory:
    def test_unsplit_q4_estimate_is_astronomical(self):
        """Section 7: the naive rewrite's plan cost explodes relative to
        the original, and the gap *grows* with instance size (nested
        loops are quadratic where the original hash-joins)."""
        schema = tpch_schema()
        original = parse_sql(Q4_SQL)
        unsplit = rewrite_certain(
            original, schema, RewriteOptions(split="never", fold_views="never")
        )
        ratios = []
        for scale in (0.2, 1.0):
            db = inject_nulls(
                generate_small_instance(scale=scale, seed=3), 0.03, seed=4
            )
            params = sample_parameters("Q4", db, rng=random.Random(5))
            ratios.append(
                total_cost(db, unsplit, params) / total_cost(db, original, params)
            )
        assert ratios[-1] > 5.0
        assert ratios[-1] > 2 * ratios[0]

    def test_unsplit_plan_contains_nested_loops(self, db, params):
        schema = tpch_schema()
        unsplit = rewrite_certain(
            parse_sql(Q4_SQL), schema, RewriteOptions(split="never", fold_views="never")
        )
        text = explain_sql(db, unsplit, params)
        assert "nested loop" in text

    def test_split_plan_has_no_nested_loops(self, db, params):
        schema = tpch_schema()
        split = rewrite_certain(parse_sql(Q4_SQL), schema)
        text = explain_sql(db, split, params)
        assert "nested loop" not in text
        assert "hash probe" in text
