"""Value domains the TPC-H queries rely on: dates, floats, strings."""

import datetime

import pytest

from repro.data import Database, Null, Relation
from repro.engine import execute_sql

D = datetime.date


@pytest.fixture
def db():
    return Database(
        {
            "shipments": Relation(
                ("sid", "commit_d", "receipt_d", "price"),
                [
                    (1, D(1995, 3, 1), D(1995, 2, 20), 100.0),   # early
                    (2, D(1995, 3, 1), D(1995, 3, 10), 250.50),  # late
                    (3, D(1995, 3, 1), Null(), 99.99),           # unknown
                ],
            ),
        }
    )


class TestDates:
    def test_date_comparison(self, db):
        out = execute_sql(
            db, "SELECT sid FROM shipments WHERE receipt_d > commit_d"
        )
        assert out.rows == [(2,)]  # the null row is unknown, not selected

    def test_date_ordering_in_filters(self, db):
        out = execute_sql(
            db, "SELECT sid FROM shipments WHERE commit_d >= receipt_d"
        )
        assert out.rows == [(1,)]

    def test_dates_as_join_keys(self, db):
        out = execute_sql(
            db,
            "SELECT a.sid FROM shipments a, shipments b "
            "WHERE a.receipt_d = b.commit_d AND a.sid <> b.sid",
        )
        # receipt of nobody equals commit of anybody except... commit
        # dates are all 1995-03-01; no receipt date equals it.
        assert out.rows == []


class TestNumbers:
    def test_float_comparison(self, db):
        out = execute_sql(db, "SELECT sid FROM shipments WHERE price > 100")
        assert out.rows == [(2,)]

    def test_float_literal_precision(self, db):
        out = execute_sql(db, "SELECT sid FROM shipments WHERE price = 250.5")
        assert out.rows == [(2,)]

    def test_int_float_mixing(self, db):
        out = execute_sql(db, "SELECT sid FROM shipments WHERE price = 100")
        assert out.rows == [(1,)]  # 100.0 == 100


class TestStrings:
    def test_case_sensitive_comparison(self):
        db = Database({"t": Relation(("s",), [("Abc",), ("abc",)])})
        out = execute_sql(db, "SELECT s FROM t WHERE s = 'abc'")
        assert out.rows == [("abc",)]

    def test_like_on_multiword_strings(self):
        db = Database(
            {"t": Relation(("s",), [("forest green lace",), ("navy blue",)])}
        )
        out = execute_sql(db, "SELECT s FROM t WHERE s LIKE '%green%'")
        assert out.rows == [("forest green lace",)]

    def test_concat_comparison(self):
        db = Database({"t": Relation(("a", "b"), [("fo", "o"), ("ba", "r")])})
        out = execute_sql(db, "SELECT a FROM t WHERE a || b = 'foo'")
        assert out.rows == [("fo",)]

    def test_concat_null_propagates(self):
        db = Database({"t": Relation(("a", "b"), [("fo", Null())])})
        out = execute_sql(db, "SELECT a FROM t WHERE a || b = 'foo'")
        assert out.rows == []
        out = execute_sql(db, "SELECT a FROM t WHERE a || b IS NULL")
        assert out.rows == [("fo",)]
