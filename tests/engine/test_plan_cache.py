"""Plan caching and prepared-query reuse in the executor."""

import pytest

from repro.data import Database, Null, Relation
from repro.engine import (
    Executor,
    clear_plan_cache,
    execute_sql,
    plan_cache_stats,
)
from repro.sql.parser import parse_sql


@pytest.fixture
def db():
    n = Null()
    return Database(
        {
            "r": Relation(("a", "b"), [(1, 10), (2, 20), (n, 30)]),
            "s": Relation(("a",), [(1,), (2,)]),
        }
    )


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


class TestPlanCache:
    def test_repeated_sql_hits_cache(self, db):
        sql = "SELECT a FROM r WHERE a IS NOT NULL"
        first = execute_sql(db, sql)
        stats = plan_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 0
        second = execute_sql(db, sql)
        stats = plan_cache_stats()
        assert stats["hits"] == 1
        assert first.attributes == second.attributes
        assert first.rows == second.rows

    def test_cache_keys_include_null_semantics(self, db):
        sql = "SELECT a FROM r"
        execute_sql(db, sql, marked_nulls=False)
        execute_sql(db, sql, marked_nulls=True)
        stats = plan_cache_stats()
        assert stats["misses"] == 2
        assert stats["size"] == 2

    def test_clear_resets_everything(self, db):
        execute_sql(db, "SELECT a FROM r")
        clear_plan_cache()
        stats = plan_cache_stats()
        assert (stats["size"], stats["hits"], stats["misses"]) == (0, 0, 0)

    def test_cached_plan_is_isolated_across_databases(self, db):
        sql = "SELECT a FROM s"
        assert execute_sql(db, sql).rows == [(1,), (2,)]
        other = Database({"s": Relation(("a",), [(9,)])})
        assert execute_sql(other, sql).rows == [(9,)]
        assert plan_cache_stats()["hits"] == 1

    def test_ast_input_bypasses_cache(self, db):
        query = parse_sql("SELECT a FROM s")
        execute_sql(db, query)
        stats = plan_cache_stats()
        assert (stats["size"], stats["hits"], stats["misses"]) == (0, 0, 0)


class TestPreparedQuery:
    def test_rerun_returns_identical_relation(self, db):
        sql = (
            "SELECT r.a, r.b FROM r WHERE EXISTS "
            "(SELECT * FROM s WHERE s.a = r.a)"
        )
        prepared = Executor(db).prepare(parse_sql(sql))
        first = prepared.run()
        second = prepared.run()
        assert first.attributes == second.attributes
        assert first.rows == second.rows
        assert first.rows == execute_sql(db, sql).rows

    def test_rerun_amortises_probe_work(self, db):
        """The second run reuses indexes, probe tables and memo entries
        built during the first, so it examines no new build rows."""
        sql = (
            "SELECT b FROM r WHERE NOT EXISTS "
            "(SELECT * FROM s WHERE s.a = r.a)"
        )
        prepared = Executor(db).prepare(parse_sql(sql))
        prepared.run()
        built_once = prepared.ctx.probe_tables_built
        prepared.run()
        assert prepared.ctx.probe_tables_built == built_once

    def test_prepared_setop_and_distinct(self, db):
        sql = "SELECT a FROM r UNION SELECT a FROM s"
        prepared = Executor(db).prepare(parse_sql(sql))
        assert prepared.run().rows == prepared.run().rows
