"""Physical behaviour: join strategy, indexes, short-circuits.

These tests pin down the *mechanisms* the Section 7 performance story
rests on, using the engine's ``rows_examined`` instrumentation.
"""


from repro.data import Database, Null, Relation
from repro.engine.blocks import CompiledBlock, ExecContext
from repro.engine.executor import Executor
from repro.sql.parser import parse_sql


def block_for(db, sql, params=None):
    query = parse_sql(sql)
    ctx = ExecContext(db, params)
    return CompiledBlock(query.body, ctx, parent=None), ctx


def make_db(rows_t=100, rows_u=10):
    t = Relation(("k", "v"), [(i, i % rows_u) for i in range(rows_t)])
    u = Relation(("k", "w"), [(i, i * 10) for i in range(rows_u)])
    return Database({"t": t, "u": u})


class TestClassification:
    def test_equi_join_detected(self):
        db = make_db()
        block, _ = block_for(db, "SELECT * FROM t, u WHERE t.k = u.k")
        assert len(block.equi) == 1
        assert block.residuals == []

    def test_or_condition_is_residual_not_join(self):
        db = make_db()
        block, _ = block_for(
            db, "SELECT * FROM t, u WHERE t.k = u.k OR t.k IS NULL"
        )
        assert block.equi == []
        assert len(block.residuals) == 1

    def test_constant_equality_becomes_probe(self):
        db = make_db()
        block, _ = block_for(db, "SELECT * FROM t WHERE k = 5")
        assert block.probes and block.probes[0][0] == ("t", "k")

    def test_single_table_filter_pushed(self):
        db = make_db()
        block, _ = block_for(db, "SELECT * FROM t, u WHERE t.v > 3")
        assert block.sources["t"].filters


class TestJoinWork:
    def test_hash_join_examines_linear_rows(self):
        db = make_db(rows_t=200, rows_u=20)
        executor = Executor(db)
        executor.execute(parse_sql("SELECT t.k FROM t, u WHERE t.v = u.k"))
        # Hash join: ~|t| + |u| row visits, far below |t|×|u| = 4000.
        assert executor.ctx.rows_examined < 800

    def test_or_join_degrades_to_nested_loop(self):
        """The Q4 effect: an OR … IS NULL join condition forces a
        Cartesian pipeline."""
        db = make_db(rows_t=200, rows_u=20)
        executor = Executor(db)
        executor.execute(
            parse_sql("SELECT t.k FROM t, u WHERE t.v = u.k OR t.v IS NULL")
        )
        assert executor.ctx.rows_examined >= 200 * 20

    def test_null_join_keys_never_match(self):
        n = Null()
        db = Database(
            {
                "t": Relation(("k",), [(1,), (n,)]),
                "u": Relation(("k",), [(1,), (Null(),)]),
            }
        )
        out = Executor(db).execute(
            parse_sql("SELECT t.k FROM t, u WHERE t.k = u.k")
        )
        assert out.rows == [(1,)]


class TestShortCircuits:
    def test_uncorrelated_not_exists_stops_early(self):
        """Q+2's mechanism: the decorrelated NOT EXISTS scan stops at the
        first witness and the whole query never touches the outer table."""
        n = Null()
        orders = Relation(("cust",), [(n,)] + [(i,) for i in range(500)])
        customer = Relation(("ck",), [(i,) for i in range(300)])
        db = Database({"orders": orders, "customer": customer})
        executor = Executor(db)
        out = executor.execute(
            parse_sql(
                "SELECT ck FROM customer WHERE NOT EXISTS "
                "(SELECT * FROM orders WHERE cust IS NULL)"
            )
        )
        assert out.rows == []
        # The null sits first: one orders row examined, no customer scan.
        assert executor.ctx.rows_examined <= 2

    def test_correlated_exists_stops_at_first_match(self):
        t = Relation(("k",), [(1,)])
        # 1000 matching rows; EXISTS should look at ~1.
        u = Relation(("k", "v"), [(1, i) for i in range(1000)])
        db = Database({"t": t, "u": u})
        executor = Executor(db)
        executor.execute(
            parse_sql(
                "SELECT k FROM t WHERE EXISTS (SELECT * FROM u WHERE u.k = t.k)"
            )
        )
        assert executor.ctx.rows_examined < 50

    def test_exists_guard_cached_across_probes(self):
        """Uncorrelated EXISTS inside a correlated NOT EXISTS (the Q+4
        guards) is evaluated once, not once per outer row."""
        t = Relation(("k",), [(i,) for i in range(100)])
        u = Relation(("k",), [(i,) for i in range(100)])
        g = Relation(("x",), [(1,)])
        db = Database({"t": t, "u": u, "g": g})
        executor = Executor(db)
        executor.execute(
            parse_sql(
                "SELECT k FROM t WHERE NOT EXISTS (SELECT * FROM u "
                "WHERE u.k = t.k AND EXISTS (SELECT * FROM g))"
            )
        )
        # t scan (100) + u probes (~100) + one g probe.
        assert executor.ctx.rows_examined < 300


class TestCorrelatedProbes:
    def test_probe_uses_index(self):
        db = make_db(rows_t=500, rows_u=50)
        executor = Executor(db)
        executor.execute(
            parse_sql(
                "SELECT k FROM u WHERE EXISTS (SELECT * FROM t WHERE t.v = u.k)"
            )
        )
        # Index probe per u row, not a scan of t per u row (25k).
        assert executor.ctx.rows_examined < 2000

    def test_multi_table_subquery_joins_inside(self):
        db = Database(
            {
                "a": Relation(("x",), [(1,), (2,)]),
                "b": Relation(("x", "y"), [(1, 10), (2, 20)]),
                "c": Relation(("y",), [(10,)]),
            }
        )
        out = Executor(db).execute(
            parse_sql(
                "SELECT x FROM a WHERE EXISTS "
                "(SELECT * FROM b, c WHERE b.x = a.x AND b.y = c.y)"
            )
        )
        assert out.rows == [(1,)]
