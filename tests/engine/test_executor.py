"""Engine basics: selects, projections, set ops, CTEs, parameters."""

import pytest

from repro.data import Database, Null, Relation
from repro.engine import execute_sql
from repro.engine.scope import EngineError


@pytest.fixture
def db():
    n = Null()
    return Database(
        {
            "t": Relation(("a", "b"), [(1, "x"), (2, "y"), (3, n)]),
            "u": Relation(("a", "c"), [(1, 10), (2, 20)]),
        }
    )


class TestProjection:
    def test_columns(self, db):
        out = execute_sql(db, "SELECT a FROM t")
        assert out.attributes == ("a",)
        assert set(out.rows) == {(1,), (2,), (3,)}

    def test_star(self, db):
        out = execute_sql(db, "SELECT * FROM u")
        assert out.attributes == ("a", "c")

    def test_star_over_join_dedupes_names(self, db):
        out = execute_sql(db, "SELECT * FROM t, u WHERE t.a = u.a")
        assert len(out.attributes) == 4
        assert len(set(out.attributes)) == 4  # a vs a_1

    def test_aliases(self, db):
        out = execute_sql(db, "SELECT a AS k, b v FROM t")
        assert out.attributes == ("k", "v")

    def test_distinct(self, db):
        out = execute_sql(db, "SELECT DISTINCT b FROM t WHERE a < 3 "
                              "UNION ALL SELECT b FROM t WHERE a = 1")
        assert len(out) == 3  # UNION ALL keeps the duplicate across operands

    def test_bag_semantics_without_distinct(self):
        db = Database({"t": Relation(("a", "b"), [(1, 1), (1, 2)])})
        out = execute_sql(db, "SELECT a FROM t")
        assert out.rows == [(1,), (1,)]
        out = execute_sql(db, "SELECT DISTINCT a FROM t")
        assert out.rows == [(1,)]


class TestWhere:
    def test_filters(self, db):
        out = execute_sql(db, "SELECT a FROM t WHERE a >= 2")
        assert set(out.rows) == {(2,), (3,)}

    def test_null_comparison_filters_row(self, db):
        out = execute_sql(db, "SELECT a FROM t WHERE b = 'x' OR b = 'y'")
        assert set(out.rows) == {(1,), (2,)}  # the null-b row is unknown

    def test_is_null(self, db):
        out = execute_sql(db, "SELECT a FROM t WHERE b IS NULL")
        assert out.rows == [(3,)]

    def test_like(self, db):
        out = execute_sql(db, "SELECT a FROM t WHERE b LIKE 'x%'")
        assert out.rows == [(1,)]

    def test_equi_join(self, db):
        out = execute_sql(db, "SELECT t.a, c FROM t, u WHERE t.a = u.a")
        assert set(out.rows) == {(1, 10), (2, 20)}

    def test_cartesian(self, db):
        out = execute_sql(db, "SELECT t.a FROM t, u")
        assert len(out) == 6


class TestParameters:
    def test_scalar_param(self, db):
        out = execute_sql(db, "SELECT a FROM t WHERE b = $v", {"v": "y"})
        assert out.rows == [(2,)]

    def test_list_param_in(self, db):
        out = execute_sql(db, "SELECT a FROM t WHERE a IN ($ids)", {"ids": [1, 3]})
        assert set(out.rows) == {(1,), (3,)}

    def test_concat_param(self, db):
        out = execute_sql(
            db, "SELECT a FROM t WHERE b LIKE '%' || $p || '%'", {"p": "x"}
        )
        assert out.rows == [(1,)]

    def test_unbound_param_rejected(self, db):
        with pytest.raises(EngineError, match="unbound parameter"):
            execute_sql(db, "SELECT a FROM t WHERE b = $nope")


class TestSetOps:
    def test_union_dedupes(self, db):
        out = execute_sql(db, "SELECT a FROM t UNION SELECT a FROM u")
        assert sorted(out.rows) == [(1,), (2,), (3,)]

    def test_union_all(self, db):
        out = execute_sql(db, "SELECT a FROM t UNION ALL SELECT a FROM u")
        assert len(out) == 5

    def test_intersect(self, db):
        out = execute_sql(db, "SELECT a FROM t INTERSECT SELECT a FROM u")
        assert sorted(out.rows) == [(1,), (2,)]

    def test_except(self, db):
        out = execute_sql(db, "SELECT a FROM t EXCEPT SELECT a FROM u")
        assert out.rows == [(3,)]

    def test_arity_mismatch_rejected(self, db):
        with pytest.raises(EngineError, match="arity"):
            execute_sql(db, "SELECT a, b FROM t UNION SELECT a FROM u")


class TestCtes:
    def test_view_materialised(self, db):
        out = execute_sql(
            db,
            "WITH big AS (SELECT a FROM t WHERE a > 1) "
            "SELECT a FROM big WHERE a < 3",
        )
        assert out.rows == [(2,)]

    def test_view_joinable(self, db):
        out = execute_sql(
            db,
            "WITH keys AS (SELECT a FROM u) "
            "SELECT t.b FROM t, keys WHERE t.a = keys.a",
        )
        assert set(out.rows) == {("x",), ("y",)}

    def test_duplicate_view_rejected(self, db):
        with pytest.raises(EngineError, match="duplicate WITH"):
            execute_sql(
                db,
                "WITH v AS (SELECT a FROM t), v AS (SELECT a FROM u) "
                "SELECT * FROM v",
            )

    def test_prepare_is_reentrant(self, db):
        # Regression: preparing the same CTE query twice on one Executor
        # used to raise a spurious "duplicate WITH view" error because
        # the view survived in ctx.ctes from the first prepare.
        from repro.engine import Executor
        from repro.sql.parser import parse_sql

        query = parse_sql(
            "WITH big AS (SELECT a FROM t WHERE a > 1) "
            "SELECT a FROM big WHERE a < 3"
        )
        executor = Executor(db)
        first = executor.prepare(query).run()
        second = executor.prepare(query).run()
        assert first.rows == second.rows == [(2,)]

    def test_prepare_reentry_still_rejects_intra_statement_duplicates(self, db):
        from repro.engine import Executor
        from repro.sql.parser import parse_sql

        query = parse_sql(
            "WITH v AS (SELECT a FROM t), v AS (SELECT a FROM u) SELECT * FROM v"
        )
        executor = Executor(db)
        with pytest.raises(EngineError, match="duplicate WITH"):
            executor.prepare(query)


class TestErrors:
    def test_unknown_table(self, db):
        with pytest.raises(EngineError, match="unknown table"):
            execute_sql(db, "SELECT a FROM missing")

    def test_unknown_column(self, db):
        with pytest.raises(EngineError):
            execute_sql(db, "SELECT zzz FROM t")

    def test_ambiguous_column(self, db):
        with pytest.raises(EngineError, match="ambiguous"):
            execute_sql(db, "SELECT a FROM t, u")

    def test_aggregate_outside_scalar_subquery_rejected(self, db):
        with pytest.raises(EngineError, match="aggregate"):
            execute_sql(db, "SELECT a FROM t WHERE a > AVG(a)")
