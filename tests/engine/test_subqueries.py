"""Subquery semantics: EXISTS, IN, NOT IN, scalar aggregates — with nulls."""

import pytest

from repro.data import Database, Null, Relation
from repro.engine import execute_sql
from repro.engine.scope import EngineError


@pytest.fixture
def db():
    n = Null()
    return Database(
        {
            "r": Relation(("a",), [(1,), (2,), (3,)]),
            "s": Relation(("a",), [(2,), (n,)]),
            "empty": Relation(("a",), []),
            "orders": Relation(
                ("okey", "cust"), [(100, 1), (101, 1), (102, Null())]
            ),
        }
    )


class TestExists:
    def test_correlated_exists(self, db):
        out = execute_sql(
            db, "SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE s.a = r.a)"
        )
        assert out.rows == [(2,)]

    def test_correlated_not_exists_shows_false_positives(self, db):
        """The intro phenomenon: 1 and 3 survive although the null in s
        could be either of them."""
        out = execute_sql(
            db, "SELECT a FROM r WHERE NOT EXISTS (SELECT * FROM s WHERE s.a = r.a)"
        )
        assert set(out.rows) == {(1,), (3,)}

    def test_uncorrelated_exists(self, db):
        out = execute_sql(db, "SELECT a FROM r WHERE EXISTS (SELECT * FROM empty)")
        assert out.rows == []
        out = execute_sql(db, "SELECT a FROM r WHERE EXISTS (SELECT * FROM s)")
        assert len(out) == 3

    def test_uncorrelated_not_exists_short_circuit(self, db):
        out = execute_sql(
            db,
            "SELECT a FROM r WHERE NOT EXISTS "
            "(SELECT * FROM orders WHERE cust IS NULL)",
        )
        assert out.rows == []

    def test_nested_correlation_two_levels(self, db):
        out = execute_sql(
            db,
            "SELECT a FROM r WHERE EXISTS (SELECT * FROM s "
            "WHERE s.a = r.a AND EXISTS (SELECT * FROM orders WHERE cust = r.a))",
        )
        assert out.rows == []  # s.a = 2 matches r.a = 2 but no order has cust 2


class TestIn:
    def test_in_subquery(self, db):
        out = execute_sql(db, "SELECT a FROM r WHERE a IN (SELECT a FROM s)")
        assert out.rows == [(2,)]

    def test_not_in_subquery_with_null_excludes_everything(self, db):
        """SQL's infamous NOT IN + NULL behaviour."""
        out = execute_sql(db, "SELECT a FROM r WHERE a NOT IN (SELECT a FROM s)")
        assert out.rows == []

    def test_not_in_subquery_without_nulls(self, db):
        out = execute_sql(
            db, "SELECT a FROM r WHERE a NOT IN (SELECT a FROM s WHERE a IS NOT NULL)"
        )
        assert set(out.rows) == {(1,), (3,)}

    def test_not_in_empty_is_true(self, db):
        out = execute_sql(db, "SELECT a FROM r WHERE a NOT IN (SELECT a FROM empty)")
        assert len(out) == 3

    def test_in_value_list_with_null_expr(self, db):
        out = execute_sql(db, "SELECT a FROM s WHERE a IN (2, 3)")
        assert out.rows == [(2,)]  # the null row is unknown → filtered

    def test_not_in_value_list_null_expr_unknown(self, db):
        out = execute_sql(db, "SELECT a FROM s WHERE a NOT IN (3, 4)")
        assert out.rows == [(2,)]

    def test_correlated_in(self, db):
        out = execute_sql(
            db,
            "SELECT a FROM r WHERE a IN (SELECT cust FROM orders WHERE okey < 102)",
        )
        assert out.rows == [(1,)]


class TestScalarAggregates:
    def test_avg_ignores_nulls(self):
        n = Null()
        db = Database({"t": Relation(("v",), [(1,), (3,), (n,)])})
        out = execute_sql(db, "SELECT v FROM t WHERE v > (SELECT AVG(v) FROM t)")
        assert out.rows == [(3,)]  # avg of {1,3} = 2

    def test_aggregate_over_empty_is_null(self, db):
        out = execute_sql(
            db, "SELECT a FROM r WHERE a > (SELECT MAX(a) FROM empty)"
        )
        assert out.rows == []  # comparison with NULL is unknown

    def test_count_star_vs_count_column(self):
        n = Null()
        db = Database({"t": Relation(("v",), [(1,), (n,)])})
        out = execute_sql(db, "SELECT v FROM t WHERE 2 = (SELECT COUNT(*) FROM t)")
        assert len(out) == 2
        out = execute_sql(db, "SELECT v FROM t WHERE 1 = (SELECT COUNT(v) FROM t)")
        assert len(out) == 2

    def test_sum_min_max(self):
        db = Database({"t": Relation(("v",), [(1,), (2,), (3,)])})
        assert len(execute_sql(db, "SELECT v FROM t WHERE 6 = (SELECT SUM(v) FROM t)")) == 3
        assert len(execute_sql(db, "SELECT v FROM t WHERE 1 = (SELECT MIN(v) FROM t)")) == 3
        assert len(execute_sql(db, "SELECT v FROM t WHERE 3 = (SELECT MAX(v) FROM t)")) == 3

    def test_correlated_scalar_rejected(self, db):
        with pytest.raises(EngineError, match="correlated scalar"):
            execute_sql(
                db,
                "SELECT a FROM r WHERE a > (SELECT AVG(okey) FROM orders "
                "WHERE cust = r.a)",
            )

    def test_q2_shape(self, db):
        """Customers above average balance without orders (simplified)."""
        out = execute_sql(
            db,
            "SELECT a FROM r WHERE a > (SELECT AVG(a) FROM r) "
            "AND NOT EXISTS (SELECT * FROM orders WHERE cust = r.a)",
        )
        assert out.rows == [(3,)]
