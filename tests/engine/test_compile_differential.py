"""Differential suite: compiled execution ≡ interpreted execution.

Closure compilation, columnar batch filtering and the compiled output
getters are pure *mechanism* changes — ``compile_predicates=True`` and
``False`` must produce bit-identical results (rows *and* row order) and
bit-identical instrumentation (work counters, degradation decisions),
in both standard 3VL and marked-null modes.  The stats-driven join
order deliberately runs in both modes, which is what makes counter
parity possible; these tests are the enforcement.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.data import Database, Null, Relation
from repro.engine import ResourceLimits
from repro.engine.executor import Executor
from repro.sql.parser import parse_sql

#: Counters that must be flag-independent.  (Wall-clock deadline checks
#: are excluded by construction: timing is the one thing that differs.)
COUNTERS = (
    "rows_examined",
    "probe_build_rows",
    "probe_tables_built",
    "decorrelated_probes",
    "probe_cache_hits",
    "probe_cache_misses",
    "degradations",
    "table_bytes",
)

TEMPLATES = [
    "SELECT a FROM r WHERE a = {c}",
    "SELECT a, b FROM r WHERE a <> {c} AND b >= {c}",
    "SELECT a FROM r WHERE a IS NULL OR b = {c}",
    "SELECT a FROM r WHERE a IN ({c}, {d})",
    "SELECT a FROM r WHERE a NOT IN ({c}, {d})",
    "SELECT a FROM r WHERE a IN (SELECT c FROM s)",
    "SELECT a FROM r WHERE b NOT IN (SELECT d FROM s WHERE s.c = r.a)",
    "SELECT a FROM r WHERE a IN (SELECT c FROM s WHERE d = r.b)",
    "SELECT r.a FROM r, s WHERE r.a = s.c",
    "SELECT r.a FROM r, s WHERE r.b = s.d AND s.c > {c}",
    "SELECT r.a, t.f FROM r, s, t WHERE r.a = s.c AND s.d = t.e AND t.f = {c}",
    "SELECT r.a FROM r, s, t WHERE r.a = s.c AND s.d <> t.e",
    "SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE s.c = r.a)",
    "SELECT a FROM r WHERE NOT EXISTS "
    "(SELECT * FROM s WHERE s.c = r.a AND s.d <> {c})",
    "SELECT a FROM r WHERE EXISTS "
    "(SELECT * FROM s WHERE s.c = r.a AND (s.d = {c} OR s.d IS NULL))",
    "SELECT a FROM r WHERE NOT EXISTS (SELECT * FROM s WHERE s.c = r.a) "
    "AND NOT EXISTS (SELECT * FROM s WHERE s.d IS NULL)",
    "SELECT a || 'x' FROM r WHERE a IS NOT NULL",
]


def random_db(rng: random.Random) -> Database:
    def cell():
        if rng.random() < 0.25:
            return Null()
        return rng.choice([1, 2, 3])

    def rows(n):
        return [(cell(), cell()) for _ in range(n)]

    return Database(
        {
            "r": Relation(("a", "b"), rows(rng.randint(1, 6))),
            "s": Relation(("c", "d"), rows(rng.randint(1, 6))),
            "t": Relation(("e", "f"), rows(rng.randint(1, 6))),
        }
    )


def run_mode(db, sql, compiled, marked=False, limits=None):
    executor = Executor(
        db, marked_nulls=marked, limits=limits, compile_predicates=compiled
    )
    result = executor.execute(parse_sql(sql))
    return result, executor.ctx


def assert_bit_identical(db, sql, marked=False, limits=None):
    compiled, ctx_c = run_mode(db, sql, True, marked=marked, limits=limits)
    interp, ctx_i = run_mode(db, sql, False, marked=marked, limits=limits)
    assert compiled.attributes == interp.attributes, sql
    assert compiled.rows == interp.rows, sql  # includes row order
    for name in COUNTERS:
        assert getattr(ctx_c, name) == getattr(ctx_i, name), (name, sql)


@pytest.mark.parametrize("template_index", range(len(TEMPLATES)))
@given(seed=st.integers(0, 10_000), c=st.integers(1, 3), d=st.integers(1, 3))
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_compiled_matches_interpreted(template_index, seed, c, d):
    sql = TEMPLATES[template_index].format(c=c, d=d)
    db = random_db(random.Random(seed))
    assert_bit_identical(db, sql)


@pytest.mark.parametrize("template_index", range(len(TEMPLATES)))
@given(seed=st.integers(0, 10_000), c=st.integers(1, 3), d=st.integers(1, 3))
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_compiled_matches_interpreted_marked_nulls(template_index, seed, c, d):
    sql = TEMPLATES[template_index].format(c=c, d=d)
    db = random_db(random.Random(seed))
    assert_bit_identical(db, sql, marked=True)


@given(seed=st.integers(0, 3_000))
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_degradation_points_match_under_build_row_cap(seed):
    """A tiny probe-build budget degrades at the same point in both modes."""
    db = random_db(random.Random(seed))
    sql = "SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE s.c = r.a)"
    limits = ResourceLimits(max_probe_build_rows=1)
    assert_bit_identical(db, sql, limits=limits)


@given(seed=st.integers(0, 3_000))
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_degradation_points_match_under_byte_cap(seed):
    """A tiny table-byte budget degrades at the same point in both modes."""
    db = random_db(random.Random(seed))
    sql = (
        "SELECT r.a FROM r, s WHERE r.a = s.c "
        "AND EXISTS (SELECT * FROM t WHERE t.e = r.b)"
    )
    limits = ResourceLimits(max_probe_table_bytes=1)
    assert_bit_identical(db, sql, limits=limits)


class TestInListPartition:
    """``_InValues`` pre-partitions constants into a hash set + residual."""

    @pytest.fixture()
    def db(self):
        return Database(
            {"r": Relation(("a", "b"), [(1, 2), (Null(), 3), (2, Null()), (4, 4)])}
        )

    @pytest.mark.parametrize("compiled", [True, False])
    def test_membership_basics(self, db, compiled):
        result, _ = run_mode(db, "SELECT a FROM r WHERE a IN (1, 2)", compiled)
        assert result.rows == [(1,), (2,)]

    @pytest.mark.parametrize("compiled", [True, False])
    def test_null_in_list_makes_misses_unknown(self, db, compiled):
        # a NOT IN (1, NULL): misses compare UNKNOWN against the null
        # constant, so nothing survives the negation.
        executor = Executor(db, {"p": Null()}, compile_predicates=compiled)
        result = executor.execute(
            parse_sql("SELECT a FROM r WHERE a NOT IN (1, $p)")
        )
        assert result.rows == []

    @pytest.mark.parametrize("compiled", [True, False])
    def test_null_probe_is_unknown(self, db, compiled):
        result, _ = run_mode(db, "SELECT a FROM r WHERE a NOT IN (5, 6)", compiled)
        # The null probe row is UNKNOWN (not TRUE), others pass.
        assert result.rows == [(1,), (2,), (4,)]

    @pytest.mark.parametrize("compiled", [True, False])
    def test_list_valued_params_flatten(self, db, compiled):
        executor = Executor(db, {"lst": [1, 4]}, compile_predicates=compiled)
        result = executor.execute(parse_sql("SELECT a FROM r WHERE a IN ($lst)"))
        assert result.rows == [(1,), (4,)]

    @pytest.mark.parametrize("compiled", [True, False])
    def test_marked_null_const_matches_by_label(self, db, compiled):
        n = Null("m")
        db2 = Database({"r": Relation(("a",), [(n,), (Null("k"),), (1,)])})
        executor = Executor(
            db2, {"p": n}, marked_nulls=True, compile_predicates=compiled
        )
        result = executor.execute(parse_sql("SELECT a FROM r WHERE a IN ($p)"))
        assert result.rows == [(n,)]


class TestByteBudgetDegradation:
    def _db(self):
        rows_r = [(i % 50, i % 7) for i in range(300)]
        rows_s = [(i % 50, i % 11) for i in range(300)]
        return Database(
            {
                "r": Relation(("a", "b"), rows_r),
                "s": Relation(("c", "d"), rows_s),
            }
        )

    @pytest.mark.parametrize("compiled", [True, False])
    def test_equi_index_degrades_to_linear_probing(self, compiled):
        db = self._db()
        sql = "SELECT r.a FROM r, s WHERE r.a = s.c AND r.b = 1"
        unlimited, _ = run_mode(db, sql, compiled)
        capped, ctx = run_mode(
            db, sql, compiled, limits=ResourceLimits(max_probe_table_bytes=1)
        )
        assert ctx.degradations > 0
        assert ctx.table_bytes == 0  # nothing was allowed to materialise
        assert capped.rows == unlimited.rows

    @pytest.mark.parametrize("compiled", [True, False])
    def test_probe_table_degrades_to_memoized_probing(self, compiled):
        db = self._db()
        sql = "SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE s.c = r.a)"
        unlimited, ctx_u = run_mode(db, sql, compiled)
        assert ctx_u.decorrelated_probes > 0  # the fast path was in play
        capped, ctx = run_mode(
            db, sql, compiled, limits=ResourceLimits(max_probe_table_bytes=1)
        )
        assert ctx.degradations > 0
        assert ctx.decorrelated_probes == 0
        assert capped.rows == unlimited.rows

    @pytest.mark.parametrize("compiled", [True, False])
    def test_generous_budget_does_not_degrade(self, compiled):
        db = self._db()
        sql = "SELECT r.a FROM r, s WHERE r.a = s.c AND r.b = 1"
        _, ctx = run_mode(
            db, sql, compiled, limits=ResourceLimits(max_probe_table_bytes=1 << 30)
        )
        assert ctx.degradations == 0
        assert ctx.table_bytes > 0


class TestLimitsInvalidation:
    def _db(self):
        rows_r = [(i % 50, i % 7) for i in range(200)]
        rows_s = [(i % 50, i % 11) for i in range(200)]
        return Database(
            {
                "r": Relation(("a", "b"), rows_r),
                "s": Relation(("c", "d"), rows_s),
            }
        )

    def test_prepare_with_new_limits_replans(self):
        db = self._db()
        query = parse_sql(
            "SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE s.c = r.a)"
        )
        executor = Executor(db)
        baseline = executor.prepare(query).run()
        assert executor.ctx.decorrelated_probes > 0
        assert executor.ctx.degradations == 0

        # Tighten: the already-built probe table baked in the old limits,
        # so prepare(limits=...) must drop it and degrade on the rerun.
        capped = executor.prepare(
            query, limits=ResourceLimits(max_probe_build_rows=1)
        ).run()
        assert executor.ctx.degradations > 0
        assert capped.rows == baseline.rows

        # Relax back to unlimited: decorrelation comes back.
        before = executor.ctx.decorrelated_probes
        relaxed = executor.prepare(query, limits=None).run()
        assert executor.ctx.decorrelated_probes > before
        assert relaxed.rows == baseline.rows

    def test_equal_limits_are_a_noop(self):
        db = self._db()
        query = parse_sql("SELECT r.a FROM r, s WHERE r.a = s.c AND r.b = 1")
        limits = ResourceLimits(max_probe_table_bytes=1 << 30)
        executor = Executor(db, limits=limits)
        executor.prepare(query).run()
        bytes_before = executor.ctx.table_bytes
        assert bytes_before > 0
        # Same caps (a fresh but equal dataclass): state must survive.
        executor.prepare(query, limits=ResourceLimits(max_probe_table_bytes=1 << 30))
        assert executor.ctx.table_bytes == bytes_before


class TestJoinOrderAndExplain:
    def test_small_filtered_side_drives_first(self):
        rows_r = [(i, i % 3) for i in range(100)]
        rows_s = [(i, i % 5) for i in range(4)]
        db = Database(
            {
                "r": Relation(("a", "b"), rows_r),
                "s": Relation(("c", "d"), rows_s),
            }
        )
        executor = Executor(db)
        prepared = executor.prepare(
            parse_sql("SELECT r.a FROM r, s WHERE r.a = s.c")
        )
        prepared.run()
        plan = prepared.explain()
        scan_pos = plan.find("scan s")
        probe_pos = plan.find("hash probe r")
        assert scan_pos != -1 and probe_pos != -1, plan
        assert scan_pos < probe_pos, plan

    def test_explain_reports_estimates_and_actuals(self):
        db = Database(
            {
                "r": Relation(("a", "b"), [(1, 1), (2, 2)]),
                "s": Relation(("c", "d"), [(1, 1)]),
            }
        )
        executor = Executor(db)
        prepared = executor.prepare(
            parse_sql("SELECT r.a FROM r, s WHERE r.a = s.c")
        )
        before = prepared.explain()
        assert "[order est≈" in before
        prepared.run()
        after = prepared.explain()
        assert "actual" in after

    def test_explain_before_run_keeps_decorrelation(self):
        # explain() prepares inner blocks; that must not silently disable
        # hash decorrelation for the subsequent run.
        rows_r = [(i % 20, i % 7) for i in range(100)]
        rows_s = [(i % 20, i % 11) for i in range(100)]
        db = Database(
            {
                "r": Relation(("a", "b"), rows_r),
                "s": Relation(("c", "d"), rows_s),
            }
        )
        executor = Executor(db)
        prepared = executor.prepare(
            parse_sql(
                "SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE s.c = r.a)"
            )
        )
        prepared.explain()
        prepared.run()
        assert executor.ctx.decorrelated_probes > 0

    def test_single_table_keeps_streaming_order(self):
        db = Database({"r": Relation(("a", "b"), [(3, 1), (1, 2), (2, 3)])})
        result, _ = run_mode(db, "SELECT a FROM r WHERE a >= 1", True)
        assert result.rows == [(3,), (1,), (2,)]  # source order preserved
