"""Correlated-subquery decorrelation and probe memoization.

Regression tests for the engine's two probe-amortisation mechanisms:

* hash semi-/anti-join decorrelation for pure equi-correlated blocks
  (the shape ``rewrite_certain`` emits for null checks);
* memoized probing keyed on the correlated values for everything else
  (e.g. the ``x = outer.y OR x IS NULL`` residual shape).

Every optimised run must return a byte-identical :class:`Relation` to
the naive O(outer × inner) path, including under ``marked_nulls=True``
and with NULL-valued correlation keys.
"""

import random

import pytest

from repro.data import Database, Null, Relation
from repro.engine import Executor, execute_sql
from repro.sql.parser import parse_sql


def naive(db, sql, params=None, marked_nulls=False):
    return execute_sql(
        db, sql, params, marked_nulls=marked_nulls,
        memoize_probes=False, decorrelate=False,
    )


def optimised(db, sql, params=None, marked_nulls=False):
    return execute_sql(db, sql, params, marked_nulls=marked_nulls)


def run_counted(db, sql, params=None, **flags):
    executor = Executor(db, params, **flags)
    result = executor.execute(parse_sql(sql))
    return result, executor.ctx


@pytest.fixture
def skewed_db():
    """200 outer rows over only 5 distinct correlation keys, and an inner
    table whose correlated residual forces a scan per probe."""
    n = Null()
    outer = Relation(("k", "tag"), [(i % 5, i) for i in range(200)])
    inner = Relation(("k", "v"), [(i % 7, i) for i in range(70)] + [(n, -1)])
    return Database({"outer_t": outer, "inner_t": inner})


NOT_EXISTS_PROBE = (
    "SELECT tag FROM outer_t WHERE NOT EXISTS "
    "(SELECT * FROM inner_t WHERE inner_t.k = outer_t.k)"
)
NOT_EXISTS_RESIDUAL = (
    "SELECT tag FROM outer_t WHERE NOT EXISTS "
    "(SELECT * FROM inner_t WHERE inner_t.k = outer_t.k OR inner_t.k IS NULL)"
)


class TestDecorrelation:
    def test_pure_probe_not_exists_examines_fewer_rows(self, skewed_db):
        fast, fast_ctx = run_counted(skewed_db, NOT_EXISTS_PROBE)
        slow, slow_ctx = run_counted(
            skewed_db, NOT_EXISTS_PROBE, memoize_probes=False, decorrelate=False
        )
        assert fast.attributes == slow.attributes
        assert fast.rows == slow.rows
        assert fast_ctx.rows_examined < slow_ctx.rows_examined
        assert fast_ctx.probe_tables_built == 1
        assert fast_ctx.decorrelated_probes == 200
        assert fast_ctx.probe_build_rows > 0

    def test_multi_table_inner_block_decorrelates(self):
        """A join inside the subquery used to re-run once per outer row."""
        outer = Relation(("k",), [(i % 4, ) for i in range(100)])
        a = Relation(("k", "x"), [(i % 4, i) for i in range(40)])
        b = Relation(("x",), [(i, ) for i in range(0, 40, 2)])
        db = Database({"outer_t": outer, "a": a, "b": b})
        sql = (
            "SELECT k FROM outer_t WHERE EXISTS "
            "(SELECT * FROM a, b WHERE a.k = outer_t.k AND a.x = b.x)"
        )
        fast, fast_ctx = run_counted(db, sql)
        slow, slow_ctx = run_counted(
            db, sql, memoize_probes=False, decorrelate=False
        )
        assert fast.rows == slow.rows
        assert fast_ctx.rows_examined < slow_ctx.rows_examined
        assert fast_ctx.probe_tables_built == 1

    def test_residual_correlation_falls_back_to_memo(self, skewed_db):
        """`OR … IS NULL` correlation cannot hash-decorrelate; the memo
        cache amortises the 200 probes over the 5 distinct keys."""
        fast, fast_ctx = run_counted(skewed_db, NOT_EXISTS_RESIDUAL)
        slow, slow_ctx = run_counted(
            skewed_db, NOT_EXISTS_RESIDUAL, memoize_probes=False, decorrelate=False
        )
        assert fast.attributes == slow.attributes
        assert fast.rows == slow.rows
        assert fast_ctx.probe_tables_built == 0
        assert fast_ctx.probe_cache_misses == 5
        assert fast_ctx.probe_cache_hits == 195
        assert fast_ctx.rows_examined < slow_ctx.rows_examined

    def test_in_subquery_decorrelates(self, skewed_db):
        sql = (
            "SELECT tag FROM outer_t WHERE tag IN "
            "(SELECT v FROM inner_t WHERE inner_t.k = outer_t.k)"
        )
        fast, fast_ctx = run_counted(skewed_db, sql)
        slow, _ = run_counted(
            skewed_db, sql, memoize_probes=False, decorrelate=False
        )
        assert fast.rows == slow.rows
        assert fast_ctx.probe_tables_built == 1
        assert fast_ctx.decorrelated_probes == 200

    def test_not_in_subquery_memoizes(self, skewed_db):
        sql = (
            "SELECT tag FROM outer_t WHERE tag NOT IN "
            "(SELECT v FROM inner_t WHERE inner_t.k = outer_t.k OR inner_t.v < 0)"
        )
        fast, fast_ctx = run_counted(skewed_db, sql)
        slow, _ = run_counted(
            skewed_db, sql, memoize_probes=False, decorrelate=False
        )
        assert fast.rows == slow.rows
        assert fast_ctx.probe_cache_hits > 0

    def test_deeper_correlation_not_decorrelated_but_correct(self):
        """Two-level correlation (grandparent reference) must take the
        memo path, never the hash-table path."""
        db = Database(
            {
                "r": Relation(("a",), [(1,), (2,), (3,)]),
                "s": Relation(("a",), [(2,), (3,)]),
                "t": Relation(("a",), [(3,)]),
            }
        )
        sql = (
            "SELECT a FROM r WHERE EXISTS (SELECT * FROM s "
            "WHERE s.a = r.a AND EXISTS (SELECT * FROM t WHERE t.a = r.a))"
        )
        fast, fast_ctx = run_counted(db, sql)
        slow, _ = run_counted(db, sql, memoize_probes=False, decorrelate=False)
        assert fast.rows == slow.rows == [(3,)]


class TestNullKeys:
    """NULL correlation keys: `=` is UNKNOWN, so probes never match."""

    @pytest.fixture
    def null_key_db(self):
        n1, n2 = Null(), Null()
        return Database(
            {
                "r": Relation(("a",), [(1,), (n1,), (3,)]),
                "s": Relation(("a",), [(1,), (n1,), (n2,)]),
            }
        )

    QUERIES = [
        "SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE s.a = r.a)",
        "SELECT a FROM r WHERE NOT EXISTS (SELECT * FROM s WHERE s.a = r.a)",
        "SELECT a FROM r WHERE a IN (SELECT a FROM s WHERE s.a = r.a)",
        "SELECT a FROM r WHERE a NOT IN (SELECT a FROM s WHERE s.a = r.a)",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    @pytest.mark.parametrize("marked", [False, True])
    def test_equivalence_with_null_keys(self, null_key_db, sql, marked):
        expected = naive(null_key_db, sql, marked_nulls=marked)
        actual = optimised(null_key_db, sql, marked_nulls=marked)
        assert actual.attributes == expected.attributes
        assert actual.rows == expected.rows

    def test_marked_null_probe_matches_same_null(self, null_key_db):
        """Under marked-null semantics ⊥1 = ⊥1 is TRUE, so the shared
        null row must survive the semi-join in both evaluation paths."""
        sql = self.QUERIES[0]
        result = optimised(null_key_db, sql, marked_nulls=True)
        assert naive(null_key_db, sql, marked_nulls=True).rows == result.rows
        assert len(result.rows) == 2  # (1,) and the shared marked null


EQUIVALENCE_CORPUS = [
    "SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE s.a = r.a)",
    "SELECT a FROM r WHERE NOT EXISTS (SELECT * FROM s WHERE s.a = r.a)",
    "SELECT a FROM r WHERE NOT EXISTS "
    "(SELECT * FROM s WHERE s.a = r.a OR s.a IS NULL)",
    "SELECT a FROM r WHERE a IN (SELECT b FROM s WHERE s.a = r.a)",
    "SELECT a FROM r WHERE a NOT IN (SELECT b FROM s WHERE s.a = r.a)",
    "SELECT r.a, r.b FROM r WHERE EXISTS "
    "(SELECT * FROM s WHERE s.a = r.a AND s.b = r.b)",
    "SELECT a FROM r WHERE EXISTS "
    "(SELECT * FROM s WHERE s.a = r.a AND s.b > 1)",
    "SELECT a FROM r WHERE NOT EXISTS "
    "(SELECT * FROM s WHERE s.a = r.a AND NOT EXISTS "
    "(SELECT * FROM t WHERE t.a = s.b))",
]


class TestRandomisedEquivalence:
    """Optimised evaluation is byte-identical to naive on random
    incomplete databases, in both null semantics."""

    def random_db(self, rng):
        def cell():
            if rng.random() < 0.25:
                return Null(rng.choice([100, 101, 102]))  # repeatable marks
            return rng.choice([1, 2, 3])

        def rows(width, count):
            return [tuple(cell() for _ in range(width)) for _ in range(count)]

        return Database(
            {
                "r": Relation(("a", "b"), rows(2, rng.randint(1, 6))),
                "s": Relation(("a", "b"), rows(2, rng.randint(1, 6))),
                "t": Relation(("a",), rows(1, rng.randint(1, 4))),
            }
        )

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("marked", [False, True])
    def test_corpus(self, seed, marked):
        rng = random.Random(seed)
        db = self.random_db(rng)
        for sql in EQUIVALENCE_CORPUS:
            expected = naive(db, sql, marked_nulls=marked)
            actual = optimised(db, sql, marked_nulls=marked)
            assert actual.attributes == expected.attributes, sql
            assert actual.rows == expected.rows, sql
