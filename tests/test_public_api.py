"""The package-level public API (what README and docstrings promise)."""

import repro
from repro import (
    Database,
    DatabaseSchema,
    Null,
    Relation,
    RewriteOptions,
    certain_answers_with_nulls,
    certain_rewrite,
    execute_sql,
    explain_sql,
    make_schema,
    parse_sql,
    rewrite_certain,
    to_sql,
    translate_improved,
    translate_libkin,
)


def test_version():
    assert repro.__version__


def test_all_names_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_promised_names_are_the_package_attributes():
    assert RewriteOptions is repro.RewriteOptions
    assert certain_answers_with_nulls is repro.certain_answers_with_nulls
    assert explain_sql is repro.explain_sql
    assert translate_improved is repro.translate_improved
    assert translate_libkin is repro.translate_libkin


def test_readme_quickstart():
    db = Database(
        {
            "r": Relation(("a",), [(1,)]),
            "s": Relation(("a",), [(Null(),)]),
        }
    )
    query = "SELECT a FROM r WHERE NOT EXISTS (SELECT * FROM s WHERE s.a = r.a)"
    assert list(execute_sql(db, query)) == [(1,)]

    schema = DatabaseSchema()
    schema.add(make_schema("r", [("a", "int")]))
    schema.add(make_schema("s", [("a", "int")]))
    q_plus = certain_rewrite(query, schema)
    assert list(execute_sql(db, q_plus)) == []
    assert "IS NULL" in to_sql(q_plus)


def test_certain_rewrite_accepts_ast():
    schema = DatabaseSchema()
    schema.add(make_schema("r", [("a", "int")]))
    ast_query = parse_sql("SELECT a FROM r")
    assert certain_rewrite(ast_query, schema) == rewrite_certain(ast_query, schema)


def test_module_docstring_example_runs():
    import doctest

    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 2
