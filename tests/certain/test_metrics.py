"""Precision/recall bookkeeping."""

import pytest

from repro.certain.metrics import compare_answers, precision, recall


class TestPrecisionRecall:
    def test_precision(self):
        assert precision([(1,), (2,)], [(1,)]) == 0.5
        assert precision([], [(1,)]) == 1.0
        assert precision([(1,)], []) == 0.0

    def test_recall(self):
        assert recall([(1,)], [(1,), (2,)]) == 0.5
        assert recall([(1,)], []) == 1.0
        assert recall([], [(1,)]) == 0.0


class TestAnswerComparison:
    def test_compare_answers(self):
        cmp = compare_answers(
            sql_rows=[(1,), (2,), (3,)],
            rewritten_rows=[(2,), (3,)],
            false_positive_rows=[(1,)],
        )
        assert cmp.sql_returned == 3
        assert cmp.sql_false_positives == 1
        assert cmp.rewritten_returned == 2
        assert cmp.missed_certain == 0
        assert cmp.sql_precision == pytest.approx(2 / 3)
        assert cmp.rewritten_recall == 1.0

    def test_missed_certain_lowers_recall(self):
        cmp = compare_answers(
            sql_rows=[(1,), (2,)],
            rewritten_rows=[],
            false_positive_rows=[],
        )
        assert cmp.missed_certain == 2
        assert cmp.rewritten_recall == 0.0

    def test_flagged_rows_outside_sql_are_ignored(self):
        cmp = compare_answers(
            sql_rows=[(1,)],
            rewritten_rows=[(1,)],
            false_positive_rows=[(9,)],
        )
        assert cmp.sql_false_positives == 0
        assert cmp.rewritten_recall == 1.0

    def test_all_false_positive_case(self):
        """Q2's typical situation: everything SQL returned was wrong."""
        cmp = compare_answers(
            sql_rows=[(1,), (2,)],
            rewritten_rows=[],
            false_positive_rows=[(1,), (2,)],
        )
        assert cmp.sql_precision == 0.0
        assert cmp.rewritten_recall == 1.0  # no certain answers to miss
