"""Pruned brute-force certain-answer search vs the exhaustive baseline.

The pruned search seeds candidates from the first possible world's
answer set (only tuples whose image lies there can be certain) and
abandons each candidate at its first rejecting world.  These tests pin
down (a) result identity with the exhaustive enumeration and (b) that
the pruning actually reduces work, via :data:`LAST_SEARCH`.
"""

import random

import pytest

from repro.algebra import (
    Difference,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    eq,
)
from repro.certain import certain_answers_with_nulls
from repro.certain import bruteforce
from repro.data import Database, Null, Relation


def both_searches(query, db, **kwargs):
    pruned = certain_answers_with_nulls(query, db, prune=True, **kwargs)
    pruned_stats = bruteforce.LAST_SEARCH
    exhaustive = certain_answers_with_nulls(query, db, prune=False, **kwargs)
    exhaustive_stats = bruteforce.LAST_SEARCH
    return pruned, pruned_stats, exhaustive, exhaustive_stats


class TestEquivalence:
    def test_difference_query(self, intro_db):
        q = Difference(RelationRef("R"), RelationRef("S"))
        pruned, _, exhaustive, _ = both_searches(q, intro_db)
        assert pruned.attributes == exhaustive.attributes
        assert pruned.rows == exhaustive.rows

    def test_identity_keeps_null_tuples(self):
        n = Null()
        db = Database({"R": Relation(("A", "B"), [(1, n), (2, 3)])})
        pruned, _, exhaustive, _ = both_searches(RelationRef("R"), db)
        assert pruned.rows == exhaustive.rows
        assert set(pruned.rows) == {(1, n), (2, 3)}

    def test_projection_and_selection(self):
        n = Null()
        db = Database({"R": Relation(("A", "B"), [(n, 1), (2, 1), (2, n)])})
        q = Projection(Selection(RelationRef("R"), eq("B", 1)), ("A",))
        pruned, _, exhaustive, _ = both_searches(q, db)
        assert pruned.rows == exhaustive.rows

    @pytest.mark.parametrize("seed", range(8))
    def test_random_instances(self, seed):
        rng = random.Random(seed)

        def cell():
            return Null() if rng.random() < 0.3 else rng.choice([1, 2])

        db = Database(
            {
                "R": Relation(
                    ("A", "B"),
                    [(cell(), cell()) for _ in range(rng.randint(1, 3))],
                ),
                "S": Relation(
                    ("A",), [(cell(),) for _ in range(rng.randint(1, 2))]
                ),
            }
        )
        queries = [
            RelationRef("R"),
            Difference(Projection(RelationRef("R"), ("A",)), RelationRef("S")),
            Projection(
                Selection(
                    Product(RelationRef("R"), Rename(RelationRef("S"), {"A": "X"})),
                    eq("A", "X"),
                ),
                ("B",),
            ),
        ]
        for q in queries:
            pruned, _, exhaustive, _ = both_searches(q, db)
            assert pruned.attributes == exhaustive.attributes
            assert pruned.rows == exhaustive.rows


class TestSearchStats:
    def test_pruning_considers_fewer_candidates(self, intro_db):
        q = Difference(RelationRef("R"), RelationRef("S"))
        _, pruned_stats, _, exhaustive_stats = both_searches(q, intro_db)
        assert pruned_stats.pruned and not exhaustive_stats.pruned
        assert (
            pruned_stats.exhaustive_candidates
            == exhaustive_stats.exhaustive_candidates
            == exhaustive_stats.candidates_considered
        )
        assert (
            pruned_stats.candidates_considered
            < pruned_stats.exhaustive_candidates
        )
        # Total membership tests (verification checks plus sample-filter
        # probes, which are world checks too): seeding must save work.
        assert (
            pruned_stats.world_checks + pruned_stats.score_probes
            < exhaustive_stats.world_checks + exhaustive_stats.score_probes
        )

    def test_seeding_is_strict_on_wide_arity(self):
        """Arity-2 output over a 5-element domain: the exhaustive search
        pays 25 candidates, the seeded one only the first world's rows'
        preimages."""
        n = Null()
        db = Database(
            {"R": Relation(("A", "B"), [(1, 2), (3, n), (4, 5)])}
        )
        _, stats, _, _ = both_searches(RelationRef("R"), db)
        assert stats.arity == 2
        assert stats.exhaustive_candidates == len(db.active_domain()) ** 2
        assert stats.candidates_considered < stats.exhaustive_candidates

    def test_stats_rebound_per_call(self, intro_db):
        certain_answers_with_nulls(RelationRef("R"), intro_db)
        first = bruteforce.LAST_SEARCH
        certain_answers_with_nulls(RelationRef("S"), intro_db)
        assert bruteforce.LAST_SEARCH is not first
