"""Brute-force certain answers: the ground truth layer itself."""

from repro.algebra import Difference, Projection, RelationRef, Selection, eq
from repro.certain import (
    certain_answers,
    certain_answers_with_nulls,
    false_negatives,
    false_positives,
    possible_answer_union,
    represents_potential_answers,
)
from repro.data import Database, Null, Relation


class TestIntroExample:
    def test_difference_with_null_has_no_certain_answers(self, intro_db):
        q = Difference(RelationRef("R"), RelationRef("S"))
        assert certain_answers_with_nulls(q, intro_db).rows == []

    def test_difference_without_null_keeps_answer(self):
        db = Database(
            {
                "R": Relation(("A",), [(1,)]),
                "S": Relation(("A",), [(2,)]),
            }
        )
        q = Difference(RelationRef("R"), RelationRef("S"))
        assert certain_answers_with_nulls(q, db).rows == [(1,)]


class TestCertainWithNulls:
    def test_identity_keeps_null_tuples(self):
        """Section 2's example: R = {(1,⊥),(2,3)} — both tuples certain."""
        n = Null()
        db = Database({"R": Relation(("A", "B"), [(1, n), (2, 3)])})
        result = certain_answers_with_nulls(RelationRef("R"), db)
        assert set(result.rows) == {(1, n), (2, 3)}

    def test_classical_certain_drops_null_tuples(self):
        n = Null()
        db = Database({"R": Relation(("A", "B"), [(1, n), (2, 3)])})
        result = certain_answers(RelationRef("R"), db)
        assert result.rows == [(2, 3)]

    def test_selection_on_null_attribute(self):
        n = Null()
        db = Database({"R": Relation(("A",), [(n,), (1,)])})
        q = Selection(RelationRef("R"), eq("A", 1))
        # The null could be anything, so only (1,) is certain.
        assert certain_answers_with_nulls(q, db).rows == [(1,)]

    def test_projection(self):
        n = Null()
        db = Database({"R": Relation(("A", "B"), [(1, n)])})
        q = Projection(RelationRef("R"), ("A",))
        assert certain_answers_with_nulls(q, db).rows == [(1,)]

    def test_certain_null_from_join_style_reasoning(self):
        # R = {⊥}; query R itself: the null tuple is certainly in R.
        n = Null()
        db = Database({"R": Relation(("A",), [(n,)])})
        assert certain_answers_with_nulls(RelationRef("R"), db).rows == [(n,)]


class TestPossibleAnswers:
    def test_union_over_valuations(self):
        n = Null()
        db = Database({"R": Relation(("A",), [(n,), (1,)])})
        q = Selection(RelationRef("R"), eq("A", 1))
        everything = possible_answer_union(q, db)
        assert (1,) in everything
        assert len(everything) == 1  # only constant tuples appear in worlds

    def test_represents_potential_answers(self):
        n = Null()
        db = Database({"R": Relation(("A",), [(n,), (1,)])})
        q = Selection(RelationRef("R"), eq("A", 1))
        good = Relation(("A",), [(n,), (1,)])
        bad = Relation(("A",), [(1,)])  # misses the world where v(n) = 1? no —
        # (1,) is v(n)'s image only when v(n)=1, but then Q(v(D)) = {(1,)} ⊆ {(1,)}.
        # A truly bad candidate is the empty set:
        empty = Relation(("A",), [])
        assert represents_potential_answers(good, q, db)
        assert represents_potential_answers(bad, q, db)
        assert not represents_potential_answers(empty, q, db)


class TestErrorSets:
    def test_false_positive_and_negative_extraction(self):
        returned = Relation(("A",), [(1,), (2,)])
        certain = Relation(("A",), [(2,), (3,)])
        assert false_positives(returned, certain) == [(1,)]
        assert false_negatives(returned, certain) == [(3,)]
