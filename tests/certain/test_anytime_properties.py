"""Property tests pinning the anytime brute-force search's guarantees.

Three contracts make a deadline-cut ``certain_answers_with_nulls``
usable as an anytime oracle, and Hypothesis checks them over random
small incomplete databases and queries:

* **soundness** — any deadline cut (any scope, any order) returns a
  subset of the full ``cert(Q, D)``: partial results never contain a
  false positive;
* **monotonicity** — under a deterministic clock, growing the deadline
  only ever grows the result (each cut is a subset of every later cut);
* **order-independence at completion** — best-first with no deadline is
  row-identical to the eager order: exploration order decides *which*
  sound subset survives a cut, never the complete answer.

The monotonicity property cannot be stated over the wall clock (a lucky
scheduler could let a shorter deadline verify more), so it runs against
the same fake-clock pattern as
``tests/robustness/test_limits.py``: each ``time.monotonic()`` read
advances a counter, making every run bit-deterministic.
"""

import pytest

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra import (
    Difference,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    eq,
)
from repro.certain import bruteforce
from repro.certain.bruteforce import certain_answers_with_nulls
from repro.data import Database, Null, Relation

# A fixed pool of labelled nulls: equality is by label, so reusing the
# objects across examples is safe and keeps shrunk examples readable.
NULLS = [Null("h1"), Null("h2")]
VALUES = [1, 2, NULLS[0], NULLS[1]]

cells = st.sampled_from(VALUES)


@st.composite
def databases(draw):
    r_rows = draw(
        st.lists(st.tuples(cells, cells), min_size=1, max_size=3)
    )
    s_rows = draw(st.lists(st.tuples(cells), min_size=0, max_size=2))
    return Database(
        {
            "R": Relation(("A", "B"), r_rows),
            "S": Relation(("A",), s_rows),
        }
    )


QUERIES = [
    RelationRef("R"),
    Projection(RelationRef("R"), ("A",)),
    Selection(RelationRef("R"), eq("B", 1)),
    Selection(RelationRef("R"), eq("A", "B")),
    Difference(Projection(RelationRef("R"), ("A",)), RelationRef("S")),
    Projection(
        Selection(
            Product(RelationRef("R"), Rename(RelationRef("S"), {"A": "X"})),
            eq("A", "X"),
        ),
        ("B",),
    ),
]

queries = st.sampled_from(QUERIES)
orders = st.sampled_from(["best-first", "eager"])


class FakeTime:
    """Deterministic stand-in for ``bruteforce.time``: every
    ``monotonic()`` read advances one tick, so deadlines are measured in
    clock reads rather than seconds."""

    def __init__(self):
        self.now = 0.0

    def monotonic(self):
        self.now += 1.0
        return self.now


@pytest.fixture(autouse=True)
def _real_clock_guard():
    """Fail loudly if a test leaks a fake clock into the module."""
    import time as real_time

    assert bruteforce.time is real_time
    yield
    assert bruteforce.time is real_time


common = settings(
    max_examples=40,
    deadline=None,  # wall-clock per-example limits misfire under load
    suppress_health_check=[HealthCheck.too_slow],
)


@common
@given(
    db=databases(),
    query=queries,
    order=orders,
    deadline=st.sampled_from([0.0, 1e-4, 1e-3, 5e-3]),
    scope=st.sampled_from(["call", "search"]),
)
def test_deadline_cut_is_sound_subset(db, query, order, deadline, scope):
    full = certain_answers_with_nulls(query, db, order=order)
    assert bruteforce.LAST_SEARCH.complete
    partial = certain_answers_with_nulls(
        query, db, order=order, deadline=deadline, deadline_scope=scope
    )
    stats = bruteforce.LAST_SEARCH
    assert partial.attributes == full.attributes
    assert set(partial.rows) <= set(full.rows)  # no false positives, ever
    if stats.complete:
        # A cut that never fired must not change the answer.
        assert partial.rows == full.rows
    assert stats.emitted == len(partial.rows)


@common
@given(db=databases(), query=queries, order=orders)
def test_results_grow_monotonically_with_deadline(db, query, order):
    full = certain_answers_with_nulls(query, db, order=order)
    import time as real_time

    previous = set()
    try:
        # 1 tick buys one clock read: this ladder sweeps the cutoff from
        # "inside world evaluation" to "past the whole search".
        for deadline in (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 256.0, 4096.0):
            bruteforce.time = FakeTime()
            rows = set(
                certain_answers_with_nulls(
                    query, db, order=order, deadline=deadline
                ).rows
            )
            assert previous <= rows, (
                f"deadline {deadline}: lost rows {previous - rows}"
            )
            assert rows <= set(full.rows)
            previous = rows
    finally:
        bruteforce.time = real_time
    # The top of the ladder is past every clock read the search makes.
    assert previous == set(full.rows)


@common
@given(db=databases(), query=queries)
def test_best_first_completion_matches_eager(db, query):
    best_first = certain_answers_with_nulls(query, db, order="best-first")
    bf_stats = bruteforce.LAST_SEARCH
    eager = certain_answers_with_nulls(query, db, order="eager")
    eager_stats = bruteforce.LAST_SEARCH
    assert bf_stats.complete and eager_stats.complete
    assert best_first.attributes == eager.attributes
    assert best_first.rows == eager.rows  # canonical order: identical lists
    # Sampling only ever *refutes*; both orders verify the same answers.
    assert bf_stats.emitted == eager_stats.emitted
