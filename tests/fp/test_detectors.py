"""False-positive detectors: hand-crafted scenarios per query."""

import datetime

import pytest

from repro.data import Database, Null, Relation
from repro.fp.detectors import (
    count_false_positives,
    detect_q1_false_positive,
    detect_q2_false_positive,
    detect_q3_false_positive,
    detect_q4_false_positive,
    detector_for,
)

D = datetime.date


def mini_db(**overrides):
    """A tiny TPC-H-shaped database, overridable per test."""
    tables = {
        "lineitem": Relation(
            ("l_orderkey", "l_partkey", "l_suppkey", "l_commitdate", "l_receiptdate"),
            [],
        ),
        "orders": Relation(("o_orderkey", "o_custkey"), []),
        "part": Relation(("p_partkey", "p_name"), []),
        "supplier": Relation(("s_suppkey", "s_nationkey"), []),
        "nation": Relation(("n_nationkey", "n_name"), [(1, "FRANCE"), (2, "PERU")]),
    }
    tables.update(overrides)
    return Database(tables)


class TestQ1:
    COLS = ("l_orderkey", "l_partkey", "l_suppkey", "l_commitdate", "l_receiptdate")

    def test_null_supplier_late_delivery_flags(self):
        db = mini_db(
            lineitem=Relation(
                self.COLS,
                [(100, 1, Null(), D(1995, 1, 1), D(1995, 2, 1))],  # late, unknown supp
            )
        )
        assert detect_q1_false_positive({}, db, (7, 100))

    def test_null_dates_flag(self):
        db = mini_db(
            lineitem=Relation(self.COLS, [(100, 1, 8, Null(), D(1995, 1, 1))])
        )
        assert detect_q1_false_positive({}, db, (7, 100))

    def test_same_supplier_not_a_counterexample(self):
        db = mini_db(
            lineitem=Relation(self.COLS, [(100, 1, 7, D(1995, 1, 1), D(1995, 2, 1))])
        )
        assert not detect_q1_false_positive({}, db, (7, 100))

    def test_other_supplier_on_time_not_flagged(self):
        db = mini_db(
            lineitem=Relation(self.COLS, [(100, 1, 8, D(1995, 3, 1), D(1995, 2, 1))])
        )
        assert not detect_q1_false_positive({}, db, (7, 100))

    def test_other_order_ignored(self):
        db = mini_db(
            lineitem=Relation(self.COLS, [(999, 1, Null(), Null(), Null())])
        )
        assert not detect_q1_false_positive({}, db, (7, 100))


class TestQ2:
    def test_null_custkey_flags_everything(self):
        db = mini_db(orders=Relation(("o_orderkey", "o_custkey"), [(1, Null())]))
        assert detect_q2_false_positive({}, db, (5, 1))

    def test_complete_orders_flag_nothing(self):
        db = mini_db(orders=Relation(("o_orderkey", "o_custkey"), [(1, 5)]))
        assert not detect_q2_false_positive({}, db, (5, 1))


class TestQ3:
    def test_null_supplier_on_order_flags(self):
        db = mini_db(
            lineitem=Relation(
                ("l_orderkey", "l_partkey", "l_suppkey", "l_commitdate", "l_receiptdate"),
                [(100, 1, Null(), D(1995, 1, 1), D(1995, 1, 2))],
            )
        )
        assert detect_q3_false_positive({"supp_key": 7}, db, (100,))

    def test_known_suppliers_not_flagged(self):
        db = mini_db(
            lineitem=Relation(
                ("l_orderkey", "l_partkey", "l_suppkey", "l_commitdate", "l_receiptdate"),
                [(100, 1, 7, D(1995, 1, 1), D(1995, 1, 2))],
            )
        )
        assert not detect_q3_false_positive({"supp_key": 7}, db, (100,))

    def test_null_on_other_order_ignored(self):
        db = mini_db(
            lineitem=Relation(
                ("l_orderkey", "l_partkey", "l_suppkey", "l_commitdate", "l_receiptdate"),
                [(999, 1, Null(), D(1995, 1, 1), D(1995, 1, 2))],
            )
        )
        assert not detect_q3_false_positive({"supp_key": 7}, db, (100,))


class TestQ4:
    PARAMS = {"color": "red", "nation": "FRANCE"}
    LCOLS = ("l_orderkey", "l_partkey", "l_suppkey", "l_commitdate", "l_receiptdate")

    def test_null_part_name_and_null_nation_flags(self):
        db = mini_db(
            lineitem=Relation(self.LCOLS, [(100, 1, 7, None, None)]),
            part=Relation(("p_partkey", "p_name"), [(1, Null())]),
            supplier=Relation(("s_suppkey", "s_nationkey"), [(7, Null())]),
        )
        assert detect_q4_false_positive(self.PARAMS, db, (100,))

    def test_matching_name_with_nation_match_flags(self):
        db = mini_db(
            lineitem=Relation(self.LCOLS, [(100, 1, 7, None, None)]),
            part=Relation(("p_partkey", "p_name"), [(1, "dark red lace")]),
            supplier=Relation(("s_suppkey", "s_nationkey"), [(7, 1)]),  # FRANCE
        )
        assert detect_q4_false_positive(self.PARAMS, db, (100,))

    def test_wrong_nation_not_flagged(self):
        db = mini_db(
            lineitem=Relation(self.LCOLS, [(100, 1, 7, None, None)]),
            part=Relation(("p_partkey", "p_name"), [(1, "dark red lace")]),
            supplier=Relation(("s_suppkey", "s_nationkey"), [(7, 2)]),  # PERU
        )
        assert not detect_q4_false_positive(self.PARAMS, db, (100,))

    def test_null_partkey_scans_all_parts(self):
        db = mini_db(
            lineitem=Relation(self.LCOLS, [(100, Null(), 7, None, None)]),
            part=Relation(("p_partkey", "p_name"), [(2, "light red linen")]),
            supplier=Relation(("s_suppkey", "s_nationkey"), [(7, 1)]),
        )
        assert detect_q4_false_positive(self.PARAMS, db, (100,))

    def test_part_match_without_supplier_match_not_flagged(self):
        db = mini_db(
            lineitem=Relation(self.LCOLS, [(100, 1, 7, None, None)]),
            part=Relation(("p_partkey", "p_name"), [(1, "dark red lace")]),
            supplier=Relation(("s_suppkey", "s_nationkey"), []),
        )
        assert not detect_q4_false_positive(self.PARAMS, db, (100,))


class TestRegistry:
    def test_detector_for(self):
        assert detector_for("Q1") is detect_q1_false_positive
        with pytest.raises(KeyError):
            detector_for("Q5")

    def test_count_false_positives(self):
        db = mini_db(orders=Relation(("o_orderkey", "o_custkey"), [(1, Null())]))
        assert count_false_positives("Q2", {}, db, [(5, 1), (6, 2)]) == 2
