"""Detector soundness: a flagged answer is never a certain answer.

The detectors only claim a *lower bound* on false positives; here we
verify the lower bound is valid by cross-checking against brute-force
certain answers on miniature instances (few constants, few nulls, so
valuation enumeration stays tractable).
"""

import random

import pytest

from repro.certain import certain_answers_with_nulls
from repro.data import Database, Null, Relation
from repro.engine import execute_sql
from repro.fp.detectors import detect_q2_false_positive, detect_q3_false_positive
from repro.sql.parser import parse_sql
from repro.sql.to_algebra import sql_to_algebra

Q3_MINI = """
SELECT o_orderkey FROM orders
WHERE NOT EXISTS (
  SELECT * FROM lineitem
  WHERE l_orderkey = o_orderkey AND l_suppkey <> $supp_key )
"""

Q2_MINI = """
SELECT c_custkey FROM customer
WHERE NOT EXISTS (SELECT * FROM orders WHERE o_custkey = c_custkey)
"""


def q3_database(rng):
    orders = Relation(("o_orderkey",), [(100,), (101,)])
    rows = []
    for okey in (100, 101):
        for _ in range(rng.randint(1, 2)):
            supp = Null() if rng.random() < 0.4 else rng.choice([1, 2])
            rows.append((okey, supp))
    lineitem = Relation(("l_orderkey", "l_suppkey"), rows)
    return Database({"orders": orders, "lineitem": lineitem})


@pytest.mark.parametrize("seed", range(8))
def test_q3_detector_sound(seed):
    rng = random.Random(seed)
    db = q3_database(rng)
    params = {"supp_key": 1}
    answers = execute_sql(db, Q3_MINI, params)
    algebra = sql_to_algebra(parse_sql(Q3_MINI), db, params=params)
    certain = set(certain_answers_with_nulls(algebra, db).rows)
    for answer in answers.rows:
        if detect_q3_false_positive(params, db, answer):
            assert answer not in certain, (
                f"detector flagged a certain answer {answer} (seed {seed})"
            )


@pytest.mark.parametrize("seed", range(6))
def test_q2_detector_sound(seed):
    rng = random.Random(100 + seed)
    customer = Relation(("c_custkey",), [(1,), (2,)])
    rows = []
    for okey in range(rng.randint(1, 3)):
        cust = Null() if rng.random() < 0.4 else rng.choice([1, 2])
        rows.append((cust,))
    orders = Relation(("o_custkey",), rows)
    db = Database({"customer": customer, "orders": orders})
    answers = execute_sql(db, Q2_MINI)
    algebra = sql_to_algebra(parse_sql(Q2_MINI), db)
    certain = set(certain_answers_with_nulls(algebra, db).rows)
    for answer in answers.rows:
        if detect_q2_false_positive({}, db, answer):
            assert answer not in certain


@pytest.mark.parametrize("seed", range(4))
def test_detectors_find_real_false_positives(seed):
    """Completeness spot-check: on instances where SQL *does* return
    non-certain answers, the Q3 detector flags at least one of them."""
    rng = random.Random(200 + seed)
    db = q3_database(rng)
    params = {"supp_key": 1}
    answers = set(execute_sql(db, Q3_MINI, params).rows)
    algebra = sql_to_algebra(parse_sql(Q3_MINI), db, params=params)
    certain = set(certain_answers_with_nulls(algebra, db).rows)
    actual_fps = answers - certain
    if actual_fps:
        flagged = {
            a for a in answers if detect_q3_false_positive(params, db, a)
        }
        assert flagged & actual_fps
