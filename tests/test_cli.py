"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestRewriteCommand:
    def test_rewrites_q3(self, capsys):
        sql = (
            "SELECT o_orderkey FROM orders WHERE NOT EXISTS "
            "(SELECT * FROM lineitem WHERE l_orderkey = o_orderkey "
            "AND l_suppkey <> $supp_key)"
        )
        assert main(["rewrite", sql]) == 0
        out = capsys.readouterr().out
        assert "l_suppkey IS NULL" in out

    def test_split_option(self, capsys):
        sql = (
            "SELECT c_custkey FROM customer WHERE NOT EXISTS "
            "(SELECT * FROM orders WHERE o_custkey = c_custkey)"
        )
        assert main(["rewrite", "--split", "never", sql]) == 0
        out = capsys.readouterr().out
        assert out.count("NOT EXISTS") == 1

    def test_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("SELECT o_orderkey FROM orders"))
        assert main(["rewrite"]) == 0
        assert "SELECT" in capsys.readouterr().out


class TestExplainCommand:
    def test_named_query(self, capsys):
        assert main(["explain", "Q3", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "cost" in out and "orders" in out

    def test_ad_hoc_sql(self, capsys):
        assert main(["explain", "SELECT o_orderkey FROM orders", "--scale", "0.05"]) == 0
        assert "scan orders" in capsys.readouterr().out


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("figure1", "figure4", "table1", "section5", "recall",
                        "rewrite", "explain"):
            assert command in text

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
