"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestRewriteCommand:
    def test_rewrites_q3(self, capsys):
        sql = (
            "SELECT o_orderkey FROM orders WHERE NOT EXISTS "
            "(SELECT * FROM lineitem WHERE l_orderkey = o_orderkey "
            "AND l_suppkey <> $supp_key)"
        )
        assert main(["rewrite", sql]) == 0
        out = capsys.readouterr().out
        assert "l_suppkey IS NULL" in out

    def test_split_option(self, capsys):
        sql = (
            "SELECT c_custkey FROM customer WHERE NOT EXISTS "
            "(SELECT * FROM orders WHERE o_custkey = c_custkey)"
        )
        assert main(["rewrite", "--split", "never", sql]) == 0
        out = capsys.readouterr().out
        assert out.count("NOT EXISTS") == 1

    def test_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("SELECT o_orderkey FROM orders"))
        assert main(["rewrite"]) == 0
        assert "SELECT" in capsys.readouterr().out


class TestExplainCommand:
    def test_named_query(self, capsys):
        assert main(["explain", "Q3", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "cost" in out and "orders" in out

    def test_ad_hoc_sql(self, capsys):
        assert main(["explain", "SELECT o_orderkey FROM orders", "--scale", "0.05"]) == 0
        assert "scan orders" in capsys.readouterr().out


class TestLintCommand:
    def test_unsound_named_query_exits_1(self, capsys):
        assert main(["lint", "Q1"]) == 1
        out = capsys.readouterr().out
        assert "verdict: UNSOUND" in out
        assert "SA101" in out

    def test_rewritten_query_exits_0(self, capsys):
        assert main(["lint", "Q3+"]) == 0
        out = capsys.readouterr().out
        assert "verdict: suspect" in out

    def test_exit_code_is_worst_across_queries(self, capsys):
        assert main(["lint", "Q3+", "Q1"]) == 1

    def test_json_format(self, capsys):
        import json

        assert main(["lint", "Q1", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "unsound"
        assert any(d["rule"] == "SA101" for d in payload["diagnostics"])

    def test_json_format_multiple_queries(self, capsys):
        import json

        assert main(["lint", "Q1", "Q3+", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 2

    def test_literal_sql(self, capsys):
        sql = (
            "SELECT o_orderkey FROM orders WHERE NOT EXISTS "
            "(SELECT * FROM lineitem WHERE l_suppkey <> $k)"
        )
        assert main(["lint", sql]) == 1
        assert "SA101" in capsys.readouterr().out

    def test_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("SELECT o_orderkey FROM orders"))
        assert main(["lint"]) == 0
        assert "certified" in capsys.readouterr().out

    def test_syntax_error_exits_2(self, capsys):
        assert main(["lint", "SELEC oops"]) == 2
        assert capsys.readouterr().err


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("figure1", "figure4", "table1", "section5", "recall",
                        "rewrite", "explain", "lint"):
            assert command in text

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["frobnicate"])
        assert exc.value.code == 2

    def test_unknown_option_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["lint", "Q1", "--no-such-flag"])
        assert exc.value.code == 2

    def test_bad_format_choice_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["lint", "Q1", "--format", "yaml"])
        assert exc.value.code == 2
