"""The analyzer on the paper's Q1–Q4 and their rewritings.

Pins the correspondence between static findings and the dynamic
false-positive detectors of Section 4: every query the paper measures
false positives for is flagged ``unsound``, with the rule set predicted
by :data:`repro.fp.detectors.ANALYZER_RULES`.
"""

import pytest

from repro.analysis import SUSPECT, UNSOUND, analyze_sql, fragment_diagnostics
from repro.fp.detectors import ANALYZER_RULES
from repro.sql.parser import parse_sql
from repro.sql.rewrite import RewriteError, rewrite_certain
from repro.tpch.queries import QUERIES
from repro.tpch.schema import tpch_schema

SCHEMA = tpch_schema()


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_original_queries_are_unsound(name):
    report = analyze_sql(QUERIES[name][0], SCHEMA)
    assert report.verdict == UNSOUND


@pytest.mark.parametrize("name", sorted(ANALYZER_RULES))
def test_rules_match_fp_detectors(name):
    """The rules that fire are exactly the shapes the detectors exploit."""
    report = analyze_sql(QUERIES[name][0], SCHEMA)
    fired = {d.rule for d in report.unsound}
    assert set(ANALYZER_RULES[name]) <= fired


@pytest.mark.parametrize("name", ["Q1", "Q3"])
def test_inline_escape_rewrites_are_not_unsound(name):
    """Q1+/Q3+ carry their OR … IS NULL escapes inline, which the
    analyzer recognises: no false-positive hazard remains, only the
    sound-but-incomplete SA203 residue."""
    report = analyze_sql(QUERIES[name][1], SCHEMA)
    assert report.verdict == SUSPECT
    assert report.unsound == []


@pytest.mark.parametrize("name", ["Q2", "Q4"])
def test_block_compensated_rewrites_stay_flagged(name):
    """Q2+/Q4+ compensate across *blocks* (split NOT EXISTS conjunctions,
    UNION views), which the per-comparison escape recognition does not
    model — the analyzer stays conservative and keeps flagging them.
    Documented behaviour, pinned here."""
    report = analyze_sql(QUERIES[name][1], SCHEMA)
    assert report.verdict == UNSOUND


def test_q1_finding_points_at_the_comparison():
    report = analyze_sql(QUERIES["Q1"][0], SCHEMA)
    snippets = [
        QUERIES["Q1"][0][d.span[0] : d.span[1]]
        for d in report.unsound
        if d.span is not None
    ]
    assert any("<>" in s or ">" in s for s in snippets)


def test_fragment_diagnostics_locate_unknown_columns():
    query = parse_sql("SELECT o_orderkey FROM orders WHERE nope = 1")
    diags = fragment_diagnostics(query, SCHEMA)
    assert len(diags) == 1
    assert diags[0].rule == "SA301"
    assert "nope" in diags[0].message


def test_rewrite_error_carries_diagnostics_and_span():
    query = parse_sql("SELECT o_orderkey FROM orders WHERE nope = 1")
    with pytest.raises(RewriteError) as exc:
        rewrite_certain(query, SCHEMA)
    err = exc.value
    assert err.span is not None
    assert any(d.rule == "SA301" for d in err.diagnostics)
