"""Unit tests for the analyzer's rule catalog, one shape per rule."""

import pytest

from repro.analysis import (
    CERTIFIED,
    RULES,
    SUSPECT,
    UNSOUND,
    analyze_sql,
    render_json,
    render_pretty,
    severity_rank,
)
from repro.data.schema import DatabaseSchema, make_schema


@pytest.fixture()
def schema():
    s = DatabaseSchema()
    s.add(make_schema("t", [("a", "int"), ("b", "int")], key=("a",)))
    s.add(make_schema("s", [("c", "int"), ("d", "int")], key=("c",)))
    return s


def rules_of(report):
    return sorted({d.rule for d in report.diagnostics})


# ---------------------------------------------------------------------------
# Verdicts
# ---------------------------------------------------------------------------


def test_certified_when_only_nonnullable_columns(schema):
    report = analyze_sql("SELECT a FROM t WHERE a = 1", schema)
    assert report.verdict == CERTIFIED
    assert report.diagnostics == []


def test_projection_of_nullable_column_is_certified(schema):
    # Marked nulls in the output are still certain answers: every
    # valuation maps the output tuple into the valuated answer set.
    report = analyze_sql("SELECT b FROM t", schema)
    assert report.verdict == CERTIFIED


def test_severity_order():
    assert severity_rank(CERTIFIED) < severity_rank(SUSPECT) < severity_rank(UNSOUND)


def test_catalog_is_consistent():
    for rule_id, rule in RULES.items():
        assert rule.id == rule_id
        assert rule.severity in (UNSOUND, SUSPECT)
        assert rule.slug and rule.title and rule.explanation


# ---------------------------------------------------------------------------
# Unsound rules (SA1xx)
# ---------------------------------------------------------------------------


def test_sa101_nullable_comparison_under_negation(schema):
    report = analyze_sql(
        "SELECT a FROM t WHERE NOT EXISTS (SELECT * FROM s WHERE s.d = t.a)",
        schema,
    )
    assert report.verdict == UNSOUND
    assert rules_of(report) == ["SA101"]


def test_sa101_respects_forced_nonnull(schema):
    # The positive conjunct b = 1 forces t.b non-null (3VL TRUE needs
    # constants), so the correlated comparison is safe — the Q1 shape.
    report = analyze_sql(
        "SELECT a FROM t WHERE b = 1 "
        "AND NOT EXISTS (SELECT * FROM s WHERE s.c = t.b)",
        schema,
    )
    assert report.verdict != UNSOUND
    assert not report.by_rule("SA101") and not report.by_rule("SA105")


def test_top_level_not_in_fails_closed(schema):
    # IN is three-valued: a null member makes ``a NOT IN (…)`` UNKNOWN,
    # and UNKNOWN survives the NOT — the row is dropped, never returned.
    # Unlike NOT EXISTS there is no unknown→false absorption, so a
    # top-level NOT IN over a nullable column is sound (only false
    # negatives, SA203).
    report = analyze_sql(
        "SELECT a FROM t WHERE a NOT IN (SELECT d FROM s)", schema
    )
    assert report.verdict == SUSPECT
    assert report.unsound == []
    assert "SA203" in rules_of(report)


def test_sa102_in_subquery_inside_not_exists(schema):
    # Here the UNKNOWN membership is swallowed: the inner row fails to
    # witness the EXISTS, which the outer NOT turns into TRUE.
    report = analyze_sql(
        "SELECT a FROM t WHERE NOT EXISTS "
        "(SELECT * FROM s WHERE s.c IN (SELECT b FROM t))",
        schema,
    )
    assert report.verdict == UNSOUND
    assert "SA102" in rules_of(report)


def test_sa102_not_in_filtered_subquery_admits_answers(schema):
    # The subquery's own WHERE evaluates at the flipped polarity: an
    # UNKNOWN filter shrinks the member set, and a smaller set makes
    # NOT IN *more* likely true — a genuine false-positive channel.
    report = analyze_sql(
        "SELECT a FROM t WHERE a NOT IN (SELECT c FROM s WHERE s.d = 1)",
        schema,
    )
    assert report.verdict == UNSOUND


def test_sa102_in_values_inside_not_exists(schema):
    report = analyze_sql(
        "SELECT a FROM t WHERE NOT EXISTS (SELECT * FROM s WHERE s.d IN (1, 2))",
        schema,
    )
    assert report.verdict == UNSOUND
    assert "SA102" in rules_of(report)


def test_positive_in_subquery_is_not_unsound(schema):
    report = analyze_sql("SELECT a FROM t WHERE a IN (SELECT d FROM s)", schema)
    assert report.verdict == SUSPECT
    assert report.unsound == []


def test_sa103_like_under_negation(schema):
    report = analyze_sql(
        "SELECT a FROM t WHERE NOT EXISTS "
        "(SELECT * FROM s WHERE s.d LIKE '%x%')",
        schema,
    )
    assert report.verdict == UNSOUND
    assert "SA103" in rules_of(report)


def test_sa104_is_null_in_positive_context(schema):
    report = analyze_sql("SELECT a FROM t WHERE b IS NULL", schema)
    assert report.verdict == UNSOUND
    assert rules_of(report) == ["SA104"]


def test_sa104_is_not_null_under_negation(schema):
    report = analyze_sql(
        "SELECT a FROM t WHERE NOT EXISTS "
        "(SELECT * FROM s WHERE s.d IS NOT NULL)",
        schema,
    )
    assert report.verdict == UNSOUND
    assert rules_of(report) == ["SA104"]


def test_is_not_null_positive_is_only_suspect(schema):
    report = analyze_sql("SELECT a FROM t WHERE b IS NOT NULL", schema)
    assert report.verdict == SUSPECT
    assert rules_of(report) == ["SA203"]


def test_is_null_on_nonnullable_column_is_invariant(schema):
    report = analyze_sql("SELECT a FROM t WHERE a IS NULL", schema)
    assert report.verdict == CERTIFIED


def test_sa105_unforced_correlation(schema):
    report = analyze_sql(
        "SELECT a FROM t WHERE NOT EXISTS (SELECT * FROM s WHERE s.c = t.b)",
        schema,
    )
    assert report.verdict == UNSOUND
    assert rules_of(report) == ["SA105"]


def test_not_pushes_through_to_negative_polarity(schema):
    # NOT (EXISTS …) is NOT EXISTS after negation push-through.
    report = analyze_sql(
        "SELECT a FROM t WHERE NOT EXISTS (SELECT * FROM s WHERE s.d = 1)",
        schema,
    )
    via_not = analyze_sql(
        "SELECT a FROM t WHERE NOT (EXISTS (SELECT * FROM s WHERE s.d = 1))",
        schema,
    )
    assert rules_of(report) == rules_of(via_not) == ["SA101"]


# ---------------------------------------------------------------------------
# Suspect rules (SA2xx)
# ---------------------------------------------------------------------------


def test_sa201_aggregate_over_nullable(schema):
    report = analyze_sql("SELECT avg(b) x FROM t", schema)
    assert report.verdict == SUSPECT
    assert "SA201" in rules_of(report)


def test_count_star_is_not_flagged(schema):
    report = analyze_sql("SELECT count(*) x FROM t", schema)
    assert report.by_rule("SA201") == []


def test_sa202_distinct_over_nullable(schema):
    report = analyze_sql("SELECT DISTINCT b FROM t", schema)
    assert report.verdict == SUSPECT
    assert rules_of(report) == ["SA202"]


def test_distinct_over_nonnullable_is_certified(schema):
    report = analyze_sql("SELECT DISTINCT a FROM t", schema)
    assert report.verdict == CERTIFIED


def test_sa202_union_over_nullable(schema):
    report = analyze_sql("SELECT b FROM t UNION SELECT d FROM s", schema)
    assert "SA202" in rules_of(report)


def test_union_all_over_nullable_not_flagged(schema):
    report = analyze_sql("SELECT b FROM t UNION ALL SELECT d FROM s", schema)
    assert report.by_rule("SA202") == []


def test_top_level_positive_filter_is_certified(schema):
    # A conjunct comparison drops exactly the rows no completion agrees
    # on: a row with NULL b fails b = 1 under *some* valuation, so it is
    # not a certain answer either — naive equals certain here.
    report = analyze_sql("SELECT a FROM t WHERE b = 1", schema)
    assert report.verdict == CERTIFIED


def test_sa203_positive_filter_under_or(schema):
    # Under OR the forcing does not apply: b = 1 OR b <> 1 holds in
    # every completion of a NULL b, yet naive evaluation drops the row.
    report = analyze_sql("SELECT a FROM t WHERE b = 1 OR b <> 1", schema)
    assert report.verdict == SUSPECT
    assert rules_of(report) == ["SA203"]


# ---------------------------------------------------------------------------
# Escapes and scalar subqueries
# ---------------------------------------------------------------------------


def test_or_is_null_escape_demotes_to_suspect(schema):
    report = analyze_sql(
        "SELECT a FROM t WHERE NOT EXISTS "
        "(SELECT * FROM s WHERE s.d = t.a OR s.d IS NULL)",
        schema,
    )
    assert report.verdict == SUSPECT
    assert rules_of(report) == ["SA203"]
    (diag,) = report.diagnostics
    assert dict(diag.context).get("escaped") == "yes"


def test_unrelated_is_null_disjunct_is_not_an_escape(schema):
    # The escape must name the hazardous side; an IS NULL on another
    # column leaves the comparison unsound.
    report = analyze_sql(
        "SELECT a FROM t, s WHERE NOT EXISTS "
        "(SELECT * FROM t t2 WHERE t2.b = s.d OR s.d IS NULL)",
        schema,
    )
    assert report.verdict == UNSOUND
    assert "SA101" in rules_of(report)


def test_scalar_subquery_demotes_unsound_to_suspect(schema):
    report = analyze_sql(
        "SELECT a FROM t WHERE a = (SELECT c FROM s WHERE d IS NULL)",
        schema,
    )
    assert report.verdict == SUSPECT
    sa104 = report.by_rule("SA104")
    assert len(sa104) == 1
    assert sa104[0].severity == SUSPECT
    assert dict(sa104[0].context)["demoted"] == "scalar-subquery-black-box"


# ---------------------------------------------------------------------------
# Resilience (SA301) and rendering
# ---------------------------------------------------------------------------


def test_sa301_unknown_table(schema):
    report = analyze_sql("SELECT a FROM nope", schema)
    assert report.verdict == SUSPECT
    assert rules_of(report) == ["SA301"]


def test_sa301_does_not_stop_the_walk(schema):
    # The unresolvable column degrades to SA301 but the unsound shape
    # elsewhere in the query is still found.
    report = analyze_sql(
        "SELECT a FROM t WHERE zzz = 1 "
        "AND NOT EXISTS (SELECT * FROM s WHERE s.d = t.a)",
        schema,
    )
    assert "SA301" in rules_of(report)
    assert "SA101" in rules_of(report)
    assert report.verdict == UNSOUND


def test_diagnostics_carry_spans(schema):
    sql = "SELECT a FROM t WHERE b IS NULL"
    report = analyze_sql(sql, schema)
    (diag,) = report.diagnostics
    start, end = diag.span
    assert sql[start:end] == "b IS NULL"


def test_render_pretty_mentions_rule_and_caret(schema):
    report = analyze_sql("SELECT a FROM t WHERE b IS NULL", schema)
    text = render_pretty(report, name="demo")
    assert "demo: verdict: UNSOUND" in text
    assert "SA104" in text and "^" in text


def test_render_json_is_deterministic(schema):
    sql = "SELECT a FROM t WHERE NOT EXISTS (SELECT * FROM s WHERE s.d = t.a)"
    first = render_json(analyze_sql(sql, schema))
    second = render_json(analyze_sql(sql, schema))
    assert first == second
    assert '"verdict": "unsound"' in first


def test_duplicate_findings_are_deduplicated(schema):
    # The same comparison reached twice (flattened OR of identical
    # shapes) must not produce duplicate records.
    report = analyze_sql(
        "SELECT a FROM t WHERE NOT EXISTS "
        "(SELECT * FROM s WHERE s.d = t.a AND s.d = t.a)",
        schema,
    )
    assert len(report.diagnostics) == len(set(report.diagnostics))
