"""Algebra-level nullability inference and soundness checks."""

from repro.algebra.conditions import Attr, Comparison, Const, Not, NullTest, eq
from repro.algebra.expr import (
    AntiJoin,
    Difference,
    Intersection,
    Projection,
    RelationRef,
    Rename,
    Selection,
    UnifAntiJoin,
    Union,
)
from repro.algebra.infer import output_nullability
from repro.analysis import SUSPECT, UNSOUND, analyze_algebra
from repro.data import Database, Null, Relation
from repro.data.schema import DatabaseSchema, make_schema
from repro.engine import execute_sql
from repro.sql.parser import parse_sql
from repro.sql.to_algebra import sql_to_algebra


def schema():
    s = DatabaseSchema()
    s.add(make_schema("t", [("a", "int"), ("b", "int")], key=("a",)))
    s.add(make_schema("s", [("a", "int"), ("d", "int")], key=("a",)))
    return s


def database():
    return Database(
        {
            "t": Relation(("a", "b"), [(1, Null()), (2, 5)]),
            "s": Relation(("a", "d"), [(1, 7), (3, 9)]),
        }
    )


# ---------------------------------------------------------------------------
# output_nullability
# ---------------------------------------------------------------------------


def test_nullability_from_schema():
    assert output_nullability(RelationRef("t"), schema()) == (False, True)


def test_nullability_from_database_is_instance_level():
    # In the instance, only t.b actually carries a null.
    db = database()
    assert output_nullability(RelationRef("t"), db) == (False, True)
    assert output_nullability(RelationRef("s"), db) == (False, False)


def test_nullability_through_operators():
    t = RelationRef("t")
    src = schema()
    assert output_nullability(Projection(t, ("b",)), src) == (True,)
    assert output_nullability(Rename(t, {"b": "x"}), src) == (False, True)
    assert output_nullability(Union(t, t), src) == (False, True)
    assert output_nullability(Selection(t, eq(Attr("a"), Const(1))), src) == (
        False,
        True,
    )


def test_nullability_from_plain_dict_is_conservative():
    src = {"t": ("a", "b")}
    assert output_nullability(RelationRef("t"), src) == (True, True)


# ---------------------------------------------------------------------------
# analyze_algebra
# ---------------------------------------------------------------------------


def test_antijoin_over_nullable_is_unsound():
    t, s = RelationRef("t"), RelationRef("s")
    plan = AntiJoin(s, Projection(Rename(t, {"b": "x"}), ("x",)), eq(Attr("d"), Attr("x")))
    report = analyze_algebra(plan, schema())
    assert report.verdict == UNSOUND
    assert [d.rule for d in report.unsound] == ["SA401"]


def test_unification_antijoin_is_never_flagged():
    t, s = RelationRef("t"), RelationRef("s")
    plan = UnifAntiJoin(s, Projection(Rename(t, {"b": "d", "a": "a2"}), ("d",)))
    report = analyze_algebra(plan, schema())
    assert report.by_rule("SA401") == []


def test_antijoin_over_nonnullable_keys_is_clean():
    t, s = RelationRef("t"), RelationRef("s")
    plan = AntiJoin(t, Rename(s, {"a": "a2", "d": "d2"}), eq(Attr("a"), Attr("a2")))
    report = analyze_algebra(plan, schema())
    assert report.diagnostics == []


def test_difference_right_nullable_is_unsound():
    t = RelationRef("t")
    plan = Difference(Projection(t, ("b",)), Projection(t, ("b",)))
    report = analyze_algebra(plan, schema())
    assert report.verdict == UNSOUND
    assert report.by_rule("SA401")


def test_null_test_in_selection_is_unsound():
    plan = Selection(RelationRef("t"), NullTest(Attr("b"), is_null=True))
    report = analyze_algebra(plan, schema())
    assert report.verdict == UNSOUND
    assert report.by_rule("SA402")


def test_negated_comparison_over_nullable_is_unsound():
    plan = Selection(
        RelationRef("t"), Not(Comparison("=", Attr("b"), Const(1)))
    )
    report = analyze_algebra(plan, schema())
    assert report.verdict == UNSOUND
    assert report.by_rule("SA402")


def test_positive_filter_over_nullable_is_suspect():
    plan = Selection(RelationRef("t"), eq(Attr("b"), Const(1)))
    report = analyze_algebra(plan, schema())
    assert report.verdict == SUSPECT
    assert report.by_rule("SA403")


def test_intersection_over_nullable_is_suspect():
    t = RelationRef("t")
    report = analyze_algebra(Intersection(t, t), schema())
    assert report.verdict == SUSPECT
    assert report.by_rule("SA403")


def test_analyzes_translated_plans():
    """End to end: the checker runs over what sql_to_algebra emits, and
    a naive NOT EXISTS translation over a nullable column is flagged."""
    db = database()
    sql = (
        "SELECT a FROM s WHERE NOT EXISTS "
        "(SELECT * FROM t WHERE t.b = s.d)"
    )
    plan = sql_to_algebra(parse_sql(sql), db)
    report = analyze_algebra(plan, db)
    # t.b carries a null in the instance; whichever antijoin family the
    # translator picked, the report must exist and any plain antijoin
    # over t.b must have been flagged.
    assert report is not None
    returned = execute_sql(db, sql)
    assert returned.attributes == ("a",)
