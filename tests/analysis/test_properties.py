"""Property tests tying analyzer verdicts to brute-forced certain answers.

Two directions:

* ``certified`` queries are *exactly right*: on random small databases
  with marked nulls, naive SQL evaluation returns precisely the certain
  answers computed by the brute-force valuation sweep.
* ``unsound`` queries are not just conservatively flagged: for each
  unsound template there is a concrete witness database on which naive
  evaluation returns a tuple that is not a certain answer.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import CERTIFIED, UNSOUND, analyze_sql
from repro.certain import certain_answers_with_nulls
from repro.data import Database, Null, Relation
from repro.data.schema import DatabaseSchema, make_schema
from repro.engine import execute_sql
from repro.sql.parser import parse_sql
from repro.sql.to_algebra import sql_to_algebra


def mini_schema():
    s = DatabaseSchema()
    s.add(make_schema("t", [("a", "int"), ("b", "int")], key=("a",)))
    s.add(make_schema("s", [("c", "int"), ("d", "int")], key=("c",)))
    return s


SCHEMA = mini_schema()

# Templates the analyzer certifies: sound *and* complete.
CERTIFIED_TEMPLATES = [
    "SELECT a FROM t",
    "SELECT b FROM t",
    "SELECT a FROM t WHERE a = 1",
    "SELECT a FROM t WHERE b = 1",
    "SELECT a, b FROM t WHERE a <> 2",
    "SELECT DISTINCT a FROM t",
    "SELECT a FROM t UNION SELECT c FROM s",
    "SELECT a FROM t WHERE EXISTS (SELECT * FROM s WHERE s.c = t.a)",
    "SELECT a FROM t WHERE b = 1 "
    "AND NOT EXISTS (SELECT * FROM s WHERE s.c = t.b)",
]

# Each unsound template comes with a deterministic witness database on
# which naive evaluation produces at least one false positive.
UNSOUND_WITNESSES = [
    (
        "SELECT a FROM t WHERE NOT EXISTS (SELECT * FROM s WHERE s.d = t.a)",
        {"t": [(1, 0)], "s": [(10, Null())]},
    ),
    (
        "SELECT a FROM t WHERE b IS NULL",
        {"t": [(1, Null())], "s": []},
    ),
    (
        "SELECT a FROM t WHERE a NOT IN (SELECT c FROM s WHERE s.d = 1)",
        {"t": [(1, 0)], "s": [(1, Null())]},
    ),
    (
        "SELECT a FROM t WHERE NOT EXISTS "
        "(SELECT * FROM s WHERE s.c IN (SELECT b FROM t))",
        {"t": [(1, Null())], "s": [(1, 5)]},
    ),
    (
        "SELECT a FROM t WHERE NOT EXISTS "
        "(SELECT * FROM s WHERE s.d IS NOT NULL)",
        {"t": [(1, 0)], "s": [(10, Null())]},
    ),
]


def to_database(tables):
    return Database(
        {
            "t": Relation(("a", "b"), list(tables.get("t", []))),
            "s": Relation(("c", "d"), list(tables.get("s", []))),
        }
    )


def naive_and_certain(sql, db):
    naive = set(execute_sql(db, sql).rows)
    algebra = sql_to_algebra(parse_sql(sql), db)
    certain = set(certain_answers_with_nulls(algebra, db).rows)
    return naive, certain


# A nullable cell: a small constant overlapping the key space (so joins
# and memberships actually fire) or a fresh marked null.
cells = st.sampled_from([1, 2, None])


@st.composite
def databases(draw):
    t_rows = [
        (i + 1, Null() if (b := draw(cells)) is None else b)
        for i in range(draw(st.integers(0, 2)))
    ]
    s_rows = [
        (i + 1, Null() if (d := draw(cells)) is None else d)
        for i in range(draw(st.integers(0, 2)))
    ]
    return to_database({"t": t_rows, "s": s_rows})


@pytest.mark.parametrize("sql", CERTIFIED_TEMPLATES)
def test_templates_are_certified(sql):
    assert analyze_sql(sql, SCHEMA).verdict == CERTIFIED


@pytest.mark.parametrize("sql", CERTIFIED_TEMPLATES)
@settings(max_examples=20, deadline=None)
@given(db=databases())
def test_certified_means_naive_equals_certain(sql, db):
    naive, certain = naive_and_certain(sql, db)
    assert naive == certain


@pytest.mark.parametrize("sql,tables", UNSOUND_WITNESSES)
def test_unsound_templates_are_flagged(sql, tables):
    assert analyze_sql(sql, SCHEMA).verdict == UNSOUND


@pytest.mark.parametrize("sql,tables", UNSOUND_WITNESSES)
def test_unsound_has_a_concrete_false_positive(sql, tables):
    naive, certain = naive_and_certain(sql, to_database(tables))
    assert naive - certain, "expected naive evaluation to overclaim"


@pytest.mark.parametrize("sql,tables", UNSOUND_WITNESSES)
@settings(max_examples=15, deadline=None)
@given(db=databases())
def test_unsound_still_never_underclaims_alone(sql, tables, db):
    """Random instances may or may not exhibit the false positive, but
    the brute force itself must stay consistent: certain answers are a
    subset of what *some* valuation admits, so evaluating on a null-free
    database the two notions coincide."""
    if any(
        isinstance(v, Null)
        for rel in db.relations.values()
        for row in rel.rows
        for v in row
    ):
        return
    naive, certain = naive_and_certain(sql, db)
    assert naive == certain
