"""Shared fixtures: small incomplete databases and TPC-H instances."""

import random

import pytest

from repro.data import Database, Null, Relation
from repro.data.schema import DatabaseSchema, make_schema
from repro.tpch.datafiller import generate_small_instance
from repro.tpch.dbgen import generate_instance
from repro.tpch.nullify import inject_nulls
from repro.tpch.schema import tpch_schema


@pytest.fixture
def intro_db():
    """The paper's introduction example: R = {1}, S = {NULL}."""
    return Database(
        {
            "R": Relation(("A",), [(1,)]),
            "S": Relation(("A",), [(Null(),)]),
        }
    )


@pytest.fixture
def rs_schema():
    schema = DatabaseSchema()
    schema.add(make_schema("R", [("A", "int"), ("B", "int")], key=["A"]))
    schema.add(make_schema("S", [("A", "int"), ("B", "int")]))
    return schema


@pytest.fixture
def small_db():
    """Two binary relations with a couple of nulls."""
    n1, n2 = Null(), Null()
    return Database(
        {
            "R": Relation(("A", "B"), [(1, 2), (2, n1), (3, 3)]),
            "S": Relation(("C", "D"), [(1, 2), (n2, 2)]),
        }
    )


@pytest.fixture(scope="session")
def tpch_complete():
    """A complete micro TPC-H instance (shared across tests)."""
    return generate_instance(scale=0.2, seed=11)


@pytest.fixture(scope="session")
def tpch_nulls(tpch_complete):
    """The same instance with nulls at a 5% rate."""
    return inject_nulls(tpch_complete, 0.05, seed=12)


@pytest.fixture(scope="session")
def tpch_small_nulls():
    """A small DataFiller-style instance with nulls (fast detectors)."""
    base = generate_small_instance(scale=0.05, seed=21)
    return inject_nulls(base, 0.08, seed=22)


@pytest.fixture(scope="session")
def schema():
    return tpch_schema()


@pytest.fixture
def rng():
    return random.Random(123)


def make_random_db(rng, null_rate=0.3, max_rows=3, values=(1, 2, 3)):
    """Random R(A,B), S(C,D) incomplete database for property tests."""

    def cell():
        if rng.random() < null_rate:
            return Null()
        return rng.choice(values)

    def rows(width):
        return [
            tuple(cell() for _ in range(width))
            for _ in range(rng.randint(1, max_rows))
        ]

    return Database(
        {
            "R": Relation(("A", "B"), rows(2)),
            "S": Relation(("C", "D"), rows(2)),
        }
    )
