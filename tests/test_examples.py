"""The shipped examples must stay runnable (they are documentation)."""

import runpy
import sys

import pytest

EXAMPLES = [
    "examples/quickstart.py",
    "examples/marked_nulls.py",
    "examples/lint_queries.py",
]


@pytest.mark.parametrize("path", EXAMPLES)
def test_example_runs(path, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [path])
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # examples narrate what they show


def test_tpch_example_runs_small(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["examples/tpch_false_positives.py", "0.05"])
    runpy.run_path("examples/tpch_false_positives.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "recall" in out


def test_rewriting_example_single_query(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["examples/direct_sql_rewriting.py", "Q3"])
    runpy.run_path("examples/direct_sql_rewriting.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "equal=True" in out
